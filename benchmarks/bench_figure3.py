"""Benchmark harness for Figure 3 (accuracy vs sampled frames)."""

from repro.experiments import figure3


def test_figure3(benchmark, bench_config):
    """Sweep SiEVE / MSE / SIFT over the labelled datasets and print the curves."""
    points = benchmark.pedantic(figure3.run, args=(bench_config,),
                                kwargs={"include_sift": True},
                                iterations=1, rounds=1)
    print()
    print(figure3.render(points))
    summary = figure3.summarize(points)
    print("\nMean accuracy per method:")
    for dataset, methods in sorted(summary.items()):
        print(f"  {dataset}: " + ", ".join(
            f"{method}={value:.3f}" for method, value in sorted(methods.items())))
    assert summary, "Figure 3 produced no data"
    for dataset, methods in summary.items():
        # Paper shape: SiEVE outperforms both decode-based baselines on average.
        assert methods["sieve"] >= methods["mse"] - 0.02, dataset
        if "sift" in methods:
            assert methods["sieve"] >= methods["sift"] - 0.02, dataset
    # SiEVE reaches high accuracy within a few percent of sampled frames.
    best_sieve = max(point.accuracy for point in points if point.method == "sieve")
    assert best_sieve > 0.90
