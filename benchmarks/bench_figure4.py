"""Benchmark harness for Figure 4 (end-to-end throughput of five deployments).

Besides the pytest-benchmark timing, the harness records its end-to-end
wall-clock into ``BENCH_figure4.json``: the cold workload build (rendering,
analysis, tuning, encoding), the warm rebuild through the in-process
prepared-dataset cache, the warm rebuild through the *on-disk* cache (what
a second Python session pays), the cold *parallel* build
(``build_workers=2`` into its own fresh cache directory, asserted
byte-identical to the serial artifacts), and the deployment replay itself.
"""

import pytest

from repro.config import SystemConfig
from repro.contracts import FAST_CONTRACT, selection_agreement
from repro.core import DeploymentMode
from repro.datasets.diskcache import cache_dir, temporary_cache_dir, tree_digest
from repro.experiments import figure4, prepare_dataset
from repro.experiments.common import clear_prepared_cache
from repro.perf import Stopwatch


@pytest.fixture(scope="module")
def figure4_report(bench_report_factory):
    return bench_report_factory("figure4")


@pytest.fixture(scope="module")
def workloads(bench_config_small, figure4_report, tmp_path_factory):
    """Workloads over all five Table I datasets (shared with Figure 5)."""
    with Stopwatch() as cold:
        built = figure4.build_workloads(bench_config_small)
    figure4_report.record("build_workloads.cold", cold.elapsed_seconds,
                          "seconds", datasets=len(built))
    # Re-prepare one dataset through the shared cache: the hit cost is what
    # every later harness (Figure 5, the examples) pays for its footage.
    with Stopwatch() as warm:
        prepare_dataset("jackson_square", bench_config_small, split="full")
    figure4_report.record("prepare_dataset.warm_cached", warm.elapsed_seconds,
                          "seconds", datasets=1)
    # Drop the in-process layer and rebuild everything through the on-disk
    # cache: this is what a *new* Python session (a second pytest run, a CI
    # re-run with a persistent REPRO_CACHE_DIR) pays instead of the cold
    # build — no rendering, no tuning, no encodes.
    clear_prepared_cache()
    with Stopwatch() as disk_warm:
        rebuilt = figure4.build_workloads(bench_config_small)
    figure4_report.record("prepare_workload.warm_disk",
                          disk_warm.elapsed_seconds, "seconds",
                          datasets=len(rebuilt))
    # The cold/warm ratio is the machine-relative view the CI gate relies
    # on: both sides ran on the same hardware, so a collapse of the ratio
    # means the cache stopped working, not that the runner was slow.
    figure4_report.record_speedup("workload_cache", cold.elapsed_seconds,
                                  disk_warm.elapsed_seconds,
                                  datasets=len(rebuilt))
    # Cold *parallel* build into its own fresh cache directory: times the
    # build_workers=2 fan-out against the serial cold build above and
    # asserts the byte-identity contract at bench scale — every cache
    # artifact the workers wrote must equal the serial session's.  The
    # gated metric is the machine-relative serial/parallel ratio: on a
    # multi-core runner it exceeds 1, on a single-core one the pool
    # overhead keeps it just under; either way a collapse means the
    # parallel path broke, not that the runner was slow.
    serial_cache = cache_dir()
    clear_prepared_cache()
    with temporary_cache_dir(tmp_path_factory.mktemp("parallel-cache")) as parallel_cache:
        with Stopwatch() as parallel_cold:
            parallel_built = figure4.build_workloads(bench_config_small,
                                                     build_workers=2)
    figure4_report.record("build_workloads.cold_parallel",
                          parallel_cold.elapsed_seconds, "seconds",
                          datasets=len(parallel_built), build_workers=2)
    figure4_report.record("build_parallel.vs_serial",
                          cold.elapsed_seconds
                          / max(parallel_cold.elapsed_seconds, 1e-9),
                          "ratio", datasets=len(parallel_built),
                          build_workers=2)
    assert tree_digest(parallel_cache) == tree_digest(serial_cache), (
        "parallel build produced different cache artifacts than serial")
    # Cold *fast-precision* build: the same end-to-end build through the
    # float32 kernels (motion SADs in the analysis pass and both size-only
    # encodes).  Fast sessions key their own cache artifacts, so this is a
    # genuinely cold build on the same runner as the serial cold build
    # above — the gated `precision_fast.build.speedup` ratio is
    # machine-relative, and the recorded agreement pins the end-to-end
    # accuracy contract at bench scale.
    clear_prepared_cache()
    with Stopwatch() as fast_cold:
        fast_built = figure4.build_workloads(
            bench_config_small, system_config=SystemConfig(precision="fast"))
    figure4_report.record_speedup("precision_fast.build",
                                  cold.elapsed_seconds,
                                  fast_cold.elapsed_seconds,
                                  datasets=len(fast_built))
    agreement = min(
        selection_agreement(exact.semantic_samples, fast.semantic_samples)
        for exact, fast in zip(built, fast_built))
    figure4_report.record("precision_fast.agreement", agreement, "ratio",
                          datasets=len(fast_built))
    assert agreement >= FAST_CONTRACT.detections.min_agreement, (
        f"fast workload selection agreement {agreement} below contract")
    # Drop the fast/parallel in-process layers so later harnesses resolve
    # against the exact session cache artifacts again.
    clear_prepared_cache()
    return built


def test_figure4(benchmark, workloads, figure4_report):
    """Replay the five deployments over 1/3/5 videos and print Figure 4."""
    # One timed invocation: with --benchmark-disable this is exactly one
    # replay; with --benchmark-only the recorded value covers the rounds.
    with Stopwatch() as watch:
        results = benchmark(figure4.run, workloads)
    figure4_report.record("run", watch.elapsed_seconds, "seconds",
                          datasets=len(workloads))
    print()
    print(figure4.render(results))
    five_videos = {mode: reports[max(reports)] for mode, reports in results.items()}
    fps = {mode: report.throughput_fps for mode, report in five_videos.items()}
    # Paper shape: the three semantic-encoding deployments beat uniform
    # sampling and MSE filtering, and the 3-tier deployment is the fastest.
    assert fps[DeploymentMode.IFRAME_EDGE_CLOUD_NN] == max(fps.values())
    for semantic_mode in (DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                          DeploymentMode.IFRAME_CLOUD_CLOUD_NN,
                          DeploymentMode.IFRAME_EDGE_EDGE_NN):
        assert fps[semantic_mode] > fps[DeploymentMode.UNIFORM_EDGE_CLOUD_NN]
        assert fps[semantic_mode] > fps[DeploymentMode.MSE_EDGE_CLOUD_NN]
    # Throughput grows with the corpus only sub-linearly in time, i.e. the
    # per-frame cost stays roughly constant across 1 -> 5 videos.
    three_tier = results[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
    assert three_tier[max(three_tier)].total_frames > three_tier[min(three_tier)].total_frames
