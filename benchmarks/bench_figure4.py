"""Benchmark harness for Figure 4 (end-to-end throughput of five deployments)."""

import pytest

from repro.core import DeploymentMode
from repro.experiments import figure4


@pytest.fixture(scope="module")
def workloads(bench_config_small):
    """Workloads over all five Table I datasets (shared with Figure 5)."""
    return figure4.build_workloads(bench_config_small)


def test_figure4(benchmark, workloads):
    """Replay the five deployments over 1/3/5 videos and print Figure 4."""
    results = benchmark(figure4.run, workloads)
    print()
    print(figure4.render(results))
    five_videos = {mode: reports[max(reports)] for mode, reports in results.items()}
    fps = {mode: report.throughput_fps for mode, report in five_videos.items()}
    # Paper shape: the three semantic-encoding deployments beat uniform
    # sampling and MSE filtering, and the 3-tier deployment is the fastest.
    assert fps[DeploymentMode.IFRAME_EDGE_CLOUD_NN] == max(fps.values())
    for semantic_mode in (DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                          DeploymentMode.IFRAME_CLOUD_CLOUD_NN,
                          DeploymentMode.IFRAME_EDGE_EDGE_NN):
        assert fps[semantic_mode] > fps[DeploymentMode.UNIFORM_EDGE_CLOUD_NN]
        assert fps[semantic_mode] > fps[DeploymentMode.MSE_EDGE_CLOUD_NN]
    # Throughput grows with the corpus only sub-linearly in time, i.e. the
    # per-frame cost stays roughly constant across 1 -> 5 videos.
    three_tier = results[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
    assert three_tier[max(three_tier)].total_frames > three_tier[min(three_tier)].total_frames
