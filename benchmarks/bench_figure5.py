"""Benchmark harness for Figure 5 (data transfer camera->edge and edge->cloud)."""

import pytest

from repro.core import DeploymentMode
from repro.experiments import figure4, figure5


@pytest.fixture(scope="module")
def workloads(bench_config_small):
    return figure4.build_workloads(bench_config_small)


def test_figure5(benchmark, workloads):
    """Measure per-deployment transfer volumes and print Figure 5."""
    results = benchmark(figure5.run, workloads)
    print()
    print(figure5.render(results))
    ratios = figure5.headline_ratios(results)
    # Paper shape: shipping resized I-frames cuts the edge->cloud volume by a
    # large factor (7x in the paper) vs shipping the whole video; the MSE
    # deployment ships more than the I-frame deployment (2.5x in the paper);
    # the semantic encoding is slightly larger camera->edge (1.12x).
    assert ratios["full_video_over_iframes"] > 3.0
    assert ratios["mse_over_iframes"] > 1.2
    assert 1.0 < ratios["semantic_over_default_camera_edge"] < 3.0
    three_tier = results[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
    assert three_tier.edge_cloud_bytes < three_tier.camera_edge_bytes
