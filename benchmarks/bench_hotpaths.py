"""Micro-benchmarks for the optimised hot paths.

Covers the codepaths the perf PRs touch: entropy encode/decode (vectorised
vs the retained reference implementation), motion search, DCT + quantise,
single vs batched NN inference, and the discrete-event scheduler loop.
Every measurement is recorded through :class:`repro.perf.BenchReport` into
``BENCH_hotpaths.json`` so speedups are *measured*, not asserted — the
assertions here are deliberately conservative sanity floors (the recorded
numbers are the real result).

Run with ``python -m pytest benchmarks/bench_hotpaths.py -q
--benchmark-disable`` for a quick instrumented pass, or with
``--benchmark-only`` for full pytest-benchmark statistics.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.codec import entropy
from repro.codec.blocks import pad_plane, to_blocks
from repro.codec.motion import candidate_offsets, estimate_motion, shift_plane
from repro.codec.transform import reconstruct_blocks, transform_and_quantise
from repro.contracts import FAST_CONTRACT, agreement_fraction
from repro.dataflow.scheduler import EventScheduler, ServiceStation
from repro.nn import build_yolo_lite, classify_frame, classify_frames
from repro.video.scenarios import make_scenario
from repro.video.synthetic import SyntheticScene

#: The micro-benchmarks use a fixed moderate footage scale (independent of
#: the end-to-end harnesses) so recorded numbers are comparable across runs.
FRAME_RENDER_SCALE = 0.25
BLOCK_SIZE = 8
QUALITY = 75


def min_time(function, repeats: int = 5, min_total_seconds: float = 0.25,
             max_repeats: int = 200) -> float:
    """Best-of-N wall-clock seconds for one call (micro-benchmark convention).

    Sub-millisecond functions repeat until ``min_total_seconds`` of samples
    have accumulated (capped at ``max_repeats``): a single best-of-5 on a
    0.3 ms call is dominated by scheduler jitter, and the perf gate
    compares the recorded values across runs, so they must be stable.
    """
    best = float("inf")
    spent = 0.0
    runs = 0
    while runs < repeats or (spent < min_total_seconds and runs < max_repeats):
        start = time.perf_counter()
        function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        spent += elapsed
        runs += 1
    return best


@pytest.fixture(scope="module")
def hotpaths_report(bench_report_factory):
    return bench_report_factory("hotpaths")


@pytest.fixture(scope="module")
def frame_pair():
    """Two consecutive luma planes of a representative synthetic scene."""
    profile = make_scenario("jackson_square", duration_seconds=2.0,
                            render_scale=FRAME_RENDER_SCALE)
    video = SyntheticScene(profile).video()
    frames = []
    for frame in video.frames():
        frames.append(frame.to_grayscale().astype(np.float64))
        if len(frames) == 2:
            break
    return frames[0], frames[1]


@pytest.fixture(scope="module")
def quantised_frame(frame_pair):
    """Quantised DCT blocks of one representative frame."""
    luma = frame_pair[0] - 128.0
    blocks = to_blocks(pad_plane(luma, BLOCK_SIZE), BLOCK_SIZE)
    return transform_and_quantise(blocks, QUALITY)


class TestEntropyCoding:
    def test_encode_speedup(self, benchmark, quantised_frame, hotpaths_report):
        payload = entropy.encode_blocks(quantised_frame)
        assert payload == entropy.encode_blocks_reference(quantised_frame)
        baseline = min_time(lambda: entropy.encode_blocks_reference(quantised_frame))
        optimised = min_time(lambda: entropy.encode_blocks(quantised_frame))
        entry = hotpaths_report.record_speedup(
            "entropy_encode", baseline, optimised,
            blocks=int(np.prod(quantised_frame.shape[:2])),
            payload_bytes=len(payload))
        benchmark(entropy.encode_blocks, quantised_frame)
        # Speedups are measured and recorded, not asserted: wall-clock floors
        # would make CI flaky on shared runners.  Only sanity is checked.
        assert entry.value > 0

    def test_decode_speedup(self, benchmark, quantised_frame, hotpaths_report):
        payload = entropy.encode_blocks(quantised_frame)
        blocks_y, blocks_x = quantised_frame.shape[:2]
        decoded = entropy.decode_blocks(payload, blocks_y, blocks_x, BLOCK_SIZE)
        assert np.array_equal(
            decoded, entropy.decode_blocks_reference(payload, blocks_y,
                                                     blocks_x, BLOCK_SIZE))
        baseline = min_time(lambda: entropy.decode_blocks_reference(
            payload, blocks_y, blocks_x, BLOCK_SIZE))
        optimised = min_time(lambda: entropy.decode_blocks(
            payload, blocks_y, blocks_x, BLOCK_SIZE))
        entry = hotpaths_report.record_speedup(
            "entropy_decode", baseline, optimised,
            payload_bytes=len(payload))
        benchmark(entropy.decode_blocks, payload, blocks_y, blocks_x,
                  BLOCK_SIZE)
        assert entry.value > 0


def _estimate_motion_reference(reference, current, block_size, search_radius):
    """The seed's per-candidate motion search (baseline for the speedup)."""
    reference = pad_plane(np.asarray(reference, dtype=np.float64), block_size)
    current = pad_plane(np.asarray(current, dtype=np.float64), block_size)
    current_blocks = to_blocks(current, block_size)
    blocks_y, blocks_x = current_blocks.shape[:2]
    best_sad = np.full((blocks_y, blocks_x), np.inf)
    best_vector = np.zeros((blocks_y, blocks_x, 2), dtype=np.int16)
    zero_sad = None
    for dy, dx in candidate_offsets(search_radius, 1):
        predicted = shift_plane(reference, dy, dx)
        sad = np.abs(to_blocks(predicted, block_size)
                     - current_blocks).sum(axis=(2, 3))
        if (dy, dx) == (0, 0):
            zero_sad = sad
        better = sad < best_sad
        best_sad = np.where(better, sad, best_sad)
        best_vector[better] = (dy, dx)
    return best_vector, best_sad, zero_sad


class TestMotionSearch:
    def test_motion_search_speedup(self, benchmark, frame_pair, hotpaths_report):
        reference, current = frame_pair
        radius = 3
        field = estimate_motion(reference, current, BLOCK_SIZE, radius)
        ref_vectors, ref_sad, _ = _estimate_motion_reference(
            reference, current, BLOCK_SIZE, radius)
        assert np.array_equal(field.vectors, ref_vectors)
        assert np.array_equal(field.block_sad, ref_sad)
        baseline = min_time(lambda: _estimate_motion_reference(
            reference, current, BLOCK_SIZE, radius))
        optimised = min_time(lambda: estimate_motion(
            reference, current, BLOCK_SIZE, radius))
        entry = hotpaths_report.record_speedup(
            "motion_search", baseline, optimised,
            frame_shape=list(reference.shape),
            candidates=len(candidate_offsets(radius, 1)))
        benchmark(estimate_motion, reference, current, BLOCK_SIZE, radius)
        assert entry.value > 0


class TestTransform:
    def test_dct_quantise_throughput(self, benchmark, frame_pair,
                                     hotpaths_report):
        luma = frame_pair[0] - 128.0
        blocks = to_blocks(pad_plane(luma, BLOCK_SIZE), BLOCK_SIZE)
        seconds = min_time(lambda: transform_and_quantise(blocks, QUALITY))
        num_blocks = int(np.prod(blocks.shape[:2]))
        hotpaths_report.record("dct_quantise", seconds, "seconds",
                               blocks=num_blocks)
        hotpaths_report.record("dct_quantise.blocks_per_second",
                               num_blocks / seconds, "items_per_second")
        quantised = transform_and_quantise(blocks, QUALITY)
        roundtrip = min_time(lambda: reconstruct_blocks(quantised, QUALITY))
        hotpaths_report.record("idct_dequantise", roundtrip, "seconds",
                               blocks=num_blocks)
        benchmark(transform_and_quantise, blocks, QUALITY)
        assert seconds > 0


class TestInference:
    def test_single_vs_batched(self, benchmark, hotpaths_report):
        model = build_yolo_lite()
        rng = np.random.default_rng(17)
        frames = [rng.integers(0, 255, size=(64, 64), dtype=np.uint8)
                  for _ in range(32)]
        # Warm both paths before timing.
        classify_frame(model, frames[0])
        classify_frames(model, frames[:2], batch_size=2)
        single = min_time(
            lambda: [classify_frame(model, frame) for frame in frames],
            repeats=3)
        batched = min_time(
            lambda: classify_frames(model, frames, batch_size=16), repeats=3)
        entry = hotpaths_report.record_speedup(
            "nn_inference_batched", single, batched,
            frames=len(frames), batch_size=16)
        hotpaths_report.record("nn_inference.frames_per_second",
                               len(frames) / batched, "items_per_second")
        benchmark(classify_frames, model, frames)
        assert entry.value > 0
        # Batched labels match the per-frame path exactly.
        labels, _ = classify_frames(model, frames, batch_size=16)
        assert labels == [classify_frame(model, frame)[0] for frame in frames]


class TestPrecisionFastPaths:
    """Tolerance-contracted float32 fast paths vs their exact twins.

    Both the machine-relative speedup *and* the measured fast/exact
    agreement are recorded as gated ``precision_fast.*`` entries, so the CI
    perf gate fails if either the speedup or the contract collapses — and
    ``check_regression.py --require precision_fast`` keeps the section from
    silently dropping out of the comparison.
    """

    def test_nn_fast_speedup(self, benchmark, hotpaths_report):
        model = build_yolo_lite()
        rng = np.random.default_rng(23)
        frames = [rng.integers(0, 255, size=(64, 64), dtype=np.uint8)
                  for _ in range(32)]
        # Warm both paths (weight casts, buffers) before timing.
        classify_frames(model, frames[:2], batch_size=2)
        classify_frames(model, frames[:2], batch_size=2, precision="fast")
        exact_seconds = min_time(
            lambda: classify_frames(model, frames, batch_size=16), repeats=3)
        fast_seconds = min_time(
            lambda: classify_frames(model, frames, batch_size=16,
                                    precision="fast"), repeats=3)
        entry = hotpaths_report.record_speedup(
            "precision_fast.nn", exact_seconds, fast_seconds,
            frames=len(frames), batch_size=16)
        exact_labels, exact_probs = classify_frames(model, frames,
                                                    batch_size=16)
        fast_labels, fast_probs = classify_frames(model, frames,
                                                  batch_size=16,
                                                  precision="fast")
        agreement = agreement_fraction(exact_labels, fast_labels)
        hotpaths_report.record("precision_fast.nn_agreement", agreement,
                               "ratio", frames=len(frames))
        benchmark(classify_frames, model, frames, 16, "fast")
        assert entry.value > 0
        # The recorded numbers are the result; the contract itself is a
        # hard assertion — a fast path that breaks its budget must fail
        # even before the CI gate compares runs.
        assert agreement >= FAST_CONTRACT.nn_classes.min_agreement
        assert FAST_CONTRACT.nn_logits.values_within(exact_probs, fast_probs)

    def test_motion_fast_speedup(self, benchmark, frame_pair,
                                 hotpaths_report):
        reference, current = frame_pair
        radius = 3
        exact_field = estimate_motion(reference, current, BLOCK_SIZE, radius)
        fast_field = estimate_motion(reference, current, BLOCK_SIZE, radius,
                                     precision="fast")
        exact_seconds = min_time(
            lambda: estimate_motion(reference, current, BLOCK_SIZE, radius))
        fast_seconds = min_time(
            lambda: estimate_motion(reference, current, BLOCK_SIZE, radius,
                                    precision="fast"))
        entry = hotpaths_report.record_speedup(
            "precision_fast.motion", exact_seconds, fast_seconds,
            frame_shape=list(reference.shape),
            candidates=len(candidate_offsets(radius, 1)))
        agreement = agreement_fraction(exact_field.vectors,
                                       fast_field.vectors)
        hotpaths_report.record("precision_fast.motion_agreement", agreement,
                               "ratio",
                               blocks=int(exact_field.block_sad.size))
        benchmark(estimate_motion, reference, current, BLOCK_SIZE, radius,
                  1, "fast")
        assert entry.value > 0
        assert agreement >= FAST_CONTRACT.sad_argmin.min_agreement
        assert FAST_CONTRACT.sad_values.values_within(exact_field.block_sad,
                                                      fast_field.block_sad)


class TestFaultPlaneOverhead:
    """The fault-injection hooks must be free when no plan is installed.

    Runs the same fed streaming workload twice — once on the hookless
    seed path, once with an (empty) ``FaultPlan`` so the fault driver and
    every injection hook is installed but idle — and records the ratio as
    the gated ``faults.recovery_overhead`` entry (~1.0x).  A hook that
    starts costing real time on the fault-free path fails the perf gate
    even though every correctness test still passes.
    """

    NUM_CAMERAS = 8
    NUM_CHUNKS = 4

    def _run_service(self, with_hooks: bool):
        from repro.faults import FaultPlan
        from repro.service import ChunkFeeder, FrameChunk, StreamingService

        service = StreamingService(
            num_edge_servers=2,
            faults=FaultPlan() if with_hooks else None)
        chunks = [FrameChunk(num_frames=30, frames_for_inference=3,
                             edge_seconds=0.05, cloud_seconds=0.02,
                             camera_edge_bytes=500_000,
                             edge_cloud_bytes=60_000)
                  for _ in range(self.NUM_CHUNKS)]
        for index in range(self.NUM_CAMERAS):
            camera = f"bench-cam{index}"
            service.open_session(camera)
            ChunkFeeder(service, camera, list(chunks),
                        period_seconds=0.2).start(at=0.01 * index)
        service.drain()
        return service

    def test_idle_hooks_are_free(self, benchmark, hotpaths_report):
        plain = self._run_service(with_hooks=False)
        hooked = self._run_service(with_hooks=True)
        # The empty plan must not change the simulation at all.
        assert plain.fleet_report().parity_mismatches(
            hooked.fleet_report(), 1e-6) == []
        assert hooked.fleet_report().faults is None
        no_hooks = min_time(lambda: self._run_service(with_hooks=False),
                            repeats=3)
        with_hooks = min_time(lambda: self._run_service(with_hooks=True),
                              repeats=3)
        entry = hotpaths_report.record_speedup(
            "faults.recovery_overhead", no_hooks, with_hooks,
            cameras=self.NUM_CAMERAS, chunks=self.NUM_CHUNKS)
        benchmark(self._run_service, True)
        # ~1.0 is the result; only sanity is asserted (the perf gate
        # compares the recorded ratio across runs).
        assert entry.value > 0


class TestAdaptiveOverhead:
    """The adaptive controller must be free when not installed.

    Mirrors ``faults.recovery_overhead``: the same fed streaming workload
    runs on the seed path and with an ``AdaptiveConfig`` installed but
    idle (scene-less chunks never reach the drift monitor), and the ratio
    is recorded as the gated ``adapt.overhead`` entry (~1.0x).
    """

    NUM_CAMERAS = 8
    NUM_CHUNKS = 4

    def _run_service(self, with_controller: bool):
        from repro.adapt import AdaptiveConfig
        from repro.service import ChunkFeeder, FrameChunk, StreamingService

        service = StreamingService(
            num_edge_servers=2,
            adaptive=AdaptiveConfig() if with_controller else None)
        chunks = [FrameChunk(num_frames=30, frames_for_inference=3,
                             edge_seconds=0.05, cloud_seconds=0.02,
                             camera_edge_bytes=500_000,
                             edge_cloud_bytes=60_000)
                  for _ in range(self.NUM_CHUNKS)]
        for index in range(self.NUM_CAMERAS):
            camera = f"bench-cam{index}"
            service.open_session(camera)
            ChunkFeeder(service, camera, list(chunks),
                        period_seconds=0.2).start(at=0.01 * index)
        service.drain()
        return service

    def test_idle_controller_is_free(self, benchmark, hotpaths_report):
        plain = self._run_service(with_controller=False)
        adaptive = self._run_service(with_controller=True)
        # An idle controller must not change the simulation at all.
        assert plain.fleet_report().parity_mismatches(
            adaptive.fleet_report(), 1e-6) == []
        assert adaptive.adaptive.retunes_applied == 0
        assert adaptive.status().retune_counters == {}
        without = min_time(lambda: self._run_service(with_controller=False),
                           repeats=3)
        with_controller = min_time(
            lambda: self._run_service(with_controller=True), repeats=3)
        entry = hotpaths_report.record_speedup(
            "adapt.overhead", without, with_controller,
            cameras=self.NUM_CAMERAS, chunks=self.NUM_CHUNKS)
        benchmark(self._run_service, True)
        assert entry.value > 0


class TestFleetScaleOut:
    """Scale-out wall-clock ratios of the multiprocess fleet.

    Runs the same synthetic fleet through the parallel path under the
    scale-out knobs and records two machine-relative ratios: the
    shared-memory transport vs the pickle default, and work stealing vs
    the static shards (both sides on this machine, so the ratios transfer
    across hardware).  On a single-core box both sit near 1.0x — the
    pools serialise — and multi-core runners can only improve them; the
    perf gate ``--require``s both entries so the scale-out paths cannot
    silently fall out of the comparison.  Every configuration is first
    asserted bit-equal to the serial reference (the parity contract the
    scale-out must never trade away for speed).
    """

    NUM_CAMERAS = 2_000
    NUM_EDGES = 8
    FLEET_WORKERS = 2

    def _jobs(self):
        from repro.cluster import CameraJob
        jobs = []
        for index in range(self.NUM_CAMERAS):
            spread = index % 7
            jobs.append(CameraJob(
                camera=f"bench-{index:04d}", video=f"feed-{spread}",
                num_frames=120 + 12 * spread, frames_for_inference=4,
                edge_seconds=0.3 + 0.07 * spread,
                cloud_seconds=0.2 + 0.04 * ((index * 3) % 5),
                camera_edge_bytes=400_000 + 1013 * spread,
                edge_cloud_bytes=120_000 + 577 * spread))
        return jobs

    def _run(self, jobs, transport: str, stealing: bool, workers: int):
        from repro.cluster import FleetOrchestrator
        from repro.config import SystemConfig
        config = SystemConfig(fleet_transport=transport,
                              fleet_stealing=stealing)
        return FleetOrchestrator(jobs, num_edge_servers=self.NUM_EDGES,
                                 config=config,
                                 fleet_workers=workers).run()

    def test_transport_and_stealing_ratios(self, benchmark, hotpaths_report):
        jobs = self._jobs()
        serial = self._run(jobs, "pickle", False, workers=1)
        for transport, stealing in (("pickle", False), ("shm", False),
                                    ("shm", True)):
            report = self._run(jobs, transport, stealing,
                               self.FLEET_WORKERS)
            assert serial.parity_mismatches(report, 1e-6) == []

        # The parity runs above double as pool warm-up; best-of-N over at
        # least a second of samples per configuration keeps the recorded
        # ratios stable against scheduler jitter (each sample spawns a
        # fresh pool, which is part of what the transports are up against).
        pickle_static = min_time(
            lambda: self._run(jobs, "pickle", False, self.FLEET_WORKERS),
            repeats=5, min_total_seconds=1.0)
        shm_static = min_time(
            lambda: self._run(jobs, "shm", False, self.FLEET_WORKERS),
            repeats=5, min_total_seconds=1.0)
        shm_steal = min_time(
            lambda: self._run(jobs, "shm", True, self.FLEET_WORKERS),
            repeats=5, min_total_seconds=1.0)
        # Ratios only: absolute fleet wall-clocks are machine-specific and
        # would flake the 0.45 section tolerance across runners; the raw
        # seconds ride along as (ungated) context parameters.
        shm_ratio = hotpaths_report.record(
            "fleet.shm_transport.vs_pickle", pickle_static / shm_static,
            "ratio", cameras=self.NUM_CAMERAS, edges=self.NUM_EDGES,
            workers=self.FLEET_WORKERS, pickle_seconds=pickle_static,
            shm_seconds=shm_static)
        steal_ratio = hotpaths_report.record(
            "fleet.steal.vs_static", shm_static / shm_steal, "ratio",
            cameras=self.NUM_CAMERAS, edges=self.NUM_EDGES,
            workers=self.FLEET_WORKERS, static_seconds=shm_static,
            steal_seconds=shm_steal)
        benchmark(self._run, jobs, "shm", True, self.FLEET_WORKERS)
        # ~1.0 on a single core is the expected result; only sanity is
        # asserted (the perf gate compares the recorded ratios across runs).
        assert shm_ratio.value > 0
        assert steal_ratio.value > 0


class TestSchedulerEventLoop:
    NUM_JOBS = 20_000

    def _run_station(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "bench", capacity=4)
        for index in range(self.NUM_JOBS):
            station.submit(0.001 * (index % 7 + 1))
        scheduler.run()
        return scheduler

    def test_event_loop_throughput(self, benchmark, hotpaths_report):
        seconds = min_time(self._run_station, repeats=3)
        scheduler = self._run_station()
        events_per_second = scheduler.events_processed / seconds
        hotpaths_report.record("scheduler_event_loop", seconds, "seconds",
                               events=scheduler.events_processed)
        hotpaths_report.record("scheduler_event_loop.events_per_second",
                               events_per_second, "items_per_second")
        benchmark(self._run_station)
        assert scheduler.events_processed == self.NUM_JOBS
        assert events_per_second > 0


class TestScenarioMatrix:
    """The scenario DSL's defaults must cost nothing at render time.

    Every transform factory at its default is an exact no-op on the
    profile, so rendering a default-transformed scene must hit the exact
    same code path — no extra RNG draws, no extra float ops — as the
    plain profile.  The wall-clock ratio is recorded as the gated
    ``scenario_matrix.noop`` entry (~1.0x, machine-relative like
    ``adapt.overhead``), and a preset sweep records how many composed
    presets actually render, so the matrix cannot silently shrink.
    """

    RENDER_FRAMES = 24

    def _render(self, profile):
        scene = SyntheticScene(profile)
        for index in range(self.RENDER_FRAMES):
            scene.frame_array(index)
        return scene

    def test_default_transforms_are_free(self, benchmark, hotpaths_report):
        from repro.video.transforms import TRANSFORM_FACTORIES, apply_transforms

        profile = make_scenario("highway", duration_seconds=2.0,
                                render_scale=FRAME_RENDER_SCALE)
        defaults = [factory() for factory in TRANSFORM_FACTORIES.values()]
        transformed = apply_transforms(profile, *defaults)
        # Default transforms are exact no-ops on the profile itself, so
        # both sides below time the identical rendering path.
        assert transformed == profile
        plain_seconds = min_time(lambda: self._render(profile), repeats=3)
        transformed_seconds = min_time(lambda: self._render(transformed),
                                       repeats=3)
        entry = hotpaths_report.record_speedup(
            "scenario_matrix.noop", plain_seconds, transformed_seconds,
            frames=self.RENDER_FRAMES, transforms=len(defaults))
        benchmark(self._render, transformed)
        assert entry.value > 0

    def test_preset_matrix_renders(self, hotpaths_report):
        from repro.video.transforms import TRANSFORMS

        profile = make_scenario("highway", duration_seconds=2.0,
                                render_scale=FRAME_RENDER_SCALE)
        rendered = 0
        for name in sorted(TRANSFORMS):
            preset = TRANSFORMS[name]()(profile)
            scene = SyntheticScene(preset)
            scene.frame_array(0)
            scene.frame_array(self.RENDER_FRAMES - 1)
            rendered += 1
        hotpaths_report.record("scenario_matrix.presets", rendered, "items",
                               frames_each=2)
        assert rendered == len(TRANSFORMS)
