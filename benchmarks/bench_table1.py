"""Benchmark harness for Table I (dataset inventory)."""

from repro.experiments import table1


def test_table1(benchmark, bench_config):
    """Regenerate Table I and verify the synthetic stand-ins."""
    rows = benchmark(table1.run, bench_config, True)
    print()
    print(table1.render(rows))
    assert len(rows) == 5
    for row in rows:
        assert row["synthetic_events"] >= 1
