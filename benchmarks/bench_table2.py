"""Benchmark harness for Table II (semantic vs default encoder parameters)."""

from repro.experiments import table2


def test_table2(benchmark, bench_config):
    """Tune on the train split, evaluate on the test split, print Table II."""
    rows = benchmark.pedantic(table2.run, args=(bench_config,), iterations=1,
                              rounds=1)
    print()
    print(table2.render(rows))
    assert rows, "Table II produced no rows"
    for row in rows:
        # Paper shape: tuned parameters beat the defaults on F1 and accuracy,
        # at a sample size in the low single-digit percent range.
        assert row.semantic_f1 > row.default_f1
        assert row.semantic_accuracy > row.default_accuracy
        assert row.semantic_sampling < 0.10
