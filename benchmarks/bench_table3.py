"""Benchmark harness for Table III (event-detection speed)."""

from repro.experiments import ExperimentConfig, table3


def test_table3_simulated(benchmark):
    """Cost-model Table III at the paper's nominal resolutions."""
    config = ExperimentConfig(datasets=("jackson_square", "coral_reef", "venice"))
    rows = benchmark(table3.run, config, False)
    print()
    print(table3.render(rows))
    by_name = {row.dataset: row for row in rows}
    # Paper: 19600 / 7200 / 2300 fps for SiEVE and ~100-170x speedups.
    assert by_name["jackson_square"].sieve_fps > 10_000
    assert by_name["venice"].sieve_fps > 2_000
    for row in rows:
        assert row.sieve_speedup_vs_mse > 50
        assert row.sieve_speedup_vs_sift > 80


def test_table3_wallclock(benchmark, bench_config_small):
    """Wall-clock throughput of this library's own seek / MSE / SIFT paths."""
    config = ExperimentConfig(duration_seconds=bench_config_small.duration_seconds,
                              render_scale=bench_config_small.render_scale,
                              datasets=("jackson_square",))
    rows = benchmark.pedantic(table3.run, args=(config, True), iterations=1, rounds=1)
    print()
    print(table3.render(rows))
    row = rows[0]
    # The ordering must hold for the real implementations too.
    assert row.measured_sieve_fps > row.measured_mse_fps > 0
    assert row.measured_sieve_fps > row.measured_sift_fps > 0
