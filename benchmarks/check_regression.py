#!/usr/bin/env python3
"""CI perf gate: fail the build when a bench report regresses.

Compares the most recent run record of a freshly emitted ``BENCH_*.json``
against the most recent run of the committed baseline copy and fails
(exit code 1) when any gated measurement regresses by more than the
allowed fraction — by default 30 %, configurable per section.

Gated measurements:

* ``seconds`` entries (higher is worse), excluding ``*.baseline`` probes
  (they time the retained reference implementations, which are expected to
  be slow) and entries whose baseline is below the noise floor
  (``--min-seconds``);
* ``items_per_second`` throughputs (lower is worse);
* ``ratio`` speedups (lower is worse) — these compare the optimised path
  against the reference *on the same machine*, so they stay meaningful
  even when the CI runner's absolute speed differs from the machine that
  recorded the committed baseline.

A markdown delta table is printed to stdout and appended to
``$GITHUB_STEP_SUMMARY`` when set, so the gate's reasoning shows up in the
job summary.

Usage::

    python benchmarks/check_regression.py \
        --baseline /tmp/baselines/BENCH_hotpaths.json \
        --current BENCH_hotpaths.json \
        --default-tolerance 0.30 \
        --tolerance nn_inference=0.60 --tolerance scheduler_event_loop=0.50

The *section* of an entry is its name up to the first dot
(``entropy_encode.optimised`` -> ``entropy_encode``).  ``--tolerance``
also accepts a *full entry name*, which takes precedence over its
section's tolerance — used when one entry of a section needs a different
allowance (e.g. a machine-relative ratio gated tightly next to an
absolute wall-clock that must only gate catastrophic blowups).

``--require NAME`` (repeatable; a section or a full entry name) fails the
gate when no gated measurement matching it was compared — protecting
contract measurements (the cache-speedup ratio, the parallel-build ratio)
from being renamed or dropped and silently falling out of the gate.  Pin
the full entry name (``workload_cache.speedup``) when the contract is one
specific entry of a multi-entry section.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Default allowed regression fraction (0.30 = 30 %).
DEFAULT_TOLERANCE = 0.30

#: ``seconds`` entries whose baseline is below this are skipped: at
#: sub-millisecond scale the scheduler jitter of a shared CI runner
#: dwarfs any real change.
DEFAULT_MIN_SECONDS = 0.005

#: Entry-name suffixes never gated (reference-implementation probes).
UNGATED_SUFFIXES = (".baseline",)


@dataclass
class Delta:
    """The comparison of one bench entry between baseline and current.

    Attributes:
        name: Entry name.
        section: Entry section (name up to the first dot).
        unit: Entry unit.
        baseline: Baseline value.
        current: Current value.
        regression: Signed regression fraction (positive = worse).
        tolerance: Allowed regression fraction for the section.
        gated: Whether this entry can fail the build.
        skip_reason: Why the entry is not gated (empty when gated).
    """

    name: str
    section: str
    unit: str
    baseline: float
    current: float
    regression: float
    tolerance: float
    gated: bool
    skip_reason: str = ""

    @property
    def failed(self) -> bool:
        """Whether this entry regresses beyond its tolerance."""
        return self.gated and self.regression > self.tolerance


def latest_run(path: str) -> Dict[str, object]:
    """The newest run record of a ``BENCH_*.json`` trajectory file."""
    with open(path, "r", encoding="utf-8") as handle:
        runs = json.load(handle)
    if not isinstance(runs, list) or not runs:
        raise ValueError(f"{path} holds no bench run records")
    return runs[-1]


def entry_values(run: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """``{entry name: entry}`` for one run record (last wins on duplicates)."""
    return {str(entry["name"]): entry for entry in run.get("entries", [])}


def section_of(name: str) -> str:
    """The tolerance section of an entry (name up to the first dot)."""
    return name.split(".", 1)[0]


def compare_runs(baseline_run: Dict[str, object],
                 current_run: Dict[str, object],
                 tolerances: Optional[Dict[str, float]] = None,
                 default_tolerance: float = DEFAULT_TOLERANCE,
                 min_seconds: float = DEFAULT_MIN_SECONDS) -> List[Delta]:
    """Compare two run records entry by entry.

    Entries present in only one of the runs are ignored (new measurements
    gate from their second recorded run onward).
    """
    tolerances = tolerances or {}
    baseline_entries = entry_values(baseline_run)
    current_entries = entry_values(current_run)
    deltas: List[Delta] = []
    for name in sorted(set(baseline_entries) & set(current_entries)):
        base_entry = baseline_entries[name]
        unit = str(base_entry.get("unit", ""))
        base = float(base_entry["value"])
        current = float(current_entries[name]["value"])
        section = section_of(name)
        # Exact-name overrides beat section overrides beat the default.
        tolerance = float(tolerances.get(
            name, tolerances.get(section, default_tolerance)))
        if unit == "seconds":
            regression = (current - base) / base if base > 0 else 0.0
        elif unit in ("items_per_second", "ratio"):
            regression = (base - current) / base if base > 0 else 0.0
        else:
            regression = 0.0
        gated, skip_reason = True, ""
        if any(name.endswith(suffix) for suffix in UNGATED_SUFFIXES):
            gated, skip_reason = False, "reference probe"
        elif unit == "seconds" and base < min_seconds:
            gated, skip_reason = False, f"below {min_seconds:g}s floor"
        elif unit not in ("seconds", "items_per_second", "ratio"):
            gated, skip_reason = False, f"unit {unit!r} not gated"
        deltas.append(Delta(name=name, section=section, unit=unit,
                            baseline=base, current=current,
                            regression=regression, tolerance=tolerance,
                            gated=gated, skip_reason=skip_reason))
    return deltas


def render_markdown(deltas: Sequence[Delta], title: str) -> str:
    """The delta table as GitHub-flavoured markdown."""
    lines = [f"### Perf gate: {title}", ""]
    lines.append("| status | metric | unit | baseline | current | delta | "
                 "limit |")
    lines.append("| --- | --- | --- | ---: | ---: | ---: | ---: |")
    for delta in deltas:
        if delta.failed:
            status = "❌ regressed"
        elif not delta.gated:
            status = f"⚪ skipped ({delta.skip_reason})"
        else:
            status = "✅ ok"
        limit = f"{delta.tolerance * 100:.0f}%" if delta.gated else "—"
        lines.append(
            f"| {status} | `{delta.name}` | {delta.unit} "
            f"| {delta.baseline:.5g} | {delta.current:.5g} "
            f"| {delta.regression * 100:+.1f}% | {limit} |")
    failed = [delta for delta in deltas if delta.failed]
    lines.append("")
    if failed:
        lines.append(f"**{len(failed)} measurement(s) regressed beyond "
                     f"tolerance.**")
    else:
        lines.append("All gated measurements within tolerance.")
    return "\n".join(lines)


def parse_tolerances(items: Sequence[str]) -> Dict[str, float]:
    """Parse repeated ``--tolerance section=fraction`` options."""
    tolerances: Dict[str, float] = {}
    for item in items:
        section, _, value = item.partition("=")
        if not section or not value:
            raise argparse.ArgumentTypeError(
                f"expected SECTION=FRACTION, got {item!r}")
        tolerances[section.strip()] = float(value)
    return tolerances


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a BENCH_*.json report regresses vs baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly emitted BENCH_*.json")
    parser.add_argument("--default-tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed regression fraction (default 0.30)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="NAME=FRACTION",
                        help="tolerance override for a section or a full "
                             "entry name; exact names win (repeatable)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="noise floor below which seconds entries are "
                             "skipped (default 0.005)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a gated measurement with this "
                             "section or exact entry name was compared "
                             "(repeatable)")
    arguments = parser.parse_args(argv)

    deltas = compare_runs(
        latest_run(arguments.baseline), latest_run(arguments.current),
        tolerances=parse_tolerances(arguments.tolerance),
        default_tolerance=arguments.default_tolerance,
        min_seconds=arguments.min_seconds)
    markdown = render_markdown(
        deltas, os.path.basename(arguments.current))
    print(markdown)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n\n")
    if not any(delta.gated for delta in deltas):
        # A gate that gates nothing is not green, it is broken: renamed
        # bench entries or an empty intersection must fail loudly rather
        # than silently disabling the regression check.
        print("ERROR: no gated measurements — baseline and current runs "
              "share no comparable gated entries", file=sys.stderr)
        return 1
    missing = [required for required in arguments.require
               if not any(delta.gated and required in (delta.section,
                                                       delta.name)
                          for delta in deltas)]
    if missing:
        # A required contract measurement fell out of the comparison
        # (renamed entry, dropped measurement): fail rather than pass
        # vacuously.
        print("ERROR: required gated measurement(s) missing from the "
              f"comparison: {', '.join(missing)}", file=sys.stderr)
        return 1
    return 1 if any(delta.failed for delta in deltas) else 0


if __name__ == "__main__":
    sys.exit(main())
