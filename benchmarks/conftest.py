"""Shared configuration for the benchmark harnesses.

Each ``bench_*`` module regenerates one table or figure of the paper, prints
it, and records its wall-clock cost with pytest-benchmark.  The footage scale
is controlled by the ``REPRO_EXPERIMENT_DURATION`` / ``REPRO_EXPERIMENT_SCALE``
environment variables (see :class:`repro.experiments.ExperimentConfig`); the
defaults below keep a full ``pytest benchmarks/ --benchmark-only`` run in the
ten-minute range on a laptop CPU.

Benchmark modules additionally record machine-readable measurements through
:class:`repro.perf.BenchReport`; reports are written to ``BENCH_<name>.json``
at the repository root when the session ends, which is how the repo's perf
trajectory accumulates across PRs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig
from repro.logging_utils import configure_logging
from repro.perf import BenchReport
from repro.perf.report import load_bench_runs

#: Default benchmark footage scale (can be overridden via the environment).
BENCH_DURATION_SECONDS = float(os.environ.get("REPRO_EXPERIMENT_DURATION", 30.0))
BENCH_RENDER_SCALE = float(os.environ.get("REPRO_EXPERIMENT_SCALE", 0.10))

#: Repository root — bench reports are written next to ROADMAP.md.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session", autouse=True)
def _logging():
    configure_logging()


@pytest.fixture(scope="session", autouse=True)
def _cold_cache_dir(tmp_path_factory):
    """Run every benchmark session against a fresh ``REPRO_CACHE_DIR``.

    The recorded "cold" timings must measure real renders/encodes, not
    whatever happens to sit in the developer's warm user-level cache —
    otherwise committed baselines would not be comparable with CI's fresh
    runners and the perf gate would misfire.  Warm-hit costs are measured
    explicitly (``prepare_workload.warm_disk`` in ``bench_figure4``)
    against this same per-session directory.
    """
    from repro.datasets.diskcache import temporary_cache_dir
    with temporary_cache_dir(tmp_path_factory.mktemp("bench-cache")):
        yield


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Footage scale shared by all benchmark harnesses."""
    return ExperimentConfig(duration_seconds=BENCH_DURATION_SECONDS,
                            render_scale=BENCH_RENDER_SCALE,
                            datasets=("jackson_square", "coral_reef", "venice"))


@pytest.fixture(scope="session")
def bench_config_small() -> ExperimentConfig:
    """Smaller scale for the heavier end-to-end harnesses (Figures 4-5)."""
    return ExperimentConfig(duration_seconds=min(BENCH_DURATION_SECONDS, 20.0),
                            render_scale=min(BENCH_RENDER_SCALE, 0.08))


#: How many of the most recent run records feed the variance estimate.
#: The trajectory spans code versions (intentional perf changes land as
#: new records), so only a short trailing window approximates same-code
#: run-over-run noise; the caveat is inherent — the estimate is an upper
#: bound whenever a real perf change sits inside the window.
VARIANCE_WINDOW_RUNS = 5


def observed_run_variance(path: str) -> dict:
    """Run-over-run variance of each wall-clock entry in a bench trajectory.

    Reads the committed ``BENCH_*.json`` run records and reports, per
    ``seconds`` entry with at least three recorded runs inside the
    trailing :data:`VARIANCE_WINDOW_RUNS` window, the mean and the
    coefficient of variation.  The result is stored in every new run's
    context metadata, which is what justifies (and re-audits, every run)
    the end-to-end wall-clock tolerance the CI figure4 gate applies: the
    gate's allowance should track the *measured* runner noise instead of a
    guessed constant.  Note this measures same-machine repeat noise — the
    gate still pairs it with wide per-section allowances for entries whose
    absolute value depends on the runner's hardware.
    """
    try:
        runs = load_bench_runs(path)
    except (OSError, ValueError):
        return {}
    series: dict = {}
    for run in runs[-VARIANCE_WINDOW_RUNS:]:
        for entry in run.get("entries", []):
            if entry.get("unit") == "seconds":
                series.setdefault(str(entry["name"]), []).append(
                    float(entry["value"]))
    stats = {}
    for name, values in sorted(series.items()):
        if len(values) < 3:
            continue
        mean = sum(values) / len(values)
        if mean <= 0:
            continue
        deviation = (sum((value - mean) ** 2 for value in values)
                     / len(values)) ** 0.5
        stats[name] = {"runs": len(values),
                       "mean_seconds": round(mean, 6),
                       "cv": round(deviation / mean, 4)}
    return stats


@pytest.fixture(scope="session")
def bench_report_factory():
    """Factory producing named :class:`BenchReport` instances.

    Every report created through the factory that recorded at least one
    entry is written to ``BENCH_<name>.json`` at the repository root when
    the test session finishes.  Each run's context carries the observed
    run-over-run wall-clock variance of the existing trajectory (see
    :func:`observed_run_variance`).
    """
    reports = []

    def make(name: str) -> BenchReport:
        report = BenchReport(name, context={
            "duration_seconds": BENCH_DURATION_SECONDS,
            "render_scale": BENCH_RENDER_SCALE,
            "observed_wallclock_variance": observed_run_variance(
                os.path.join(REPO_ROOT, f"BENCH_{name}.json")),
        })
        reports.append(report)
        return report

    yield make
    for report in reports:
        if report.entries:
            report.write(report.default_path(REPO_ROOT))
