#!/usr/bin/env python3
"""Chaos soak: replay a seeded fault storm and prove the service heals.

Where ``streaming_service.py`` demonstrates the happy path, this example
draws a **seeded fault plan** (two edge crashes — one permanent, one
transient — a WAN partition window, a camera stream stall, and a pool
worker kill) and replays it against the live service and the batch
fleet.  It asserts the whole self-healing contract:

1. **Zero lost chunks** — every chunk accepted by the service completes
   or is failed out with a reason; the drain terminates.
2. **Full accounting** — the recovery counters match the injected plan:
   both crashes seen, the transient edge restarted, sessions failed over
   off the dead edge, the stalled session reaped by the watchdog, and
   every failed-over stream accounted at its final edge in the report.
3. **Determinism** — the virtual-clock and real-time runs produce the
   *identical* recovery trace and fleet report; CI runs this example
   twice and diffs the ``--trace-out`` files verbatim.
4. **Worker-kill recovery** — the multiprocess fleet run survives the
   planned worker kill bit-identically to the serial reference.

Run with:  python examples/chaos_soak.py [--seed 7] [--speedup 400]
                                         [--edges 3] [--cameras 6]
                                         [--chunks 6] [--trace-out FILE]
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple

from repro.cluster import CameraJob, FleetOrchestrator
from repro.faults import FaultPlan, ResilienceConfig
from repro.logging_utils import configure_logging
from repro.rng import make_rng
from repro.service import (ChunkFeeder, ClockDriver, RealTimeClock,
                           StreamingService, TenantPolicy, VirtualClock,
                           chunk_camera_job)

TOLERANCE = 1e-6

#: Virtual seconds between a camera's consecutive chunk pushes.
PERIOD_SECONDS = 0.5

#: Narrow per-session in-flight bound: makes stalls observable (pushes
#: bounce once the stalled uplink wedges) so the watchdog can see them.
MAX_PENDING_CHUNKS = 2

#: Self-healing knobs shared by every soak run.
RESILIENCE = ResilienceConfig(stall_timeout_seconds=1.0,
                              watchdog_period_seconds=0.25,
                              breaker_cooldown_seconds=1.0)


def build_camera_plans(num_cameras: int, num_chunks: int,
                       seed: int) -> List[Tuple[str, list]]:
    """Deterministic per-camera chunk plans, drawn from the seeded tree."""
    plans = []
    for index in range(num_cameras):
        camera = f"cam-{index:02d}"
        rng = make_rng(seed, "chaos", camera)
        frames = int(rng.integers(180, 300))
        job = CameraJob(
            camera=camera, video=f"stream:{camera}",
            num_frames=frames,
            frames_for_inference=max(frames // 10, 1),
            edge_seconds=float(rng.uniform(0.25, 0.45)) * num_chunks,
            cloud_seconds=float(rng.uniform(0.08, 0.15)) * num_chunks,
            camera_edge_bytes=int(rng.uniform(0.5e6, 1.0e6)) * num_chunks,
            edge_cloud_bytes=int(rng.uniform(0.6e5, 1.2e5)) * num_chunks,
        )
        plans.append((camera, chunk_camera_job(job, num_chunks)))
    return plans


def run_service_soak(plans, plan: FaultPlan, num_edges: int,
                     clock: ClockDriver) -> StreamingService:
    """Feed every camera through the storm and drain to completion."""
    service = StreamingService(
        num_edge_servers=num_edges, clock=clock, faults=plan,
        resilience=RESILIENCE,
        max_sessions=len(plans) + 8,
        tenants=(TenantPolicy(name="cams", max_sessions=len(plans) + 8,
                              max_pending_chunks=MAX_PENDING_CHUNKS),))
    for index, (camera, chunks) in enumerate(plans):
        service.open_session(camera, tenant="cams")
        ChunkFeeder(service, camera, chunks,
                    period_seconds=PERIOD_SECONDS).start(at=0.1 * index)
    service.drain()
    return service


def assert_zero_lost_chunks(service: StreamingService) -> None:
    for session in service.ingest.sessions.values():
        if session.in_flight != 0:
            raise AssertionError(
                f"session {session.session_id!r} still has "
                f"{session.in_flight} chunks in flight after the drain")
        accounted = session.chunks_completed + session.chunks_failed
        if session.chunks_pushed != accounted:
            raise AssertionError(
                f"session {session.session_id!r} lost chunks: "
                f"{session.chunks_pushed} pushed, {accounted} accounted")


def assert_recovery_census(service: StreamingService,
                           plan: FaultPlan) -> None:
    """The counters must match the storm the plan actually injected."""
    stats = service.fault_stats()
    if stats is None:
        raise AssertionError("the storm left no fault statistics at all")
    expected_crashes = len(plan.edge_crashes)
    expected_restarts = sum(1 for crash in plan.edge_crashes
                            if not crash.permanent)
    checks = (
        ("crashes_seen", stats.crashes_seen, expected_crashes),
        ("edges_restarted", stats.edges_restarted, expected_restarts),
        ("wan_partitions", stats.wan_partitions,
         len(plan.wan_degradations)),
        ("stream_stalls", stats.stream_stalls, len(plan.stream_stalls)),
    )
    for name, got, expected in checks:
        if got != expected:
            raise AssertionError(f"{name}: expected {expected}, got {got}")
    if any(crash.permanent for crash in plan.edge_crashes):
        if stats.sessions_relocated < 1:
            raise AssertionError("permanent crash relocated no sessions")
    if plan.stream_stalls and stats.sessions_stalled < 1:
        raise AssertionError("the stall tripped no watchdog close")
    if stats.chunks_dropped != 0:
        raise AssertionError(f"{stats.chunks_dropped} chunks dropped")
    # Failed-over streams are accounted at their final edge.
    report = service.fleet_report()
    for session in service.ingest.sessions.values():
        if report.assignments[session.camera] != session.edge_index:
            raise AssertionError(
                f"report places {session.camera!r} on edge "
                f"{report.assignments[session.camera]}, session is on "
                f"{session.edge_index}")


def run_fleet_worker_kill(plan: FaultPlan, num_edges: int,
                          seed: int) -> None:
    """Phase B: the multiprocess fleet survives the planned worker kill."""
    rng = make_rng(seed, "chaos", "fleet")
    jobs = [CameraJob(camera=f"fleet-cam{index}", video=f"vid{index}",
                      num_frames=int(rng.integers(100, 200)),
                      frames_for_inference=int(rng.integers(5, 20)),
                      edge_seconds=float(rng.uniform(0.3, 0.8)),
                      cloud_seconds=float(rng.uniform(0.1, 0.3)),
                      camera_edge_bytes=int(rng.uniform(5e5, 2e6)),
                      edge_cloud_bytes=int(rng.uniform(5e4, 3e5)))
            for index in range(num_edges * 3)]
    kills = FaultPlan(specs=plan.worker_kills)
    serial = FleetOrchestrator(jobs, num_edge_servers=num_edges,
                               fleet_workers=1).run()
    killed = FleetOrchestrator(jobs, num_edge_servers=num_edges,
                               fleet_workers=num_edges, faults=kills).run()
    mismatches = serial.parity_mismatches(killed, TOLERANCE)
    if mismatches:
        raise AssertionError(
            "worker-kill run diverged from the serial reference: "
            + "; ".join(mismatches))
    print(f"fleet worker-kill phase: {len(plan.worker_kills)} worker(s) "
          f"killed, recovered shard(s) re-run inline, parity exact on all "
          f"{len(serial.as_dict())} report metrics")


def trace_document(service: StreamingService) -> List[str]:
    """The deterministic lines CI diffs across same-seed runs."""
    lines = ["# recovery trace"]
    lines.extend(service.recovery_trace.lines())
    lines.append("# fault counters")
    stats = service.fault_stats()
    for name, value in sorted((stats.as_dict() if stats else {}).items()):
        lines.append(f"{name}={value}")
    lines.append("# close reasons")
    for reason, count in sorted(service.ingest.close_reasons.items()):
        lines.append(f"{reason}={count}")
    return lines


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7,
                        help="root seed of the workload and the fault plan "
                             "(default: 7)")
    parser.add_argument("--speedup", type=float, default=400.0,
                        help="real-time speedup for the paced run "
                             "(default: 400)")
    parser.add_argument("--edges", type=int, default=3,
                        help="edge servers (default: 3)")
    parser.add_argument("--cameras", type=int, default=6,
                        help="camera streams (default: 6)")
    parser.add_argument("--chunks", type=int, default=6,
                        help="chunks each camera pushes (default: 6)")
    parser.add_argument("--trace-out", type=str, default=None,
                        help="write the deterministic recovery trace to "
                             "this file (CI diffs two same-seed runs)")
    arguments = parser.parse_args()
    if arguments.edges < 3 or arguments.cameras < 3 or arguments.chunks < 2:
        parser.error("need --edges >= 3, --cameras >= 3, --chunks >= 2")
    configure_logging()

    plans = build_camera_plans(arguments.cameras, arguments.chunks,
                               arguments.seed)
    horizon = PERIOD_SECONDS * arguments.chunks + 1.0
    plan = FaultPlan.seeded(
        arguments.seed, num_edge_servers=arguments.edges,
        cameras=tuple(camera for camera, _ in plans),
        horizon_seconds=horizon)
    print(f"storm (seed {arguments.seed}): "
          f"{len(plan.edge_crashes)} edge crashes, "
          f"{len(plan.wan_degradations)} WAN partition(s), "
          f"{len(plan.stream_stalls)} stream stall(s), "
          f"{len(plan.worker_kills)} worker kill(s) over "
          f"{arguments.cameras} cameras x {arguments.chunks} chunks on "
          f"{arguments.edges} edges\n")

    print("=== virtual clock (reference) ===")
    baseline = run_service_soak(plans, plan, arguments.edges,
                                VirtualClock())
    assert_zero_lost_chunks(baseline)
    assert_recovery_census(baseline, plan)
    stats = baseline.fault_stats()
    print(f"drained in {baseline.wall_run_seconds * 1e3:.1f} wall ms; "
          f"{stats.sessions_relocated} session(s) failed over, "
          f"{stats.sessions_stalled} reaped by the watchdog, "
          f"{stats.chunks_failed_over} chunk submissions requeued, "
          f"0 chunks lost\n")

    print(f"=== real-time clock (speedup {arguments.speedup:g}x) ===")
    live = run_service_soak(plans, plan, arguments.edges,
                            RealTimeClock(speedup=arguments.speedup))
    assert_zero_lost_chunks(live)
    mismatches = baseline.fleet_report().parity_mismatches(
        live.fleet_report(), TOLERANCE)
    mismatches += baseline.recovery_trace.mismatches(live.recovery_trace)
    mismatches += baseline.fault_stats().mismatches(live.fault_stats())
    if mismatches:
        raise AssertionError("real-time soak diverged from the virtual "
                             "reference: " + "; ".join(mismatches))
    print(f"drained in {live.wall_run_seconds:.2f} wall s; recovery trace, "
          f"fault counters and fleet report identical to the virtual run\n")

    run_fleet_worker_kill(plan, arguments.edges, arguments.seed)

    document = trace_document(baseline)
    print("\n".join(["", "=== recovery trace ==="] + document))
    if arguments.trace_out:
        with open(arguments.trace_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(document) + "\n")
        print(f"\ntrace written to {arguments.trace_out}")


if __name__ == "__main__":
    main()
