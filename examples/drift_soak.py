#!/usr/bin/env python3
"""Drift soak: a camera stream drifts into night and the service re-tunes.

Where ``chaos_soak.py`` proves the service heals from *infrastructure*
faults, this example proves it adapts to *content* drift.  The ``drifting``
scenario renders a highway feed whose illumination, flicker, sensor noise
and object contrast all morph daylight-to-night across the clip.  A tuner
frozen on the bright opening (the paper's offline protocol, Section IV)
slowly rots; the online :class:`~repro.adapt.AdaptiveTuningController`
detects the drift from per-chunk scene statistics, re-runs the cheap grid
search over its sliding window, and re-tunes the live session without
dropping it.  The soak asserts the whole contract:

1. **Adaptation wins** — the adaptive schedule's accuracy-vs-bitrate
   trajectory strictly beats the frozen baseline's F1 on the full clip.
2. **At least one retune applies** and the versioned history records it
   as auditable ``(time, trigger, old, new, score)`` entries.
3. **Determinism** — the virtual-clock and real-time runs produce
   *byte-identical* retune histories and parity-exact fleet reports; CI
   runs this example twice and diffs the ``--history-out`` files verbatim.

Any scenario name or composition spec works as the content source —
``--scenario drifting`` is the default, but e.g.
``--scenario highway+rain+night_cycle`` soaks the service on a DSL-composed
feed instead.

Run with:  python examples/drift_soak.py [--scenario drifting] [--seed 11]
                                         [--speedup 400]
                                         [--duration 60] [--scale 0.12]
                                         [--history-out FILE]
"""

from __future__ import annotations

import argparse
from typing import List, Sequence

import numpy as np

from repro.adapt import AdaptiveConfig
from repro.codec.gop import EncoderParameters, StreamingKeyframePlacer
from repro.core.metrics import evaluate_sampling
from repro.core.tuner import SemanticEncoderTuner
from repro.logging_utils import configure_logging
from repro.service import (ChunkFeeder, ClockDriver, FrameChunk,
                           RealTimeClock, StreamingService, VirtualClock,
                           analyse_scenario, chunk_analysis)
from repro.video.events import EventTimeline
from repro.video.frame import FrameType

TOLERANCE = 1e-6

CAMERA = "cam-drift"

#: Seconds of footage per pushed chunk; the feeder pushes one chunk per
#: this many *virtual* seconds, so decision times match footage time.
CHUNK_SECONDS = 2.0

#: Fraction of the clip the offline warm-up tune sees (the "training
#: split" a frozen deployment would have been tuned on).
WARMUP_FRACTION = 0.25


def warmup_tune(chunks: Sequence[FrameChunk]) -> EncoderParameters:
    """The frozen baseline: offline tune on the bright opening split."""
    warm = max(int(len(chunks) * WARMUP_FRACTION), 3)
    activities = [a for chunk in chunks[:warm] for a in chunk.scene.activities]
    labels = [l for chunk in chunks[:warm] for l in chunk.scene.frame_labels]
    result = SemanticEncoderTuner().tune_from_activities(
        activities, EventTimeline.from_frame_labels(labels))
    return result.best_parameters


def run_soak(chunks: Sequence[FrameChunk], frozen: EncoderParameters,
             clock: ClockDriver) -> StreamingService:
    """Stream the clip through an adaptive service and drain it."""
    service = StreamingService(
        clock=clock, adaptive=AdaptiveConfig(initial_parameters=frozen))
    service.open_session(CAMERA)
    ChunkFeeder(service, CAMERA, chunks,
                period_seconds=CHUNK_SECONDS).start(at=0.0)
    service.drain()
    return service


def applied_schedule(service: StreamingService, frozen: EncoderParameters,
                     num_chunks: int) -> List[EncoderParameters]:
    """Per-chunk parameters in force, reconstructed from the audit table.

    A retune recorded at virtual time ``t`` happened inside the push of
    chunk ``t / CHUNK_SECONDS`` and governs every *later* push — exactly
    the camera's view of the deployment.
    """
    schedule = [frozen] * num_chunks
    for record in service.adaptive.table.history(CAMERA):
        if record.trigger == "initial":
            continue
        first = int(round(record.time / CHUNK_SECONDS)) + 1
        for index in range(min(first, num_chunks), num_chunks):
            schedule[index] = record.new
    return schedule


def replay_metrics(chunks: Sequence[FrameChunk],
                   schedule: Sequence[EncoderParameters]):
    """Score a per-chunk parameter schedule over the whole clip."""
    placer = None
    keyframes: List[int] = []
    index = 0
    for chunk, parameters in zip(chunks, schedule):
        if placer is None:
            placer = StreamingKeyframePlacer(parameters)
        placer.parameters = parameters
        for activity in chunk.scene.activities:
            if placer.decide(activity) is FrameType.I:
                keyframes.append(index)
            index += 1
    labels = [l for chunk in chunks for l in chunk.scene.frame_labels]
    return evaluate_sampling(EventTimeline.from_frame_labels(labels),
                             keyframes)


def trajectory(chunks, frozen_schedule, adaptive_schedule,
               segment_chunks: int = 5) -> List[str]:
    """Accuracy-vs-bitrate trajectory, segment by segment."""
    lines = []
    for lo in range(0, len(chunks), segment_chunks):
        hi = min(lo + segment_chunks, len(chunks))
        frozen = replay_metrics(chunks[lo:hi], frozen_schedule[lo:hi])
        adaptive = replay_metrics(chunks[lo:hi], adaptive_schedule[lo:hi])
        lines.append(
            f"chunks {lo:2d}-{hi - 1:2d}: "
            f"frozen acc={frozen.accuracy:.4f} ss={frozen.sampling_fraction:.4f}"
            f" | adaptive acc={adaptive.accuracy:.4f} "
            f"ss={adaptive.sampling_fraction:.4f}")
    return lines


def history_document(service: StreamingService) -> List[str]:
    """The deterministic lines CI diffs across same-seed runs."""
    lines = ["# retune history"]
    lines.extend(service.adaptive.history_lines())
    lines.append("# retune counters")
    for name, value in sorted(service.adaptive.counters().items()):
        lines.append(f"{name}={value}")
    lines.append("# controller trace")
    lines.extend(service.adaptive.trace.lines())
    return lines


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", type=str, default="drifting",
                        help="scenario name or composition spec, e.g. "
                             "highway+rain+night_cycle (default: drifting)")
    parser.add_argument("--seed", type=int, default=11,
                        help="scenario seed (default: 11)")
    parser.add_argument("--speedup", type=float, default=400.0,
                        help="real-time speedup for the paced run "
                             "(default: 400)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="clip seconds (default: 60)")
    parser.add_argument("--scale", type=float, default=0.12,
                        help="render scale (default: 0.12)")
    parser.add_argument("--history-out", type=str, default=None,
                        help="write the deterministic retune history to "
                             "this file (CI diffs two same-seed runs)")
    arguments = parser.parse_args()
    configure_logging()

    print(f"rendering + analysing the {arguments.scenario!r} clip "
          f"({arguments.duration:g}s @ scale {arguments.scale:g}, "
          f"seed {arguments.seed}) ...")
    analysis = analyse_scenario(arguments.scenario, arguments.duration,
                                arguments.scale, seed=arguments.seed)
    chunks = chunk_analysis(analysis, chunk_seconds=CHUNK_SECONDS)
    frozen = warmup_tune(chunks)
    lumas, fps = analysis.lumas, analysis.fps
    print(f"{len(chunks)} chunks of {CHUNK_SECONDS:g}s; mean luma drifts "
          f"{lumas[0]:.0f} -> {np.mean(lumas[-int(fps):]):.0f}; "
          f"frozen warm-up tune: {frozen.describe()}\n")

    print("=== virtual clock (reference) ===")
    baseline = run_soak(chunks, frozen, VirtualClock())
    applied = baseline.adaptive.retunes_applied
    suppressed = baseline.adaptive.retunes_suppressed
    print(f"drained in {baseline.wall_run_seconds * 1e3:.1f} wall ms; "
          f"{applied} retune(s) applied, {suppressed} suppressed as "
          f"tie-equal no-ops\n")
    if applied < 1:
        raise AssertionError("the drift soak applied no retune at all")

    print(f"=== real-time clock (speedup {arguments.speedup:g}x) ===")
    live = run_soak(chunks, frozen,
                    RealTimeClock(speedup=arguments.speedup))
    mismatches = baseline.fleet_report().parity_mismatches(
        live.fleet_report(), TOLERANCE)
    if history_document(baseline) != history_document(live):
        mismatches.append("retune histories differ across clock drivers")
    if mismatches:
        raise AssertionError("real-time soak diverged from the virtual "
                             "reference: " + "; ".join(mismatches))
    print(f"drained in {live.wall_run_seconds:.2f} wall s; retune history "
          f"and fleet report identical to the virtual run\n")

    frozen_schedule = [frozen] * len(chunks)
    adaptive_schedule = applied_schedule(baseline, frozen, len(chunks))
    print("=== accuracy-vs-bitrate trajectory ===")
    for line in trajectory(chunks, frozen_schedule, adaptive_schedule):
        print(line)
    frozen_score = replay_metrics(chunks, frozen_schedule)
    adaptive_score = replay_metrics(chunks, adaptive_schedule)
    print(f"\nfull clip: frozen   acc={frozen_score.accuracy:.4f} "
          f"ss={frozen_score.sampling_fraction:.4f} "
          f"f1={frozen_score.f1:.4f}")
    print(f"full clip: adaptive acc={adaptive_score.accuracy:.4f} "
          f"ss={adaptive_score.sampling_fraction:.4f} "
          f"f1={adaptive_score.f1:.4f}")
    if not adaptive_score.f1 > frozen_score.f1:
        raise AssertionError(
            f"adaptive F1 {adaptive_score.f1:.4f} does not beat the frozen "
            f"baseline {frozen_score.f1:.4f}")
    print("adaptive beats frozen: "
          f"F1 +{adaptive_score.f1 - frozen_score.f1:.4f}")

    document = history_document(baseline)
    print("\n".join(["", "=== retune history ==="] + document))
    if arguments.history_out:
        with open(arguments.history_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(document) + "\n")
        print(f"\nhistory written to {arguments.history_out}")


if __name__ == "__main__":
    main()
