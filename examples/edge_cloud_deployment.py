#!/usr/bin/env python3
"""Compare the five end-to-end deployments of Section V-B.

Builds the five Table I camera feeds, prepares a workload for each (semantic
encoding, default encoding, tuned MSE threshold, matched uniform-sampling
interval), and replays every deployment mode through the simulated 3-tier
cluster: throughput, data transfer and accuracy per deployment.

Also shows the NN deployment service's Neurosurgeon-style split decision for
the reference network at the configured WAN bandwidth.

Run with:  python examples/edge_cloud_deployment.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.core import (ALL_DEPLOYMENT_MODES, EndToEndSimulation, NNDeploymentService,
                        NNPlacement, build_workload)
from repro.datasets import ALL_DATASETS, build_dataset
from repro.logging_utils import configure_logging
from repro.nn import build_yolo_lite


def main() -> None:
    configure_logging()
    config = SystemConfig()

    print("Preparing workloads for the five Table I feeds "
          "(semantic + default encodings, baseline thresholds)...")
    workloads = []
    for name in ALL_DATASETS:
        instance = build_dataset(name, duration_seconds=25, render_scale=0.08)
        workload = build_workload(instance, config=config)
        workloads.append(workload)
        print(f"  {name:<16} {workload.num_frames:5d} frames, "
              f"{workload.num_semantic_iframes:4d} I-frames, "
              f"semantic {workload.semantic_bytes / 1e6:7.1f} MB, "
              f"default {workload.default_bytes / 1e6:7.1f} MB")

    simulation = EndToEndSimulation(workloads, config)
    print(f"\n{'deployment':<34} {'fps':>9} {'edge s':>8} {'cloud s':>8} "
          f"{'xfer s':>8} {'edge->cloud GB':>15} {'accuracy':>9}")
    for mode in ALL_DEPLOYMENT_MODES:
        report = simulation.run(mode)
        accuracy = f"{report.accuracy:.3f}" if report.accuracy is not None else "  n/a"
        print(f"{mode.label:<34} {report.throughput_fps:>9.1f} "
              f"{report.edge_seconds:>8.1f} {report.cloud_seconds:>8.1f} "
              f"{report.transfer_seconds:>8.1f} "
              f"{report.edge_cloud_bytes / 1e9:>15.4f} {accuracy:>9}")

    print("\nNN deployment service (Neurosurgeon split of the reference network):")
    service = NNDeploymentService(build_yolo_lite())
    for bandwidth in (5.0, 30.0, 1000.0):
        plan = service.plan(NNPlacement.SPLIT, bandwidth_mbps=bandwidth,
                            latency_ms=config.edge_cloud_latency_ms)
        best = plan.partition.best
        print(f"  {bandwidth:7.1f} Mbps -> run {best.split_index} layers on the edge, "
              f"ship {best.transfer_bytes} B, total {best.total_ms:.1f} ms "
              f"(edge-only {plan.partition.edge_only_ms:.1f} ms, "
              f"cloud-only {plan.partition.cloud_only_ms:.1f} ms)")


if __name__ == "__main__":
    main()
