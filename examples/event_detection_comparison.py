#!/usr/bin/env python3
"""SiEVE vs MSE vs SIFT event detection on one camera (Figure 3, one curve).

Sweeps the sampling budget and reports per-frame label accuracy for the three
event-detection front ends at matched sampling rates, plus the wall-clock
throughput of each front end as implemented in this library.

Run with:  python examples/event_detection_comparison.py
"""

from __future__ import annotations

import time

from repro.codec import EncoderParameters, IFrameSeeker, VideoEncoder
from repro.core import evaluate_sampling
from repro.logging_utils import configure_logging
from repro.video import SyntheticScene, make_scenario
from repro.vision import (MseChangeDetector, SiftChangeDetector, ThresholdSampler,
                          score_video, threshold_for_sampling_fraction)


def main() -> None:
    configure_logging()
    profile = make_scenario("coral_reef", duration_seconds=40, render_scale=0.10)
    video = SyntheticScene(profile).video()
    timeline = video.timeline
    print(f"{video.metadata.name}: {video.metadata.num_frames} frames, "
          f"{timeline.num_events} events")

    # SiEVE points: sweep the scenecut threshold at a large GOP.
    activities = VideoEncoder().analyze(video)
    sieve_points = []
    for scenecut in (100.0, 200.0, 250.0, 300.0):
        parameters = EncoderParameters(gop_size=1000, scenecut_threshold=scenecut)
        encoded = VideoEncoder(parameters).encode(video, activities=activities)
        keyframes = IFrameSeeker().keyframe_indices(encoded)
        sieve_points.append((parameters, evaluate_sampling(timeline, keyframes)))

    # Baseline score series (each requires decoding every frame).
    start = time.perf_counter()
    mse_scores = score_video(MseChangeDetector(), video)
    mse_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sift_scores = score_video(SiftChangeDetector(), video)
    sift_seconds = time.perf_counter() - start

    print(f"\n{'sampling %':>11} {'SiEVE acc':>10} {'MSE acc':>9} {'SIFT acc':>9}")
    for parameters, sieve_score in sieve_points:
        fraction = sieve_score.sampling_fraction
        rows = {}
        for name, scores in (("mse", mse_scores), ("sift", sift_scores)):
            threshold = threshold_for_sampling_fraction(scores, fraction)
            samples = ThresholdSampler(threshold).sample(scores)
            rows[name] = evaluate_sampling(timeline, samples).accuracy
        print(f"{100 * fraction:>11.2f} {sieve_score.accuracy:>10.3f} "
              f"{rows['mse']:>9.3f} {rows['sift']:>9.3f}   "
              f"(SiEVE {parameters.describe()})")

    num_frames = video.metadata.num_frames
    print(f"\nBaseline wall-clock on this machine: "
          f"MSE {num_frames / mse_seconds:.0f} fps, "
          f"SIFT {num_frames / sift_seconds:.0f} fps "
          f"(both require decoding every frame; the I-frame seeker only reads "
          f"container metadata).")


if __name__ == "__main__":
    main()
