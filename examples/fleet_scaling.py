#!/usr/bin/env python3
"""Scale the 3-tier deployment from one edge server to a fleet.

Builds a fleet of cameras (every Table I feed plus the new ``highway``
scenario, cycled until the requested fleet size), plans each camera's
3-tier job under the paper's best deployment (I-frame seeking on the edge,
NN in the cloud), and sweeps the number of edge servers and the placement
policy through the discrete-event fleet simulator: aggregate throughput,
per-tier utilisation, WAN queue depths and end-to-end latency percentiles.

With one edge server the fleet degenerates to the paper's testbed; adding
edge servers must never reduce aggregate throughput (the sweep asserts it).

The ``--workers`` axis executes the same sweep through the multiprocess
fleet layer (``SystemConfig.fleet_workers``): per-edge pipelines are
simulated in worker processes and merged deterministically, and the example
asserts every report matches the single-process run to the 1e-6 contract.
Table I workloads come from the shared on-disk cache (``REPRO_CACHE_DIR``),
so a second run skips rendering and tuning entirely; ``--build-workers N``
builds a cold cache in parallel through
:class:`repro.parallel.WorkloadBuilder` (byte-identical artifacts).

``--precision fast`` builds the workloads through the float32 fast paths
(merged NN GEMMs, dot-product SADs with the exact-argmin tie fallback)
under the :data:`repro.contracts.FAST_CONTRACT` accuracy budget; the
default ``exact`` keeps every kernel bit-identical to the seed.

Run with:  python examples/fleet_scaling.py [--workers 1,2,4]
                                            [--build-workers 2]
                                            [--precision exact|fast]
"""

from __future__ import annotations

import argparse

from repro import SystemConfig
from repro.contracts import PRECISION_MODES
from repro.cluster import FleetOrchestrator, PlacementPolicy
from repro.core import DeploymentMode, build_workload, plan_camera_job
from repro.datasets import ALL_DATASETS, DatasetSpec
from repro.datasets.generator import DatasetInstance
from repro.experiments import ExperimentConfig
from repro.logging_utils import configure_logging
from repro.parallel import WorkloadBuilder
from repro.video import RESOLUTION_720P, SyntheticScene, make_scenario

#: Fleet size of the sweep (acceptance floor: at least 16 cameras).
NUM_CAMERAS = 16

#: Edge-server counts on the sweep's x-axis.
EDGE_COUNTS = (1, 2, 4, 8)

#: Footage scale (kept small so the example runs in well under a minute).
DURATION_SECONDS = 12.0
RENDER_SCALE = 0.06

#: Reports across worker counts must agree to this tolerance (they are in
#: practice bit-identical; the bound matches the serial regression contract).
TOLERANCE = 1e-6

#: The ``highway`` scenario is not in Table I; this spec gives it the same
#: nominal-resolution cost accounting the registry datasets get.
HIGHWAY_SPEC = DatasetSpec(
    name="highway", objects=("car", "truck"),
    nominal_resolution=RESOLUTION_720P, fps=30.0, paper_duration_hours=4.0,
    description="fast vehicles crossing a highway overpass", has_labels=False)


def build_fleet_workloads(config: SystemConfig, build_workers: int = 1):
    """One workload per distinct feed: the five Table I datasets + highway.

    Table I feeds go through the shared workload cache (in-process + disk
    under ``REPRO_CACHE_DIR``) via :class:`repro.parallel.WorkloadBuilder`
    — with ``build_workers > 1`` the cold builds fan out across worker
    processes and still produce byte-identical cache artifacts.  The
    ad-hoc highway scenario is built directly since it has no registry
    entry to key a cache artifact on.
    """
    experiment_config = ExperimentConfig(
        duration_seconds=DURATION_SECONDS, render_scale=RENDER_SCALE,
        datasets=tuple(ALL_DATASETS))
    builder = WorkloadBuilder(experiment_config, config,
                              build_workers=build_workers)
    workloads = builder.build_workloads(ALL_DATASETS, split="full")
    profile = make_scenario("highway", duration_seconds=DURATION_SECONDS,
                            render_scale=RENDER_SCALE)
    instance = DatasetInstance(spec=HIGHWAY_SPEC, profile=profile,
                               video=SyntheticScene(profile).video())
    workloads.append(build_workload(instance, config=config))
    return workloads


def run_sweep(jobs, config: SystemConfig, fleet_workers: int,
              verbose: bool = True):
    """Run the edges x policies sweep; returns ``{(policy, edges): report}``."""
    header = (f"{'edges':>5} {'policy':<16} {'makespan s':>10} {'fps':>9} "
              f"{'edge util':>9} {'cloud util':>10} {'wan q':>5} "
              f"{'p50 s':>7} {'p95 s':>7} {'p99 s':>7} {'wall ms':>8}")
    if verbose:
        print(header)
        print("-" * len(header))
    reports = {}
    for policy in PlacementPolicy:
        previous_fps = 0.0
        for num_edges in EDGE_COUNTS:
            report = FleetOrchestrator(jobs, num_edge_servers=num_edges,
                                       config=config, policy=policy,
                                       fleet_workers=fleet_workers).run()
            reports[(policy.value, num_edges)] = report
            fps = report.aggregate_throughput_fps
            if verbose:
                print(f"{num_edges:>5} {policy.value:<16} "
                      f"{report.makespan_seconds:>10.2f} {fps:>9.1f} "
                      f"{report.mean_edge_utilisation:>9.2f} "
                      f"{report.cloud_tier.utilisation:>10.2f} "
                      f"{report.max_wan_queue_depth:>5d} "
                      f"{report.latency_percentiles[50]:>7.2f} "
                      f"{report.latency_percentiles[95]:>7.2f} "
                      f"{report.latency_percentiles[99]:>7.2f} "
                      f"{report.sim_wall_seconds * 1e3:>8.1f}")
            if fps + 1e-9 < previous_fps:
                raise AssertionError(
                    f"throughput regressed under {policy.value} at "
                    f"{num_edges} edges: {fps:.1f} < {previous_fps:.1f} fps")
            previous_fps = fps
        if verbose:
            print()
    return reports


def assert_reports_match(baseline, candidate, workers: int) -> None:
    """Every metric of every report must match the single-process run."""
    for key, report in baseline.items():
        mismatches = report.parity_mismatches(candidate[key], TOLERANCE)
        if mismatches:
            raise AssertionError(
                f"fleet_workers={workers} diverged at {key}: "
                + "; ".join(mismatches))


def parse_workers(spec: str):
    counts = sorted({int(part) for part in spec.split(",") if part.strip()})
    if not counts or counts[0] < 1:
        raise argparse.ArgumentTypeError(
            f"--workers needs positive worker counts, got {spec!r}")
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=parse_workers, default=[1],
        help="comma-separated fleet_workers counts to sweep (default: 1); "
             "multi-process runs are asserted equal to the serial run")
    parser.add_argument(
        "--build-workers", type=int, default=1,
        help="worker processes for the cold workload build (default: 1, "
             "0 = auto-size from os.cpu_count()); parallel builds write "
             "byte-identical cache artifacts")
    parser.add_argument(
        "--precision", choices=sorted(PRECISION_MODES), default="exact",
        help="numeric mode of the workload build: 'exact' (default, "
             "bit-identical hot paths) or 'fast' (float32 kernels under "
             "the FAST_CONTRACT accuracy budget)")
    arguments = parser.parse_args()
    if arguments.build_workers < 0:
        parser.error("--build-workers must be >= 0 (0 = auto)")
    configure_logging()
    config = SystemConfig(precision=arguments.precision)
    print(f"Numeric contract: {config.contract.describe()}")
    mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN

    print(f"Preparing {NUM_CAMERAS}-camera fleet "
          f"({len(ALL_DATASETS)} Table I feeds + highway, cycled, "
          f"build_workers={arguments.build_workers})...")
    workloads = build_fleet_workloads(config, arguments.build_workers)
    jobs = []
    for index in range(NUM_CAMERAS):
        workload = workloads[index % len(workloads)]
        jobs.append(plan_camera_job(workload, mode,
                                    camera=f"cam-{index:02d}:{workload.name}"))
    total_frames = sum(job.num_frames for job in jobs)
    print(f"  {len(jobs)} cameras, {total_frames} frames, "
          f"{sum(job.edge_seconds for job in jobs):.1f} s edge work, "
          f"{sum(job.cloud_seconds for job in jobs):.1f} s cloud work\n")

    worker_counts = list(arguments.workers)
    if worker_counts[0] != 1:
        worker_counts.insert(0, 1)  # the parity baseline
    baseline = None
    for workers in worker_counts:
        print(f"=== fleet_workers={workers} ===")
        reports = run_sweep(jobs, config, workers)
        if baseline is None:
            baseline = reports
        else:
            assert_reports_match(baseline, reports, workers)
            print(f"fleet_workers={workers}: all "
                  f"{len(reports)} reports match the single-process run "
                  f"(<= {TOLERANCE:g}).\n")
    print("Aggregate throughput is monotonically non-decreasing in the "
          "number of edge servers for every placement policy.")


if __name__ == "__main__":
    main()
