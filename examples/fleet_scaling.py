#!/usr/bin/env python3
"""Scale the 3-tier deployment from one edge server to a fleet.

Builds a fleet of cameras (every Table I feed plus the new ``highway``
scenario, cycled until the requested fleet size), plans each camera's
3-tier job under the paper's best deployment (I-frame seeking on the edge,
NN in the cloud), and sweeps the number of edge servers and the placement
policy through the discrete-event fleet simulator: aggregate throughput,
per-tier utilisation, WAN queue depths and end-to-end latency percentiles.

With one edge server the fleet degenerates to the paper's testbed; adding
edge servers must never reduce aggregate throughput (the sweep asserts it).

The ``--workers`` axis executes the same sweep through the multiprocess
fleet layer (``SystemConfig.fleet_workers``): per-edge pipelines are
simulated in worker processes and merged deterministically, and the example
asserts every report matches the single-process run to the 1e-6 contract.
Table I workloads come from the shared on-disk cache (``REPRO_CACHE_DIR``),
so a second run skips rendering and tuning entirely; ``--build-workers N``
builds a cold cache in parallel through
:class:`repro.parallel.WorkloadBuilder` (byte-identical artifacts).

``--precision fast`` builds the workloads through the float32 fast paths
(merged NN GEMMs, dot-product SADs with the exact-argmin tie fallback)
under the :data:`repro.contracts.FAST_CONTRACT` accuracy budget; the
default ``exact`` keeps every kernel bit-identical to the seed.

The scale-out knobs map straight onto ``SystemConfig``: ``--transport``
(pickle | shm | auto) selects the worker payload transport,``--steal``
turns on the work-stealing claim protocol (the recorded steal log lands in
the JSON artifact), ``--regions`` the hierarchical cloud replay.  Every
configuration is asserted equal to the serial run — the knobs change how
fast the answer arrives, never the answer.  ``--scale-cameras N`` switches
to a synthetic N-camera fleet (no workload rendering) and times the
pickle/static baseline against the configured scale-out path;
``--min-speedup`` turns that comparison into a hard gate (the CI
fleet-scaling lane sets it).  ``--json-out`` writes the sweep + comparison
as a JSON artifact; ``--store`` round-trips every report through the
persistent :class:`repro.cluster.SQLiteResultStore` and verifies the
content-integrity hashes.

Run with:  python examples/fleet_scaling.py [--workers 1,2,4]
                                            [--build-workers 2]
                                            [--precision exact|fast]
                                            [--transport shm] [--steal]
                                            [--regions 0]
                                            [--scale-cameras 64]
                                            [--json-out sweep.json]
                                            [--store results.sqlite]
"""

from __future__ import annotations

import argparse
import json
import time

from repro import SystemConfig
from repro.contracts import PRECISION_MODES
from repro.cluster import (CameraJob, FleetOrchestrator, PlacementPolicy,
                           SQLiteResultStore)
from repro.config import TRANSPORT_MODES, TRANSPORT_PICKLE
from repro.core import DeploymentMode, build_workload, plan_camera_job
from repro.datasets import ALL_DATASETS, DatasetSpec
from repro.datasets.generator import DatasetInstance
from repro.experiments import ExperimentConfig
from repro.logging_utils import configure_logging
from repro.parallel import WorkloadBuilder
from repro.video import RESOLUTION_720P, SyntheticScene, make_scenario

#: Fleet size of the sweep (acceptance floor: at least 16 cameras).
NUM_CAMERAS = 16

#: Edge-server counts on the sweep's x-axis.
EDGE_COUNTS = (1, 2, 4, 8)

#: Footage scale (kept small so the example runs in well under a minute).
DURATION_SECONDS = 12.0
RENDER_SCALE = 0.06

#: Reports across worker counts must agree to this tolerance (they are in
#: practice bit-identical; the bound matches the serial regression contract).
TOLERANCE = 1e-6

#: The ``highway`` scenario is not in Table I; this spec gives it the same
#: nominal-resolution cost accounting the registry datasets get.
HIGHWAY_SPEC = DatasetSpec(
    name="highway", objects=("car", "truck"),
    nominal_resolution=RESOLUTION_720P, fps=30.0, paper_duration_hours=4.0,
    description="fast vehicles crossing a highway overpass", has_labels=False)


def build_fleet_workloads(config: SystemConfig, build_workers: int = 1):
    """One workload per distinct feed: the five Table I datasets + highway.

    Table I feeds go through the shared workload cache (in-process + disk
    under ``REPRO_CACHE_DIR``) via :class:`repro.parallel.WorkloadBuilder`
    — with ``build_workers > 1`` the cold builds fan out across worker
    processes and still produce byte-identical cache artifacts.  The
    ad-hoc highway scenario is built directly since it has no registry
    entry to key a cache artifact on.
    """
    experiment_config = ExperimentConfig(
        duration_seconds=DURATION_SECONDS, render_scale=RENDER_SCALE,
        datasets=tuple(ALL_DATASETS))
    builder = WorkloadBuilder(experiment_config, config,
                              build_workers=build_workers)
    workloads = builder.build_workloads(ALL_DATASETS, split="full")
    profile = make_scenario("highway", duration_seconds=DURATION_SECONDS,
                            render_scale=RENDER_SCALE)
    instance = DatasetInstance(spec=HIGHWAY_SPEC, profile=profile,
                               video=SyntheticScene(profile).video())
    workloads.append(build_workload(instance, config=config))
    return workloads


def run_sweep(jobs, config: SystemConfig, fleet_workers: int,
              verbose: bool = True):
    """Run the edges x policies sweep; returns ``{(policy, edges): report}``."""
    header = (f"{'edges':>5} {'policy':<16} {'makespan s':>10} {'fps':>9} "
              f"{'edge util':>9} {'cloud util':>10} {'wan q':>5} "
              f"{'p50 s':>7} {'p95 s':>7} {'p99 s':>7} {'wall ms':>8}")
    if verbose:
        print(header)
        print("-" * len(header))
    reports = {}
    for policy in PlacementPolicy:
        previous_fps = 0.0
        for num_edges in EDGE_COUNTS:
            report = FleetOrchestrator(jobs, num_edge_servers=num_edges,
                                       config=config, policy=policy,
                                       fleet_workers=fleet_workers).run()
            reports[(policy.value, num_edges)] = report
            fps = report.aggregate_throughput_fps
            if verbose:
                print(f"{num_edges:>5} {policy.value:<16} "
                      f"{report.makespan_seconds:>10.2f} {fps:>9.1f} "
                      f"{report.mean_edge_utilisation:>9.2f} "
                      f"{report.cloud_tier.utilisation:>10.2f} "
                      f"{report.max_wan_queue_depth:>5d} "
                      f"{report.latency_percentiles[50]:>7.2f} "
                      f"{report.latency_percentiles[95]:>7.2f} "
                      f"{report.latency_percentiles[99]:>7.2f} "
                      f"{report.sim_wall_seconds * 1e3:>8.1f}")
            if fps + 1e-9 < previous_fps:
                raise AssertionError(
                    f"throughput regressed under {policy.value} at "
                    f"{num_edges} edges: {fps:.1f} < {previous_fps:.1f} fps")
            previous_fps = fps
        if verbose:
            print()
    return reports


def synthetic_jobs(count: int):
    """A deterministic heterogeneous fleet with no workload rendering.

    The scale benchmark wants thousands of cameras without paying for
    synthetic video generation; the job costs here follow fixed arithmetic
    progressions (no RNG), so every run — and every worker/transport
    configuration — sees exactly the same fleet.
    """
    jobs = []
    for index in range(count):
        spread = index % 7
        jobs.append(CameraJob(
            camera=f"scale-{index:04d}", video=f"feed-{spread}",
            num_frames=240 + 36 * spread, frames_for_inference=8 + spread,
            edge_seconds=0.35 + 0.11 * spread,
            cloud_seconds=0.22 + 0.05 * ((index * 3) % 5),
            camera_edge_bytes=600_000 + 1013 * index,
            edge_cloud_bytes=180_000 + 577 * spread))
    return jobs


def timed_run(jobs, config: SystemConfig, num_edges: int, workers: int):
    """One fleet run under ``config``; returns ``(report, wall_seconds)``."""
    orchestrator = FleetOrchestrator(jobs, num_edge_servers=num_edges,
                                     config=config, fleet_workers=workers)
    started = time.perf_counter()
    report = orchestrator.run()
    return orchestrator, report, time.perf_counter() - started


def run_scale_comparison(num_cameras: int, num_edges: int, workers: int,
                         scale_config: SystemConfig, min_speedup: float):
    """Time the pickle/static baseline against the scale-out configuration.

    Both parallel paths (and the serial reference) must produce the same
    report; only the wall clock may differ.  Returns the comparison rows
    for the JSON artifact; raises when the configured scale-out path fails
    the ``--min-speedup`` gate against the serial reference.
    """
    jobs = synthetic_jobs(num_cameras)
    baseline_config = SystemConfig(
        precision=scale_config.precision, fleet_transport=TRANSPORT_PICKLE,
        fleet_stealing=False, fleet_regions=1)
    _, serial_report, serial_wall = timed_run(jobs, baseline_config,
                                              num_edges, workers=1)
    _, static_report, static_wall = timed_run(jobs, baseline_config,
                                              num_edges, workers)
    orchestrator, scale_report, scale_wall = timed_run(
        jobs, scale_config, num_edges, workers)
    for name, report in (("pickle/static", static_report),
                         ("scale-out", scale_report)):
        mismatches = serial_report.parity_mismatches(report, TOLERANCE)
        if mismatches:
            raise AssertionError(f"{name} diverged from the serial run: "
                                 + "; ".join(mismatches))
    speedup_vs_serial = serial_wall / scale_wall if scale_wall > 0 else 0.0
    speedup_vs_static = static_wall / scale_wall if scale_wall > 0 else 0.0
    steal_log = orchestrator.last_steal_log
    print(f"--- scale comparison: {num_cameras} cameras, {num_edges} edges, "
          f"fleet_workers={workers} ---")
    print(f"  serial reference      : {serial_wall * 1e3:8.1f} ms")
    print(f"  pickle/static baseline: {static_wall * 1e3:8.1f} ms")
    print(f"  scale-out path        : {scale_wall * 1e3:8.1f} ms  "
          f"({scale_config.fleet_transport}, "
          f"steal={scale_config.fleet_stealing}, "
          f"regions={scale_config.fleet_regions})")
    print(f"  speedup vs serial     : {speedup_vs_serial:8.2f}x")
    print(f"  speedup vs baseline   : {speedup_vs_static:8.2f}x")
    if steal_log is not None:
        print(f"  steals                : {steal_log.steals} of "
              f"{len(steal_log.records)} claims")
    print("  parity                : all paths match the serial run "
          f"(<= {TOLERANCE:g})")
    if speedup_vs_serial < min_speedup:
        raise AssertionError(
            f"scale-out speedup {speedup_vs_serial:.2f}x vs serial is below "
            f"the --min-speedup gate {min_speedup:.2f}x")
    return {
        "num_cameras": num_cameras,
        "num_edges": num_edges,
        "fleet_workers": workers,
        "serial_wall_seconds": serial_wall,
        "static_wall_seconds": static_wall,
        "scaleout_wall_seconds": scale_wall,
        "speedup_vs_serial": speedup_vs_serial,
        "speedup_vs_static": speedup_vs_static,
        "transport": scale_config.fleet_transport,
        "stealing": scale_config.fleet_stealing,
        "regions": scale_config.fleet_regions,
        "steal_log": steal_log.as_dict() if steal_log is not None else None,
    }


def store_reports(path: str, reports) -> None:
    """Round-trip every sweep report through the persistent SQLite store."""
    with SQLiteResultStore(path) as store:
        for (policy, num_edges), report in reports.items():
            run_id = f"{policy}-{num_edges}edges"
            store.store_fleet_report(run_id, report)
            summary = store.report_summary(run_id)
            if summary["metrics"] != json.loads(
                    json.dumps(report.as_dict())):
                raise AssertionError(f"store round-trip diverged for {run_id}")
        problems = store.verify_integrity()
        if problems:
            raise AssertionError("result store failed its integrity check: "
                                 + "; ".join(problems))
        print(f"Stored {len(reports)} reports in {path} "
              f"({len(store.run_ids())} runs, integrity verified).")


def assert_reports_match(baseline, candidate, workers: int) -> None:
    """Every metric of every report must match the single-process run."""
    for key, report in baseline.items():
        mismatches = report.parity_mismatches(candidate[key], TOLERANCE)
        if mismatches:
            raise AssertionError(
                f"fleet_workers={workers} diverged at {key}: "
                + "; ".join(mismatches))


def parse_workers(spec: str):
    counts = sorted({int(part) for part in spec.split(",") if part.strip()})
    if not counts or counts[0] < 1:
        raise argparse.ArgumentTypeError(
            f"--workers needs positive worker counts, got {spec!r}")
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=parse_workers, default=[1],
        help="comma-separated fleet_workers counts to sweep (default: 1); "
             "multi-process runs are asserted equal to the serial run")
    parser.add_argument(
        "--build-workers", type=int, default=1,
        help="worker processes for the cold workload build (default: 1, "
             "0 = auto-size from os.cpu_count()); parallel builds write "
             "byte-identical cache artifacts")
    parser.add_argument(
        "--precision", choices=sorted(PRECISION_MODES), default="exact",
        help="numeric mode of the workload build: 'exact' (default, "
             "bit-identical hot paths) or 'fast' (float32 kernels under "
             "the FAST_CONTRACT accuracy budget)")
    parser.add_argument(
        "--transport", choices=sorted(TRANSPORT_MODES),
        default=TRANSPORT_PICKLE,
        help="worker payload transport: 'pickle' (default), 'shm' "
             "(shared-memory segments) or 'auto' (shm when available)")
    parser.add_argument(
        "--steal", action="store_true",
        help="claim edge tasks from the shared work-stealing queue instead "
             "of static round-robin shards")
    parser.add_argument(
        "--regions", type=int, default=1,
        help="cloud-replay regions for the hierarchical region->global "
             "merge (default: 1 = flat; 0 = one region per fleet worker)")
    parser.add_argument(
        "--scale-cameras", type=int, default=0, metavar="N",
        help="also run the synthetic N-camera scale comparison (no "
             "workload rendering): pickle/static baseline vs the "
             "configured scale-out path, parity-checked")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless the scale comparison's speedup vs the serial "
             "reference reaches this factor (default: 0 = report only; "
             "the CI fleet-scaling lane gates on it)")
    parser.add_argument(
        "--json-out", metavar="PATH",
        help="write the sweep tables + scale comparison as a JSON artifact")
    parser.add_argument(
        "--store", metavar="PATH",
        help="round-trip every sweep report through the persistent SQLite "
             "result store at PATH and verify its content-integrity hashes")
    arguments = parser.parse_args()
    if arguments.build_workers < 0:
        parser.error("--build-workers must be >= 0 (0 = auto)")
    if arguments.regions < 0:
        parser.error("--regions must be >= 0 (0 = auto)")
    if arguments.scale_cameras < 0:
        parser.error("--scale-cameras must be >= 0")
    configure_logging()
    config = SystemConfig(precision=arguments.precision,
                          fleet_transport=arguments.transport,
                          fleet_stealing=arguments.steal,
                          fleet_regions=arguments.regions)
    print(f"Numeric contract: {config.contract.describe()}")
    print(f"Scale-out knobs: transport={config.fleet_transport} "
          f"steal={config.fleet_stealing} regions={config.fleet_regions}")
    mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN

    print(f"Preparing {NUM_CAMERAS}-camera fleet "
          f"({len(ALL_DATASETS)} Table I feeds + highway, cycled, "
          f"build_workers={arguments.build_workers})...")
    workloads = build_fleet_workloads(config, arguments.build_workers)
    jobs = []
    for index in range(NUM_CAMERAS):
        workload = workloads[index % len(workloads)]
        jobs.append(plan_camera_job(workload, mode,
                                    camera=f"cam-{index:02d}:{workload.name}"))
    total_frames = sum(job.num_frames for job in jobs)
    print(f"  {len(jobs)} cameras, {total_frames} frames, "
          f"{sum(job.edge_seconds for job in jobs):.1f} s edge work, "
          f"{sum(job.cloud_seconds for job in jobs):.1f} s cloud work\n")

    worker_counts = list(arguments.workers)
    if worker_counts[0] != 1:
        worker_counts.insert(0, 1)  # the parity baseline
    baseline = None
    for workers in worker_counts:
        print(f"=== fleet_workers={workers} ===")
        reports = run_sweep(jobs, config, workers)
        if baseline is None:
            baseline = reports
        else:
            assert_reports_match(baseline, reports, workers)
            print(f"fleet_workers={workers}: all "
                  f"{len(reports)} reports match the single-process run "
                  f"(<= {TOLERANCE:g}).\n")
    print("Aggregate throughput is monotonically non-decreasing in the "
          "number of edge servers for every placement policy.")

    comparison = None
    if arguments.scale_cameras:
        comparison = run_scale_comparison(
            arguments.scale_cameras, max(EDGE_COUNTS),
            max(worker_counts), config, arguments.min_speedup)

    if arguments.store:
        store_reports(arguments.store, baseline)

    if arguments.json_out:
        artifact = {
            "config": {
                "precision": config.precision,
                "transport": config.fleet_transport,
                "stealing": config.fleet_stealing,
                "regions": config.fleet_regions,
                "worker_counts": worker_counts,
            },
            "sweep": [
                {"policy": policy, "num_edges": num_edges,
                 **report.as_dict()}
                for (policy, num_edges), report in sorted(baseline.items())
            ],
            "scale_comparison": comparison,
        }
        with open(arguments.json_out, "w", encoding="utf-8") as stream:
            json.dump(artifact, stream, indent=2, sort_keys=True)
        print(f"Wrote sweep artifact to {arguments.json_out}.")


if __name__ == "__main__":
    main()
