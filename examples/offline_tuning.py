#!/usr/bin/env python3
"""Offline encoder tuning across cameras (Figure 2 of the paper).

For each labelled camera feed this example runs the k x l grid search over
(GOP size, scenecut threshold), prints the full grid with accuracy /
filtering-rate / F1 per configuration, and shows how the winning parameters
differ per camera — close-up vehicles need a less sensitive scenecut
threshold than distant boats, exactly the effect discussed in Section V-A.

Run with:  python examples/offline_tuning.py
"""

from __future__ import annotations

from repro.codec import VideoEncoder
from repro.core import ParameterLookupTable, SemanticEncoderTuner, TuningGrid
from repro.logging_utils import configure_logging
from repro.video import SyntheticScene, make_scenario

CAMERAS = ("jackson_square", "coral_reef", "venice")


def main() -> None:
    configure_logging()
    tuner = SemanticEncoderTuner(TuningGrid())
    lookup = ParameterLookupTable()

    for camera in CAMERAS:
        profile = make_scenario(camera, duration_seconds=45, render_scale=0.10)
        video = SyntheticScene(profile).video()
        print(f"\n=== {camera}: {video.metadata.num_frames} frames, "
              f"{video.timeline.num_events} labelled events ===")

        # One parameter-independent analysis pass, reused by all 25 configs.
        activities = VideoEncoder().analyze(video)
        result = tuner.tune_from_activities(activities, video.timeline, camera)

        print(f"{'gop':>6} {'scenecut':>9} {'accuracy':>9} {'SS %':>7} {'F1':>7}")
        for row in result.as_table():
            print(f"{row['gop_size']:>6} {row['scenecut']:>9.0f} "
                  f"{row['accuracy']:>9.3f} {100 * row['sampling_fraction']:>7.2f} "
                  f"{row['f1']:>7.3f}")
        best = result.best
        print(f"--> best configuration for {camera}: {best.parameters.describe()} "
              f"(F1={best.score.f1:.3f})")
        lookup.store(camera, best.parameters)

    print("\nParameter lookup table handed to the camera operator:")
    for camera, parameters in lookup.as_dict().items():
        print(f"  {camera:<16} {parameters.describe()}")


if __name__ == "__main__":
    main()
