#!/usr/bin/env python3
"""Quickstart: tune a camera, encode semantically, seek I-frames, label frames.

This walks the SiEVE workflow end to end on a synthetic surveillance clip:

1. render a "Jackson town square"-style scene with ground-truth labels;
2. run the offline tuner to find the (GOP size, scenecut threshold) pair that
   places I-frames exactly at object events;
3. encode the video with the tuned parameters and run the I-frame seeker;
4. label the I-frames with the reference detector and propagate the labels;
5. report accuracy, the fraction of frames that had to be decoded, and the
   event-detection speedup predicted by the calibrated cost model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Sieve
from repro.cluster import CostModel
from repro.logging_utils import configure_logging
from repro.video import RESOLUTION_400P, SyntheticScene, make_scenario


def main() -> None:
    configure_logging()

    # 1. A two-minute synthetic surveillance clip with exact ground truth.
    profile = make_scenario("jackson_square", duration_seconds=60, render_scale=0.12)
    video = SyntheticScene(profile).video()
    print(f"Rendered {video.metadata.name}: {video.metadata.num_frames} frames "
          f"at {video.metadata.resolution}, {video.timeline.num_events} events")

    # 2. Offline tuning (Section IV of the paper).
    sieve = Sieve()
    tuning = sieve.tune_camera("jackson_square", video)
    best = tuning.best
    print(f"\nTuned encoder parameters: {best.parameters.describe()}")
    print(f"  accuracy={best.score.accuracy:.3f}  "
          f"sample size={100 * best.score.sampling_fraction:.2f}%  "
          f"F1={best.score.f1:.3f}")
    print("\nTop configurations explored by the grid search:")
    for result in tuning.leaderboard(5):
        print(f"  {result.parameters.describe():<22} F1={result.score.f1:.3f} "
              f"acc={result.score.accuracy:.3f} "
              f"SS={100 * result.score.sampling_fraction:.2f}%")

    # 3-4. Online path: encode, seek I-frames, label, propagate.
    analysis = sieve.analyze_video(video, "jackson_square")
    print(f"\nOnline analysis: {len(analysis.keyframe_indices)} I-frames decoded "
          f"out of {video.metadata.num_frames} frames "
          f"({100 * len(analysis.keyframe_indices) / video.metadata.num_frames:.2f}%)")
    print(f"Per-frame label accuracy: {analysis.score.accuracy:.3f}")

    # 5. Event-detection throughput predicted at the dataset's real resolution.
    cost_model = CostModel()
    sieve_fps = cost_model.event_detection_fps("sieve", RESOLUTION_400P)
    mse_fps = cost_model.event_detection_fps("mse", RESOLUTION_400P)
    print(f"\nEvent detection at 600x400 (cost model): "
          f"SiEVE {sieve_fps:.0f} fps vs MSE {mse_fps:.0f} fps "
          f"({sieve_fps / mse_fps:.0f}x speedup)")

    # A few labelled frames, as stored in the result database.
    print("\nSample of the result database (frame id -> labels):")
    for row in sieve.results.records_for_video("jackson_square")[:8]:
        labels = ", ".join(sorted(row.labels)) or "(background)"
        print(f"  frame {row.frame_index:5d}: {labels}")


if __name__ == "__main__":
    main()
