#!/usr/bin/env python3
"""Scenario fuzz: random composed scenarios under cross-layer invariants.

Samples ``--budget`` compositions from the scenario DSL (base profile +
weather / day-night / crowd / camera-fault presets), runs each through
generate -> encode -> tuner -> fleet, and checks the invariant set of
:mod:`repro.video.fuzzing`: decoder round-trip exactness, no I-frame
storms, tuner grid convergence, fast-vs-exact agreement budgets and
serial==parallel fleet parity.

The whole run is a pure function of ``--seed``: CI runs it twice and diffs
the ``--summary-out`` files verbatim (the ``scenario-fuzz-smoke`` job).
Failing compositions are serialized to ``repro_NNN.json`` files under
``--out-dir``; replay one with ``--replay repro_NNN.json`` while fixing
the bug it found.

Run with:  python examples/scenario_fuzz.py [--budget 25] [--seed 11]
                                            [--out-dir DIR]
                                            [--summary-out FILE]
                                            [--replay REPRO.json]
                                            [--no-fleet]
"""

from __future__ import annotations

import argparse
import sys

from repro.logging_utils import configure_logging
from repro.video.fuzzing import (ScenarioComposition, check_composition,
                                 run_fuzz)


def replay(path: str, fleet: bool) -> int:
    """Re-run the invariant set over one serialized repro file."""
    with open(path, "r", encoding="utf-8") as handle:
        composition = ScenarioComposition.from_json(handle.read())
    print(f"replaying {composition.describe()} "
          f"({composition.duration_seconds:g}s @ "
          f"scale {composition.render_scale:g})")
    result = check_composition(composition, fleet=fleet)
    if result.ok:
        print("every invariant holds — the bug this repro captured is fixed")
        return 0
    for violation in result.violations:
        print(f"VIOLATION {violation.invariant}: {violation.detail}")
    return 1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=25,
                        help="compositions to sample (default: 25)")
    parser.add_argument("--seed", type=int, default=11,
                        help="root seed; the run is a pure function of it "
                             "(default: 11)")
    parser.add_argument("--out-dir", type=str, default=None,
                        help="directory for repro_NNN.json failure files")
    parser.add_argument("--summary-out", type=str, default=None,
                        help="write the deterministic summary to this file "
                             "(CI diffs two same-seed runs)")
    parser.add_argument("--replay", type=str, default=None,
                        help="replay one repro JSON file instead of fuzzing")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the multiprocess fleet-parity invariant")
    arguments = parser.parse_args()
    configure_logging()

    if arguments.replay:
        sys.exit(replay(arguments.replay, fleet=not arguments.no_fleet))

    run = run_fuzz(arguments.budget, arguments.seed,
                   out_dir=arguments.out_dir,
                   fleet=not arguments.no_fleet)
    document = run.lines()
    print("\n".join(document))
    if arguments.summary_out:
        with open(arguments.summary_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(document) + "\n")
        print(f"summary written to {arguments.summary_out}")
    if run.failures:
        for path in run.repro_paths:
            print(f"repro file: {path}")
        sys.exit(1)


if __name__ == "__main__":
    main()
