#!/usr/bin/env python3
"""Run the 3-tier deployment as a live real-time streaming service.

Where ``fleet_scaling.py`` drains a pre-planned camera fleet as fast as
Python allows, this example runs the same discrete-event engine as a
*service*: cameras connect through per-session stream ingest (admission
control, backpressure), push their footage chunk by chunk, and the event
loop is paced against the wall clock by a ``RealTimeClock`` at a
configurable ``--speedup``.

The demonstration makes three claims and asserts all of them:

1. **Parity** — the real-time run's fleet report is identical (to the
   1e-6 ``parity_mismatches`` contract) to a virtual-clock run of the same
   workload: pacing changes *when* events fire in wall time, never what
   they compute.
2. **Concurrency** — at least ``--cameras`` (default 16) sessions are
   live simultaneously while the service runs.
3. **Bounded health** — every ``ServiceStatus`` snapshot taken while the
   service runs reports utilisation <= 1.0 at every station, including
   mid-service horizon cuts where jobs are still on the workers.

Run with:  python examples/streaming_service.py [--cameras 16] [--edges 4]
                                                [--chunks 8] [--speedup 200]
                                                [--seed 7] [--snapshot-every 2]
"""

from __future__ import annotations

import argparse
from typing import List, Tuple

from repro.cluster import CameraJob
from repro.logging_utils import configure_logging
from repro.rng import make_rng
from repro.service import (ChunkFeeder, ClockDriver, RealTimeClock,
                           StreamingService, TenantPolicy, VirtualClock,
                           chunk_camera_job)

#: Reports across clock drivers must agree to this tolerance (they are in
#: practice bit-identical; the bound matches the fleet parity contract).
TOLERANCE = 1e-6

#: Tenants the cameras are spread across (name, session quota).
TENANTS = (("retail", 8), ("transit", 8), ("campus", 16))

#: Virtual seconds between a camera's consecutive chunk pushes.
PERIOD_SECONDS = 1.0


def build_camera_plans(num_cameras: int, num_chunks: int,
                       seed: int) -> List[Tuple[str, str, list]]:
    """Deterministic per-camera chunk plans: ``(camera, tenant, chunks)``.

    Costs are drawn from the seeded RNG tree (see :mod:`repro.rng`) and
    sized so a ``--edges 4`` fleet stays below saturation: the service must
    keep up with the streams, not merely queue them.
    """
    plans = []
    for index in range(num_cameras):
        camera = f"cam-{index:02d}"
        tenant = TENANTS[index % len(TENANTS)][0]
        rng = make_rng(seed, "streaming", camera)
        frames = int(rng.integers(240, 360))
        job = CameraJob(
            camera=camera, video=f"stream:{camera}",
            num_frames=frames,
            frames_for_inference=max(frames // 10, 1),
            edge_seconds=float(rng.uniform(0.08, 0.20)) * num_chunks,
            cloud_seconds=float(rng.uniform(0.03, 0.08)) * num_chunks,
            camera_edge_bytes=int(rng.uniform(1.0e6, 2.0e6)) * num_chunks,
            edge_cloud_bytes=int(rng.uniform(1.0e5, 3.0e5)) * num_chunks,
        )
        plans.append((camera, tenant, chunk_camera_job(job, num_chunks)))
    return plans


def build_service(plans, num_edges: int, clock: ClockDriver,
                  seed: int) -> StreamingService:
    """Assemble the service, admit every camera and start its feeder.

    The feeder start offsets are drawn from the same seeded tree, so the
    whole event sequence is reproducible — and identical under either
    clock driver, which is what the parity assertion rests on.
    """
    tenants = tuple(TenantPolicy(name=name, max_sessions=quota,
                                 max_pending_chunks=8)
                    for name, quota in TENANTS)
    service = StreamingService(num_edge_servers=num_edges,
                               clock=clock,
                               max_sessions=len(plans) + 8,
                               tenants=tenants)
    offsets = make_rng(seed, "streaming", "offsets").uniform(
        0.0, PERIOD_SECONDS, size=len(plans))
    for (camera, tenant, chunks), offset in zip(plans, offsets):
        service.open_session(camera, tenant=tenant)
        ChunkFeeder(service, camera, chunks,
                    period_seconds=PERIOD_SECONDS).start(at=float(offset))
    return service


def run_real_time(service: StreamingService, num_cameras: int,
                  snapshot_every: float) -> None:
    """Drive the service in slices, snapshotting health between them."""
    header = (f"{'virtual s':>9} {'active':>6} {'in flight':>9} "
              f"{'max util':>8} {'events':>7} {'clock lag ms':>12}")
    print(header)
    print("-" * len(header))
    peak_active = 0
    while service.scheduler.pending_events:
        service.run_for(snapshot_every)
        status = service.status()
        peak_active = max(peak_active, status.active_sessions)
        print(f"{status.virtual_now:>9.1f} {status.active_sessions:>6d} "
              f"{status.total_in_flight:>9d} {status.max_utilisation:>8.3f} "
              f"{status.events_processed:>7d} "
              f"{status.clock_max_lag_seconds * 1e3:>12.2f}")
        if status.max_utilisation > 1.0:
            raise AssertionError(
                f"utilisation exceeded 1.0 at t={status.virtual_now:.2f}s: "
                f"{status.max_utilisation:.4f}")
    if peak_active < num_cameras:
        raise AssertionError(
            f"expected >= {num_cameras} concurrent sessions, "
            f"peak was {peak_active}")
    print(f"\nPeak concurrent sessions: {peak_active} "
          f"(all utilisations <= 1.0 at every snapshot)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cameras", type=int, default=16,
                        help="camera streams to serve (default: 16)")
    parser.add_argument("--edges", type=int, default=4,
                        help="edge servers (default: 4)")
    parser.add_argument("--chunks", type=int, default=8,
                        help="chunks each camera pushes (default: 8)")
    parser.add_argument("--speedup", type=float, default=200.0,
                        help="real-time speedup: virtual seconds per wall "
                             "second (default: 200)")
    parser.add_argument("--seed", type=int, default=7,
                        help="root seed of the workload (default: 7)")
    parser.add_argument("--snapshot-every", type=float, default=2.0,
                        help="virtual seconds between health snapshots "
                             "(default: 2.0)")
    arguments = parser.parse_args()
    if arguments.cameras < 1 or arguments.edges < 1 or arguments.chunks < 1:
        parser.error("--cameras, --edges and --chunks must be >= 1")
    configure_logging()

    plans = build_camera_plans(arguments.cameras, arguments.chunks,
                               arguments.seed)
    total_frames = sum(sum(chunk.num_frames for chunk in chunks)
                      for _, _, chunks in plans)
    print(f"{arguments.cameras} cameras x {arguments.chunks} chunks "
          f"({total_frames} frames) over {arguments.edges} edge servers, "
          f"{len(TENANTS)} tenants\n")

    print("=== virtual clock (batch reference) ===")
    virtual = build_service(plans, arguments.edges, VirtualClock(),
                            arguments.seed)
    virtual.drain()
    baseline = virtual.fleet_report()
    print(f"makespan {baseline.makespan_seconds:.2f} virtual s in "
          f"{virtual.wall_run_seconds * 1e3:.1f} wall ms, "
          f"p50 latency {baseline.latency_percentiles[50]:.2f} s, "
          f"p99 {baseline.latency_percentiles[99]:.2f} s\n")

    print(f"=== real-time clock (speedup {arguments.speedup:g}x) ===")
    clock = RealTimeClock(speedup=arguments.speedup)
    live = build_service(plans, arguments.edges, clock, arguments.seed)
    run_real_time(live, arguments.cameras, arguments.snapshot_every)
    report = live.fleet_report()
    print(f"makespan {report.makespan_seconds:.2f} virtual s in "
          f"{live.wall_run_seconds:.2f} wall s "
          f"(slept {clock.total_sleep_seconds:.2f} s, "
          f"max lag {clock.max_lag_seconds * 1e3:.2f} ms)\n")

    mismatches = baseline.parity_mismatches(report, TOLERANCE)
    if mismatches:
        raise AssertionError(
            "real-time run diverged from the virtual-clock run: "
            + "; ".join(mismatches))
    print(f"Real-time run matches the virtual-clock run on all "
          f"{len(baseline.as_dict())} report metrics, every tier and every "
          f"per-camera timeline (<= {TOLERANCE:g}).")


if __name__ == "__main__":
    main()
