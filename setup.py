"""Setup shim for environments without PEP 517 build isolation support."""
from setuptools import setup

setup()
