"""SiEVE reproduction: semantically encoded video analytics on edge and cloud.

This package reproduces the system described in *SiEVE: Semantically Encoded
Video Analytics on Edge and Cloud* (Elgamal et al., ICDCS 2020) as a
self-contained Python library: a tunable video codec substrate, the I-frame
seeker, decode-based baselines, a numpy NN substrate, a simulated 3-tier
camera/edge/cloud cluster, the offline encoder tuner, and the experiment
harnesses that regenerate the paper's tables and figures.

The most common entry points:

>>> from repro import Sieve, make_scenario
>>> from repro.video import SyntheticScene
>>> profile = make_scenario("jackson_square", duration_seconds=30)
>>> video = SyntheticScene(profile).video()
>>> sieve = Sieve()
>>> tuning = sieve.tune_camera("jackson_square", video)
>>> analysis = sieve.analyze_video(video, "jackson_square")
"""

from .config import (DEFAULT_SYSTEM_CONFIG, HardwareCalibration, SystemConfig,
                     NN_INPUT_RESOLUTION)
from .core import (ALL_DEPLOYMENT_MODES, DeploymentMode, DeploymentReport,
                   DetectionScore, EndToEndSimulation, Sieve, SemanticEncoderTuner,
                   TuningGrid, TuningResult, VideoAnalysisResult, build_workload,
                   evaluate_sampling)
from .codec import (EncoderParameters, EncodedVideo, IFrameSeeker, VideoDecoder,
                    VideoEncoder)
from .datasets import DatasetSpec, TABLE_I, build_dataset, build_split
from .errors import SieveError
from .video import (EventTimeline, Frame, FrameType, Resolution, SceneProfile,
                    SyntheticScene, make_scenario)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SYSTEM_CONFIG", "HardwareCalibration", "SystemConfig",
    "NN_INPUT_RESOLUTION",
    "ALL_DEPLOYMENT_MODES", "DeploymentMode", "DeploymentReport", "DetectionScore",
    "EndToEndSimulation", "Sieve", "SemanticEncoderTuner", "TuningGrid",
    "TuningResult", "VideoAnalysisResult", "build_workload", "evaluate_sampling",
    "EncoderParameters", "EncodedVideo", "IFrameSeeker", "VideoDecoder",
    "VideoEncoder",
    "DatasetSpec", "TABLE_I", "build_dataset", "build_split",
    "SieveError",
    "EventTimeline", "Frame", "FrameType", "Resolution", "SceneProfile",
    "SyntheticScene", "make_scenario",
    "__version__",
]
