"""Online adaptive tuning: drift detection + re-tuning in the serving path.

See :mod:`repro.adapt.controller` for the architecture overview.
"""

from .controller import (AdaptiveConfig, AdaptiveTuningController,
                         DriftMonitor, RetuneDecision, retune_history)
from .detectors import (DriftSignal, PageHinkleyDetector,
                        WindowedZScoreDetector)
from .signals import (REFERENCE_SCENECUT, ChunkScene, SceneStats,
                      chunk_scene, mean_luma)

__all__ = [
    "AdaptiveConfig", "AdaptiveTuningController", "DriftMonitor",
    "RetuneDecision", "retune_history",
    "DriftSignal", "PageHinkleyDetector", "WindowedZScoreDetector",
    "REFERENCE_SCENECUT", "ChunkScene", "SceneStats", "chunk_scene",
    "mean_luma",
]
