"""Online re-tune controller: confirmed drift -> windowed grid search.

The paper's tuner is strictly offline — tune once on labelled footage,
deploy frozen (Section IV).  Production cameras drift, so this module
closes the loop in the serving path:

* :class:`DriftMonitor` is the pure, clock-free per-session core: it
  folds each chunk's :class:`~repro.adapt.signals.ChunkScene` into the
  detectors, applies hysteresis (``confirm_chunks`` consecutive drifting
  chunks) and cooldown, and on confirmed drift re-runs the cheap
  ``tune_from_activities`` grid search over a sliding window of recent
  activities.  Being pure makes it directly testable — the differential
  exact-vs-fast contract drives it without a service.
* :class:`AdaptiveTuningController` binds monitors to a live
  :class:`~repro.service.service.StreamingService`: it observes accepted
  pushes, applies winning parameters through the existing
  ``retune_session`` path (no stream is dropped), versions every retune
  in a :class:`~repro.core.tuner.ParameterLookupTable` and mirrors it
  into the fault driver's recovery trace when one is installed.

Determinism: every decision is a pure function of the pushed chunk
sequence and the virtual clock, and all controller work happens inside
push events on the shared event heap — so same-seed runs produce
byte-identical retune histories under the virtual and the real-time
clock alike.  Tie-break contract: a grid winner whose F1 does not
*strictly* beat the incumbent's on the same window is a no-op (see
:class:`~repro.core.tuner.TuningResult`), so exact ties never churn
sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..codec.scenecut import FrameActivity
from ..core.tuner import (ParameterLookupTable, RetuneRecord,
                          SemanticEncoderTuner, TuningGrid)
from ..errors import ServiceError
from ..faults.stats import RecoveryTrace
from ..logging_utils import get_logger
from ..video.events import EventTimeline
from .detectors import (DriftSignal, PageHinkleyDetector,
                        WindowedZScoreDetector)
from .signals import ChunkScene

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.service import StreamingService
    from ..service.session import FrameChunk, StreamSession

_LOGGER = get_logger(__name__)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the online adaptive tuning loop.

    Attributes:
        grid: The (GOP, scenecut) grid a triggered re-tune explores.
        initial_parameters: Parameters deployed before the first retune
            (typically the offline tune of the training split); also the
            template for non-tuned fields (quality, block size).
        window_chunks: Sliding window of recent chunks a re-tune
            grid-searches over.
        min_window_chunks: Chunks required in the window before a
            re-tune may run (a one-chunk "window" overfits).
        confirm_chunks: Hysteresis — consecutive drifting chunks required
            before a drift is confirmed.
        cooldown_seconds: Virtual seconds after a confirmed drift during
            which new confirmations are suppressed.
        novelty_threshold: z-score threshold on mean novelty.
        scenecut_rate_threshold: z-score threshold on the scene-cut rate.
        brightness_delta: Page–Hinkley per-sample tolerance on mean luma.
        brightness_threshold: Page–Hinkley cumulative threshold on luma.
        detector_window: Baseline window of the z-score detectors.
        detector_min_samples: Baseline samples required before any
            detector may fire.
        precision: Numeric mode of the re-tune grid search (``"exact"``
            default; ``"fast"`` rides the float32 motion-search path and
            is covered by the differential contract tests).
    """

    grid: TuningGrid = field(default_factory=TuningGrid)
    initial_parameters: EncoderParameters = DEFAULT_PARAMETERS
    window_chunks: int = 8
    min_window_chunks: int = 3
    confirm_chunks: int = 2
    cooldown_seconds: float = 10.0
    novelty_threshold: float = 4.0
    scenecut_rate_threshold: float = 4.0
    brightness_delta: float = 1.0
    brightness_threshold: float = 25.0
    detector_window: int = 12
    detector_min_samples: int = 4
    precision: str = "exact"

    def __post_init__(self) -> None:
        if self.window_chunks < 1:
            raise ServiceError("window_chunks must be >= 1")
        if not 1 <= self.min_window_chunks <= self.window_chunks:
            raise ServiceError(
                "min_window_chunks must be within [1, window_chunks]")
        if self.confirm_chunks < 1:
            raise ServiceError("confirm_chunks must be >= 1")
        if self.cooldown_seconds < 0:
            raise ServiceError("cooldown_seconds must be >= 0")


@dataclass(frozen=True)
class RetuneDecision:
    """Outcome of one confirmed drift evaluation.

    Attributes:
        time: Virtual time of the evaluation.
        trigger: Deterministic description of the confirming signals.
        old: Parameters in force before the evaluation.
        new: The window grid-search winner.
        old_f1: The incumbent's F1 on the evaluation window.
        new_f1: The winner's F1 on the evaluation window.
        applied: ``False`` when the winner is the incumbent or tie-equal
            to it (no-op by the tie-break contract).
    """

    time: float
    trigger: str
    old: EncoderParameters
    new: EncoderParameters
    old_f1: float
    new_f1: float
    applied: bool


class DriftMonitor:
    """Pure per-session drift detection + re-tune decision core.

    Feed it one :class:`ChunkScene` per accepted chunk via
    :meth:`observe`; it returns a :class:`RetuneDecision` whenever a
    confirmed drift triggered a window grid search (applied or not), and
    ``None`` otherwise.  It never touches a clock or a service — time
    arrives as an argument — so the same chunk sequence always yields
    the same decisions.
    """

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config
        self.current = config.initial_parameters
        self._window: Deque[ChunkScene] = deque(maxlen=config.window_chunks)
        self._detectors = [
            WindowedZScoreDetector(
                "novelty", threshold=config.novelty_threshold,
                window=config.detector_window,
                min_samples=config.detector_min_samples,
                min_std=1e-3),
            WindowedZScoreDetector(
                "scenecut-rate", threshold=config.scenecut_rate_threshold,
                window=config.detector_window,
                min_samples=config.detector_min_samples,
                min_std=5e-3),
            PageHinkleyDetector(
                "brightness", delta=config.brightness_delta,
                threshold=config.brightness_threshold,
                min_samples=config.detector_min_samples),
        ]
        self._consecutive = 0
        self._cooldown_until = float("-inf")

    def observe(self, scene: ChunkScene,
                now: float) -> Optional[RetuneDecision]:
        """Fold one chunk's scene payload; maybe decide a re-tune."""
        self._window.append(scene)
        signals = self._fold(scene)
        if signals:
            self._consecutive += 1
        else:
            self._consecutive = 0
        if self._consecutive < self.config.confirm_chunks:
            return None
        if now < self._cooldown_until:
            return None
        if len(self._window) < self.config.min_window_chunks:
            return None
        # Confirmed drift: arm the cooldown, reset hysteresis and give the
        # detectors a fresh baseline (the post-drift regime).
        self._cooldown_until = now + self.config.cooldown_seconds
        self._consecutive = 0
        trigger = ",".join(signal.describe() for signal in signals)
        decision = self._evaluate(trigger, now)
        for detector in self._detectors:
            detector.reset()
        if decision.applied:
            self.current = decision.new
        return decision

    def _fold(self, scene: ChunkScene) -> List[DriftSignal]:
        """Feed the chunk statistics to every detector, in fixed order."""
        stats = scene.stats
        values = (stats.mean_novelty, stats.scenecut_rate,
                  stats.mean_brightness)
        signals = []
        for detector, value in zip(self._detectors, values):
            signal = detector.observe(value)
            if signal is not None:
                signals.append(signal)
        return signals

    def _evaluate(self, trigger: str, now: float) -> RetuneDecision:
        """Grid-search the window and compare the winner to the incumbent."""
        activities: List[FrameActivity] = []
        frame_labels: List[frozenset] = []
        for scene in self._window:
            activities.extend(scene.activities)
            frame_labels.extend(scene.frame_labels)
        timeline = EventTimeline.from_frame_labels(frame_labels)
        tuner = SemanticEncoderTuner(grid=self.config.grid,
                                     base_parameters=self.current,
                                     precision=self.config.precision)
        result = tuner.tune_from_activities(activities, timeline)
        incumbent = result.score_of(self.current)
        if incumbent is not None:
            old_f1 = incumbent.score.f1
        else:
            # The incumbent is off-grid (custom offline tune): replay its
            # placement on the same window so the comparison is apples to
            # apples.
            from ..codec.gop import KeyframePlacer
            from ..core.metrics import evaluate_sampling
            keyframes = KeyframePlacer(self.current).keyframe_indices(
                activities)
            old_f1 = evaluate_sampling(timeline, keyframes).f1
        winner = result.best
        # Tie-break contract: only a *strictly* better F1 with genuinely
        # different parameters is worth a retune; tie-equal winners are
        # no-ops so exact ties never churn sessions.
        applied = (winner.parameters != self.current
                   and winner.score.f1 > old_f1)
        return RetuneDecision(
            time=now, trigger=trigger, old=self.current,
            new=winner.parameters, old_f1=old_f1,
            new_f1=winner.score.f1, applied=applied)


class AdaptiveTuningController:
    """Service-bound driver of the online adaptive tuning loop.

    Installed by :class:`~repro.service.service.StreamingService` when an
    :class:`AdaptiveConfig` is passed (and never otherwise — the default
    serving path stays bit-identical to the seed).  The service calls
    :meth:`observe_push` from inside every accepted push event; chunks
    without a :class:`ChunkScene` payload are ignored.
    """

    def __init__(self, service: "StreamingService",
                 config: AdaptiveConfig) -> None:
        self.service = service
        self.config = config
        #: Versioned per-camera parameter table (the audit log).
        self.table = ParameterLookupTable()
        #: The controller's own trace of drift/retune events.
        self.trace = RecoveryTrace()
        self._monitors: Dict[str, DriftMonitor] = {}
        #: Retunes actually applied through ``retune_session``.
        self.retunes_applied = 0
        #: Confirmed drifts whose winner was tie-equal (no-ops).
        self.retunes_suppressed = 0

    def monitor(self, session_id: str) -> Optional[DriftMonitor]:
        """The monitor of one session (``None`` before its first scene)."""
        return self._monitors.get(session_id)

    def observe_push(self, session: "StreamSession",
                     chunk: "FrameChunk") -> None:
        """Fold one accepted push into the session's drift monitor."""
        scene = chunk.scene
        if scene is None:
            return
        now = self.service.scheduler.now
        monitor = self._monitors.get(session.session_id)
        if monitor is None:
            monitor = DriftMonitor(self.config)
            self._monitors[session.session_id] = monitor
            self.table.store(session.camera, monitor.current, time=now,
                             trigger="initial")
        decision = monitor.observe(scene, now)
        if decision is None:
            return
        if not decision.applied:
            self.retunes_suppressed += 1
            self._record(now, "retune-noop",
                         f"camera={session.camera} trigger={decision.trigger} "
                         f"kept=[{decision.old.describe()}] "
                         f"f1={decision.old_f1:.6f}")
            return
        self.service.ingest.retune_session(session.session_id,
                                           parameters=decision.new)
        record = self.table.store(session.camera, decision.new, time=now,
                                  trigger=decision.trigger,
                                  score=decision.new_f1)
        self.retunes_applied += 1
        self._record(now, "session-retuned",
                     f"camera={session.camera} v{record.version} "
                     f"trigger={decision.trigger} "
                     f"old=[{decision.old.describe()}] "
                     f"new=[{decision.new.describe()}] "
                     f"f1={decision.old_f1:.6f}->{decision.new_f1:.6f}")
        _LOGGER.debug("retuned %s: %s -> %s (window F1 %.3f -> %.3f)",
                      session.camera, decision.old.describe(),
                      decision.new.describe(), decision.old_f1,
                      decision.new_f1)

    def history_lines(self) -> List[str]:
        """The versioned retune history (see ``history_lines`` on the table)."""
        return self.table.history_lines()

    def counters(self) -> Dict[str, int]:
        """Flat retune counters (empty while nothing happened)."""
        counters: Dict[str, int] = {}
        if self.retunes_applied:
            counters["retunes_applied"] = self.retunes_applied
        if self.retunes_suppressed:
            counters["retunes_suppressed"] = self.retunes_suppressed
        return counters

    def _record(self, time: float, kind: str, detail: str) -> None:
        """Record into the controller trace and the fault driver's, if any."""
        self.trace.record(time, kind, detail)
        driver = self.service._fault_driver
        if driver is not None:
            driver.trace.record(time, kind, detail)


def retune_history(monitor_decisions: Tuple[RetuneDecision, ...]
                   ) -> List[RetuneRecord]:
    """Render standalone monitor decisions as versioned records (tests)."""
    records: List[RetuneRecord] = []
    version = 0
    for decision in monitor_decisions:
        if not decision.applied:
            continue
        version += 1
        records.append(RetuneRecord(
            version=version, time=decision.time, trigger=decision.trigger,
            old=decision.old, new=decision.new, score=decision.new_f1))
    return records
