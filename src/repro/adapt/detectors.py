"""Lightweight drift detectors over scalar scene statistics.

Two classic sequential change detectors, both deterministic pure
functions of the observed sample sequence (no randomness — the seeding
contract of the adaptive path lives entirely in the *workload*: scenario
scripts, fault plans and soak schedules all derive from
:func:`repro.rng.make_rng`):

* :class:`WindowedZScoreDetector` — keeps a bounded window of baseline
  samples and flags a sample whose z-score against that baseline exceeds
  a threshold.  Catches step changes and fast ramps (scene-cut storms,
  novelty spikes).
* :class:`PageHinkleyDetector` — the Page–Hinkley cumulative-sum test on
  the deviation from the running mean, two-sided.  Catches slow drifts
  a windowed z-score would absorb into its baseline (gradual day→night
  dimming).

Both report a :class:`DriftSignal` carrying a deterministic, printable
magnitude so trigger strings in retune histories diff byte-identically
across reruns.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..errors import ServiceError


@dataclass(frozen=True)
class DriftSignal:
    """One detector firing.

    Attributes:
        statistic: Name of the monitored statistic (``novelty``, ...).
        kind: Detector kind (``zscore`` or ``page-hinkley``).
        magnitude: Detector-specific drift magnitude (z value or PH sum).
        value: The sample that fired.
    """

    statistic: str
    kind: str
    magnitude: float
    value: float

    def describe(self) -> str:
        """Deterministic short form used in trigger strings."""
        return f"{self.statistic}:{self.kind}={self.magnitude:.3f}"


class WindowedZScoreDetector:
    """Flag samples far from a bounded window of baseline samples.

    The baseline window holds the most recent ``window`` *accepted*
    samples; each new sample is scored against the window **before**
    being absorbed into it, so a sustained shift keeps firing until the
    detector is reset (which the controller does after a retune — the new
    regime becomes the new baseline).

    Args:
        statistic: Name reported in :class:`DriftSignal`.
        threshold: z-score above which the detector fires.
        window: Baseline window length.
        min_samples: Samples required in the baseline before the detector
            may fire (a two-sample "baseline" fires on noise).
        min_std: Floor on the baseline standard deviation, so a
            near-constant baseline does not turn measurement noise into
            unbounded z-scores.
    """

    kind = "zscore"

    def __init__(self, statistic: str, threshold: float = 4.0,
                 window: int = 12, min_samples: int = 4,
                 min_std: float = 1e-3) -> None:
        if threshold <= 0:
            raise ServiceError("z-score threshold must be > 0")
        if window < 2 or min_samples < 2:
            raise ServiceError("z-score window/min_samples must be >= 2")
        if min_std <= 0:
            raise ServiceError("min_std must be > 0")
        self.statistic = statistic
        self.threshold = float(threshold)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.min_std = float(min_std)
        self._baseline: Deque[float] = deque(maxlen=self.window)

    def observe(self, value: float) -> Optional[DriftSignal]:
        """Score ``value`` against the baseline, then absorb it."""
        if value != value:  # nan: statistic unavailable for this chunk
            return None
        signal = None
        if len(self._baseline) >= self.min_samples:
            count = len(self._baseline)
            mean = sum(self._baseline) / count
            variance = sum((sample - mean) ** 2
                           for sample in self._baseline) / count
            std = max(math.sqrt(variance), self.min_std)
            z = abs(value - mean) / std
            if z > self.threshold:
                signal = DriftSignal(statistic=self.statistic, kind=self.kind,
                                     magnitude=z, value=value)
        # A firing sample is *not* absorbed: the baseline keeps describing
        # the pre-drift regime, so a genuine shift fires on every chunk
        # until the controller confirms it and resets the detector.
        if signal is None:
            self._baseline.append(value)
        return signal

    def reset(self) -> None:
        """Forget the baseline (called after a confirmed retune)."""
        self._baseline.clear()


class PageHinkleyDetector:
    """Two-sided Page–Hinkley cumulative drift test.

    Tracks the running mean of the samples and accumulates deviations
    beyond a tolerance ``delta`` in both directions; fires when either
    cumulative sum exceeds ``threshold``.  Slow monotonic drifts
    accumulate even when each step is individually within noise.

    Args:
        statistic: Name reported in :class:`DriftSignal`.
        delta: Per-sample deviation tolerance (same units as the samples).
        threshold: Cumulative deviation that constitutes drift.
        min_samples: Samples required before the detector may fire.
    """

    kind = "page-hinkley"

    def __init__(self, statistic: str, delta: float = 0.5,
                 threshold: float = 20.0, min_samples: int = 4) -> None:
        if delta < 0:
            raise ServiceError("Page-Hinkley delta must be >= 0")
        if threshold <= 0:
            raise ServiceError("Page-Hinkley threshold must be > 0")
        if min_samples < 2:
            raise ServiceError("Page-Hinkley min_samples must be >= 2")
        self.statistic = statistic
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def observe(self, value: float) -> Optional[DriftSignal]:
        """Fold ``value`` into the cumulative sums and test them."""
        if value != value:  # nan: statistic unavailable for this chunk
            return None
        self._count += 1
        self._mean += (value - self._mean) / self._count
        deviation = value - self._mean
        self._sum_up = max(0.0, self._sum_up + deviation - self.delta)
        self._sum_down = max(0.0, self._sum_down - deviation - self.delta)
        if self._count < self.min_samples:
            return None
        magnitude = max(self._sum_up, self._sum_down)
        if magnitude > self.threshold:
            return DriftSignal(statistic=self.statistic, kind=self.kind,
                               magnitude=magnitude, value=value)
        return None

    def reset(self) -> None:
        """Forget all state (called after a confirmed retune)."""
        self._count = 0
        self._mean = 0.0
        self._sum_up = 0.0
        self._sum_down = 0.0
