"""Per-chunk scene statistics that feed the drift detectors.

The analysis pass (:class:`~repro.codec.scenecut.SceneCutAnalyzer`) is
already computed once per chunk on the serving path — its
:class:`~repro.codec.scenecut.FrameActivity` records are parameter
independent, which is what makes the offline grid search cheap and is
also what makes *online* drift detection cheap: the controller never
touches pixels, it folds the activities every chunk already carries into
three scalars (mean novelty, scene-cut rate, mean brightness) and feeds
those to the detectors.

:class:`ChunkScene` is the optional payload a caller attaches to a
:class:`~repro.service.session.FrameChunk`.  Chunks without one are
invisible to the adaptive controller, so the default serving path stays
bit-identical to the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

import numpy as np

from ..codec.scenecut import FrameActivity, scenecut_score_threshold
from ..errors import ServiceError

#: Reference scenecut threshold used to turn per-frame novelty into a
#: parameter-independent scene-cut *rate* statistic.  100 is the centre of
#: the paper's grid, so the rate tracks "how often would a mid-grid config
#: cut here" regardless of the parameters currently deployed.
REFERENCE_SCENECUT: float = 100.0


@dataclass(frozen=True)
class SceneStats:
    """Rolling scene statistics of one chunk of footage.

    Attributes:
        num_frames: Frames summarised.
        mean_novelty: Mean ``novel_block_fraction`` over the chunk's
            non-first frames (the synthetic ``1.0`` of an ``is_first``
            frame would poison the mean).
        scenecut_rate: Fraction of non-first frames whose novelty exceeds
            the :data:`REFERENCE_SCENECUT` decision threshold.
        mean_brightness: Mean luma of the chunk's frames, when the caller
            measured it (``nan`` when unavailable — the brightness
            detector skips nan samples).
    """

    num_frames: int
    mean_novelty: float
    scenecut_rate: float
    mean_brightness: float = float("nan")

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ServiceError("SceneStats needs at least one frame")
        if not 0.0 <= self.scenecut_rate <= 1.0:
            raise ServiceError("scenecut_rate must be within [0, 1]")

    @classmethod
    def from_activities(cls, activities: Sequence[FrameActivity],
                        mean_brightness: float = float("nan"),
                        reference_scenecut: float = REFERENCE_SCENECUT
                        ) -> "SceneStats":
        """Fold an analysis pass into the drift statistics.

        ``is_first`` frames are excluded from novelty/scene-cut folding
        (their novelty is a synthetic 1.0); a chunk of only first frames
        degenerates to zero novelty, which is harmless — detectors only
        ever see it once per session.
        """
        if not activities:
            raise ServiceError("SceneStats needs at least one activity")
        threshold = max(scenecut_score_threshold(reference_scenecut), 1e-12)
        novelty_sum = 0.0
        cuts = 0
        counted = 0
        for activity in activities:
            if activity.is_first:
                continue
            counted += 1
            novelty_sum += activity.novel_block_fraction
            if activity.novel_block_fraction > threshold:
                cuts += 1
        if counted == 0:
            return cls(num_frames=len(activities), mean_novelty=0.0,
                       scenecut_rate=0.0, mean_brightness=mean_brightness)
        return cls(num_frames=len(activities),
                   mean_novelty=novelty_sum / counted,
                   scenecut_rate=cuts / counted,
                   mean_brightness=mean_brightness)


@dataclass(frozen=True)
class ChunkScene:
    """Optional scene payload riding on a pushed :class:`FrameChunk`.

    Attributes:
        stats: The chunk's drift statistics (what the detectors consume).
        activities: The chunk's analysis pass, in frame order (what a
            triggered re-tune grid-searches over).
        frame_labels: Ground-truth (or detector-predicted) label sets per
            frame, aligned with ``activities`` — the re-tune scores
            candidate placements against the timeline these reconstruct.
    """

    stats: SceneStats
    activities: Tuple[FrameActivity, ...]
    frame_labels: Tuple[FrozenSet[str], ...]

    def __post_init__(self) -> None:
        if len(self.activities) != len(self.frame_labels):
            raise ServiceError(
                f"chunk scene has {len(self.activities)} activities but "
                f"{len(self.frame_labels)} frame label sets")
        if len(self.activities) != self.stats.num_frames:
            raise ServiceError(
                f"chunk scene stats cover {self.stats.num_frames} frames "
                f"but {len(self.activities)} activities were attached")


def chunk_scene(activities: Sequence[FrameActivity],
                frame_labels: Sequence[Iterable[str]],
                mean_brightness: float = float("nan"),
                reference_scenecut: float = REFERENCE_SCENECUT) -> ChunkScene:
    """Build a :class:`ChunkScene` from one chunk's analysis pass."""
    stats = SceneStats.from_activities(
        activities, mean_brightness=mean_brightness,
        reference_scenecut=reference_scenecut)
    return ChunkScene(stats=stats, activities=tuple(activities),
                      frame_labels=tuple(frozenset(labels)
                                         for labels in frame_labels))


def mean_luma(frame) -> float:
    """Mean luma of one frame array (the brightness statistic)."""
    if frame.size == 0:
        return math.nan
    return float(np.asarray(frame, dtype=np.float64).mean())
