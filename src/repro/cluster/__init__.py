"""Simulated 3-tier cluster: cameras, edge servers, cloud, cost model."""

from .camera import Camera
from .cloud import CloudServer
from .costmodel import CostModel
from .edge import EdgeServer
from .fleet import (CameraJob, FleetOrchestrator, FleetReport, JobOutcome,
                    PlacementPolicy, TierReport, sweep_edge_counts)
from .node import (ComputeNode, default_camera_node, default_cloud_node,
                   default_edge_node)
from .resultdb import ResultDatabase, ResultRecord, SQLiteResultStore
from .storage import EdgeStorage

__all__ = [
    "Camera", "CloudServer", "CostModel", "EdgeServer",
    "CameraJob", "FleetOrchestrator", "FleetReport", "JobOutcome",
    "PlacementPolicy", "TierReport", "sweep_edge_counts",
    "ComputeNode", "default_camera_node", "default_cloud_node", "default_edge_node",
    "ResultDatabase", "ResultRecord", "SQLiteResultStore", "EdgeStorage",
]
