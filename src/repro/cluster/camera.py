"""The camera tier.

A camera owns a scene (one of the Table I scenarios or any
:class:`~repro.video.synthetic.SceneProfile`), encodes it with the encoder
parameters configured by the operator — the paper's "semantic video encoder"
lives *in the camera*, its parameters are pushed through the vendor software
— and streams the encoded video to its edge server, charging the bytes to
the camera->edge link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..codec.bitstream import EncodedVideo
from ..codec.encoder import VideoEncoder
from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..errors import ClusterError
from ..net.link import NetworkLink
from ..video.raw_video import VideoSource
from ..video.synthetic import SceneProfile, SyntheticScene
from .node import ComputeNode, default_camera_node


@dataclass
class Camera:
    """A surveillance camera with a controllable video encoder.

    Attributes:
        name: Camera name (also used as the video name).
        profile: Scene profile the camera observes.
        parameters: Encoder parameters currently configured on the camera;
            updated by the operator's control path
            (:meth:`configure_encoder`).
        node: The camera's compute node.
    """

    name: str
    profile: SceneProfile
    parameters: EncoderParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    node: ComputeNode = None
    _encoded_cache: Dict[EncoderParameters, EncodedVideo] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = default_camera_node(f"camera:{self.name}")
        if self.node.role != "camera":
            raise ClusterError("a Camera must run on a camera node")

    # ------------------------------------------------------------------ #
    # Control path (dashed lines in Figure 1)
    # ------------------------------------------------------------------ #
    def configure_encoder(self, parameters: EncoderParameters) -> None:
        """Apply new encoder parameters (the operator's control command)."""
        self.parameters = parameters

    # ------------------------------------------------------------------ #
    # Data path
    # ------------------------------------------------------------------ #
    def capture(self) -> VideoSource:
        """Render the camera's (synthetic) raw video with ground truth."""
        return SyntheticScene(self.profile).video()

    def encode(self, parameters: Optional[EncoderParameters] = None,
               materialise_payload: bool = False) -> EncodedVideo:
        """Encode the camera's video with the given (or configured) parameters.

        Encodings are cached per parameter set because the end-to-end
        experiments compare several deployments over the same footage.
        """
        parameters = parameters or self.parameters
        if parameters in self._encoded_cache and not materialise_payload:
            return self._encoded_cache[parameters]
        encoded = VideoEncoder(parameters).encode(self.capture(),
                                                  materialise_payload)
        if not materialise_payload:
            self._encoded_cache[parameters] = encoded
        return encoded

    def stream_to_edge(self, link: NetworkLink,
                       parameters: Optional[EncoderParameters] = None) -> EncodedVideo:
        """Encode the video and charge its bytes to the camera->edge link."""
        encoded = self.encode(parameters)
        link.transfer(encoded.total_size_bytes, f"camera-stream:{self.name}")
        return encoded

    @property
    def ground_truth(self):
        """Ground-truth event timeline of the camera's scene."""
        return SyntheticScene(self.profile).script.timeline()
