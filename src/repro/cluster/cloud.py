"""The cloud tier.

The cloud server hosts the cloud compute engine (the second NiFi instance),
the result database, and — in the "I-frame cloud" deployment — also the
I-frame seeker.  As with the edge server, its methods perform the
per-stage work and charge simulated time to the cloud node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from ..codec.bitstream import EncodedFrame, EncodedVideo
from ..codec.iframe_seeker import IFrameSeeker, SeekResult
from ..dataflow.engine import DataflowEngine
from ..errors import ClusterError
from ..nn.oracle import ObjectDetector
from ..video.frame import Resolution
from .costmodel import CostModel
from .node import ComputeNode, default_cloud_node
from .resultdb import ResultDatabase


@dataclass
class CloudServer:
    """The cloud server of the 3-tier deployment.

    Attributes:
        name: Server name.
        node: Compute node the server runs on.
        cost_model: Calibrated per-operation cost model.
        results: The result database.
        engine: The local dataflow engine (NiFi stand-in).
    """

    name: str = "cloud-server"
    node: ComputeNode = field(default_factory=default_cloud_node)
    cost_model: CostModel = field(default_factory=CostModel)
    results: ResultDatabase = field(default_factory=ResultDatabase)
    engine: DataflowEngine = field(default_factory=lambda: DataflowEngine("cloud-nifi"))
    _seeker: IFrameSeeker = field(default_factory=IFrameSeeker, repr=False)

    def __post_init__(self) -> None:
        if self.node.role != "cloud":
            raise ClusterError("a CloudServer must run on a cloud node")

    # ------------------------------------------------------------------ #
    # Per-stage operations
    # ------------------------------------------------------------------ #
    def seek_iframes(self, encoded: EncodedVideo
                     ) -> Tuple[List[EncodedFrame], SeekResult, float]:
        """Run the I-frame seeker in the cloud (the 2-tier cloud deployment)."""
        keyframes, result = self._seeker.seek_with_stats(encoded)
        seconds = self.node.charge(self.cost_model.seek_seconds(
            encoded.num_frames, encoded.metadata.resolution, self.node.speed_factor))
        return keyframes, result, seconds

    def decode_keyframes(self, num_frames: int, resolution: Resolution) -> float:
        """Charge the still-image decode of I-frames in the cloud."""
        return self.node.charge(self.cost_model.jpeg_decode_seconds(
            num_frames, resolution, self.node.speed_factor))

    def run_cloud_nn(self, num_frames: int) -> float:
        """Charge NN inference for ``num_frames`` frames on the cloud node."""
        return self.node.charge(self.cost_model.nn_seconds(num_frames, device="cloud"))

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def record_labels(self, video_name: str, detector: ObjectDetector,
                      frame_indices: Iterable[int]) -> int:
        """Run the detector on the given frames and store the results.

        Returns:
            The number of rows written to the result database.
        """
        count = 0
        for frame_index in frame_indices:
            labels = detector.detect(int(frame_index))
            self.results.record(video_name, int(frame_index), labels)
            count += 1
        return count

    def reset(self) -> None:
        """Clear timing and results."""
        self.node.reset()
        self.results.clear()
