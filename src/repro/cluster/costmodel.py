"""Calibrated per-operation cost model of the simulated testbed.

The paper's end-to-end numbers come from a physical edge desktop and cloud
server; this reproduction replaces them with a discrete cost model calibrated
to the per-frame costs the paper reports (Section V-A): I-frame seeking at
~0.43 ms/frame and full-frame decoding at ~8 ms/frame for 1080p, with both
scaling with frame resolution (Table III shows the same ~100x gap at
600x400), plus NN inference costs that differ between the edge and cloud
devices.

All methods return *seconds* for a batch of frames, already scaled by the
frame resolution and the executing node's speed factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import HardwareCalibration
from ..errors import ClusterError
from ..video.frame import RESOLUTION_1080P, Resolution

#: Pixel count all per-frame costs are calibrated against.
_REFERENCE_PIXELS = RESOLUTION_1080P.pixels


@dataclass(frozen=True)
class CostModel:
    """Per-operation timing model derived from a :class:`HardwareCalibration`.

    Attributes:
        calibration: The per-operation costs at the reference resolution.
    """

    calibration: HardwareCalibration = HardwareCalibration()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check(num_frames: int, speed_factor: float) -> None:
        if num_frames < 0:
            raise ClusterError("num_frames must be >= 0")
        if speed_factor <= 0:
            raise ClusterError("speed_factor must be positive")

    @staticmethod
    def resolution_scale(resolution: Resolution) -> float:
        """Pixel-count ratio of ``resolution`` to the 1080p reference."""
        return resolution.pixels / _REFERENCE_PIXELS

    def _scaled(self, per_frame_ms: float, num_frames: int, resolution: Resolution,
                speed_factor: float) -> float:
        self._check(num_frames, speed_factor)
        scale = self.resolution_scale(resolution)
        return per_frame_ms * scale * num_frames / speed_factor / 1e3

    # ------------------------------------------------------------------ #
    # Video-path operations
    # ------------------------------------------------------------------ #
    def seek_seconds(self, num_frames: int, resolution: Resolution,
                     speed_factor: float = 1.0) -> float:
        """I-frame seeking over ``num_frames`` container index entries."""
        return self._scaled(self.calibration.seek_ms_per_frame_1080p, num_frames,
                            resolution, speed_factor)

    def decode_seconds(self, num_frames: int, resolution: Resolution,
                       speed_factor: float = 1.0) -> float:
        """Full hybrid decode (bitstream + motion compensation + IDCT)."""
        return self._scaled(self.calibration.decode_ms_per_frame_1080p, num_frames,
                            resolution, speed_factor)

    def jpeg_decode_seconds(self, num_frames: int, resolution: Resolution,
                            speed_factor: float = 1.0) -> float:
        """Still-image decode of independently coded I-frames."""
        return self._scaled(self.calibration.jpeg_decode_ms_per_frame_1080p,
                            num_frames, resolution, speed_factor)

    def mse_seconds(self, num_frames: int, resolution: Resolution,
                    speed_factor: float = 1.0) -> float:
        """MSE similarity computation on already decoded frames."""
        return self._scaled(self.calibration.mse_ms_per_frame_1080p, num_frames,
                            resolution, speed_factor)

    def sift_seconds(self, num_frames: int, resolution: Resolution,
                     speed_factor: float = 1.0) -> float:
        """SIFT feature extraction + matching on already decoded frames."""
        return self._scaled(self.calibration.sift_ms_per_frame_1080p, num_frames,
                            resolution, speed_factor)

    def resize_seconds(self, num_frames: int, speed_factor: float = 1.0) -> float:
        """Resizing decoded frames to the NN input resolution."""
        self._check(num_frames, speed_factor)
        return self.calibration.resize_ms_per_frame * num_frames / speed_factor / 1e3

    # ------------------------------------------------------------------ #
    # NN inference
    # ------------------------------------------------------------------ #
    def nn_seconds(self, num_frames: int, device: str = "cloud",
                   speed_factor: Optional[float] = None) -> float:
        """Object-detection NN inference on ``device`` (``"edge"``/``"cloud"``)."""
        if num_frames < 0:
            raise ClusterError("num_frames must be >= 0")
        if device == "edge":
            per_frame = self.calibration.edge_nn_ms_per_frame
            factor = self.calibration.edge_speed_factor
        elif device == "cloud":
            per_frame = self.calibration.cloud_nn_ms_per_frame
            factor = self.calibration.cloud_speed_factor
        else:
            raise ClusterError(f"unknown device {device!r}")
        if speed_factor is not None:
            if speed_factor <= 0:
                raise ClusterError("speed_factor must be positive")
            factor = speed_factor
        # NN cost is independent of the source resolution: frames are resized
        # to the model input first.
        return per_frame * num_frames / factor / 1e3

    # ------------------------------------------------------------------ #
    # Derived quantities (used by Table III)
    # ------------------------------------------------------------------ #
    def event_detection_fps(self, method: str, resolution: Resolution,
                            speed_factor: float = 1.0) -> float:
        """Frames per second of an event-detection front end.

        Args:
            method: ``"sieve"`` (I-frame seeking), ``"mse"`` (decode + MSE) or
                ``"sift"`` (decode + SIFT).
            resolution: Source frame resolution.
            speed_factor: Executing node speed factor.

        Returns:
            Sustained frames per second of the front end.
        """
        if method == "sieve":
            per_frame = self.seek_seconds(1, resolution, speed_factor)
        elif method == "mse":
            per_frame = (self.decode_seconds(1, resolution, speed_factor)
                         + self.mse_seconds(1, resolution, speed_factor))
        elif method == "sift":
            per_frame = (self.decode_seconds(1, resolution, speed_factor)
                         + self.sift_seconds(1, resolution, speed_factor))
        else:
            raise ClusterError(f"unknown event-detection method {method!r}")
        if per_frame <= 0:
            raise ClusterError("per-frame cost must be positive")
        return 1.0 / per_frame
