"""The edge-server tier.

The edge server of Figure 1 hosts the I-frame seeker, the event queue, the
edge compute (dataflow) engine and the edge storage.  Its methods do the
per-stage work of the end-to-end pipeline and charge the corresponding
simulated time to the edge node.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Tuple

from ..codec.bitstream import EncodedFrame, EncodedVideo
from ..codec.iframe_seeker import IFrameSeeker, SeekResult
from ..dataflow.engine import DataflowEngine
from ..errors import ClusterError
from ..video.frame import Resolution
from .costmodel import CostModel
from .node import ComputeNode, default_edge_node
from .storage import EdgeStorage


@dataclass
class EdgeServer:
    """An edge server sitting between cameras and the cloud.

    Attributes:
        name: Server name.
        node: Compute node the server runs on.
        storage: Edge video storage.
        cost_model: Calibrated per-operation cost model.
        event_queue: Buffer of I-frames awaiting dispatch by the edge engine.
        engine: The local dataflow engine (NiFi stand-in).
    """

    name: str = "edge-server"
    node: ComputeNode = field(default_factory=default_edge_node)
    storage: EdgeStorage = field(default_factory=EdgeStorage)
    cost_model: CostModel = field(default_factory=CostModel)
    event_queue: Deque[EncodedFrame] = field(default_factory=deque)
    engine: DataflowEngine = field(default_factory=lambda: DataflowEngine("edge-nifi"))
    _seeker: IFrameSeeker = field(default_factory=IFrameSeeker, repr=False)

    def __post_init__(self) -> None:
        if self.node.role != "edge":
            raise ClusterError("an EdgeServer must run on an edge node")

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def ingest(self, encoded: EncodedVideo) -> None:
        """Receive a camera stream and keep it in edge storage."""
        self.storage.store(encoded)

    # ------------------------------------------------------------------ #
    # Per-stage operations (each returns charged seconds)
    # ------------------------------------------------------------------ #
    def seek_iframes(self, encoded: EncodedVideo,
                     enqueue: bool = True) -> Tuple[List[EncodedFrame], SeekResult, float]:
        """Run the I-frame seeker over a stored/ingested video.

        Returns the I-frames, seek statistics and the simulated seconds
        charged to the edge node.
        """
        keyframes, result = self._seeker.seek_with_stats(encoded)
        seconds = self.node.charge(self.cost_model.seek_seconds(
            encoded.num_frames, encoded.metadata.resolution, self.node.speed_factor))
        if enqueue:
            self.event_queue.extend(keyframes)
        return keyframes, result, seconds

    def decode_keyframes(self, num_frames: int, resolution: Resolution) -> float:
        """Charge the still-image decode of ``num_frames`` I-frames."""
        return self.node.charge(self.cost_model.jpeg_decode_seconds(
            num_frames, resolution, self.node.speed_factor))

    def decode_full_video(self, encoded: EncodedVideo) -> float:
        """Charge the classical full decode of every frame of a video."""
        return self.node.charge(self.cost_model.decode_seconds(
            encoded.num_frames, encoded.metadata.resolution, self.node.speed_factor))

    def run_mse_filter(self, num_frames: int, resolution: Resolution) -> float:
        """Charge an MSE similarity pass over ``num_frames`` decoded frames."""
        return self.node.charge(self.cost_model.mse_seconds(
            num_frames, resolution, self.node.speed_factor))

    def run_sift_filter(self, num_frames: int, resolution: Resolution) -> float:
        """Charge a SIFT matching pass over ``num_frames`` decoded frames."""
        return self.node.charge(self.cost_model.sift_seconds(
            num_frames, resolution, self.node.speed_factor))

    def resize_frames(self, num_frames: int) -> float:
        """Charge resizing ``num_frames`` frames to the NN input resolution."""
        return self.node.charge(self.cost_model.resize_seconds(
            num_frames, self.node.speed_factor))

    def run_edge_nn(self, num_frames: int) -> float:
        """Charge NN inference for ``num_frames`` frames on the edge node."""
        return self.node.charge(self.cost_model.nn_seconds(num_frames, device="edge"))

    # ------------------------------------------------------------------ #
    # Event queue
    # ------------------------------------------------------------------ #
    def drain_event_queue(self) -> List[EncodedFrame]:
        """Remove and return every buffered I-frame."""
        items = list(self.event_queue)
        self.event_queue.clear()
        return items

    @property
    def queued_events(self) -> int:
        """Number of I-frames waiting in the event queue."""
        return len(self.event_queue)

    def reset(self) -> None:
        """Clear timing, queue and engine state (storage is kept)."""
        self.node.reset()
        self.event_queue.clear()
        self.engine.reset() if self.engine.operators else None
