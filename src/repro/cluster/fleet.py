"""Multi-edge fleet orchestration over the discrete-event scheduler.

The paper's testbed is one camera feed per experiment: one edge desktop, one
cloud server, one WAN link.  A production deployment of the same NiFi-style
pipeline serves a *fleet* — N cameras sharded over M edge servers that all
funnel into the cloud tier.  :class:`FleetOrchestrator` simulates that
deployment on the shared virtual clock of
:mod:`repro.dataflow.scheduler`:

* each camera contributes one :class:`CameraJob` — the planned per-tier
  compute seconds and transfer bytes of pushing its footage through a
  deployment mode (the planning lives in :func:`repro.core.pipeline`'s
  ``plan_camera_job`` so this module stays mode-agnostic);
* a :class:`PlacementPolicy` shards cameras across edge servers;
* every tier is a contended resource: camera->edge LAN links and
  edge->cloud WAN links queue through
  :class:`~repro.net.contention.ContendedLink`, edge and cloud compute
  through :class:`~repro.dataflow.scheduler.ServiceStation`;
* the resulting :class:`FleetReport` adds what the single-engine evaluation
  cannot see — per-tier utilisation, peak queue depths, and end-to-end
  latency percentiles — alongside the familiar throughput/bytes totals.

Determinism: given the same job list, configuration and ``seed``, two runs
produce identical reports (see the seeding contract in :mod:`repro.rng`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import SystemConfig, resolve_worker_count
from ..dataflow.scheduler import EventScheduler, ServiceStation
from ..errors import ClusterError, ConfigurationError
from ..faults.injector import FleetFaultDriver
from ..faults.plan import FaultPlan
from ..faults.stats import FaultStats
from ..net.contention import ContendedLink
from ..net.link import NetworkLink
from ..perf import Stopwatch
from ..rng import make_rng

#: Latency percentiles reported by the fleet simulator.
LATENCY_PERCENTILES = (50, 95, 99)


def latency_percentiles_of(latencies: Sequence[float]) -> Dict[int, float]:
    """The report's latency percentiles over ``latencies``.

    An empty sample — a fleet whose admission control rejected every camera,
    or a service snapshot taken before any completion — yields ``nan`` at
    every percentile rather than raising, so report assembly stays
    well-formed (``np.percentile`` errors on empty input).
    """
    if len(latencies) == 0:
        return {percentile: float("nan") for percentile in LATENCY_PERCENTILES}
    return {percentile: float(np.percentile(latencies, percentile))
            for percentile in LATENCY_PERCENTILES}


def tier_report(stats, capacity: int, makespan: float) -> "TierReport":
    """Fold one station's statistics into a :class:`TierReport`."""
    utilisation = (stats.busy_seconds / (capacity * makespan)
                   if makespan > 0 else 0.0)
    return TierReport(busy_seconds=stats.busy_seconds,
                      utilisation=utilisation,
                      max_queue_depth=stats.max_queue_depth,
                      completed=stats.completed)


class PlacementPolicy(enum.Enum):
    """How cameras are sharded across the edge servers."""

    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    BANDWIDTH_AWARE = "bandwidth-aware"

    @classmethod
    def from_name(cls, name: "PlacementPolicy | str") -> "PlacementPolicy":
        """Coerce a policy or its string value into a :class:`PlacementPolicy`."""
        if isinstance(name, cls):
            return name
        for policy in cls:
            if policy.value == name or policy.name.lower() == str(name).lower():
                return policy
        raise ClusterError(
            f"unknown placement policy {name!r}; "
            f"expected one of {[policy.value for policy in cls]}")


@dataclass(frozen=True)
class CameraJob:
    """The planned cost of pushing one camera's footage through the fleet.

    Attributes:
        camera: Camera name (unique within the fleet).
        video: Name of the workload/video the camera serves.
        num_frames: Total frames in the footage (I and P).
        frames_for_inference: Frames that undergo NN inference.
        edge_seconds: Compute seconds charged to the camera's edge server.
        cloud_seconds: Compute seconds charged to the cloud tier.
        camera_edge_bytes: Bytes moved camera -> edge (LAN).
        edge_cloud_bytes: Bytes moved edge -> cloud (WAN).
        transfer_description: Label recorded on the WAN transfer.
        accuracy: Per-frame label accuracy (``nan`` when unlabelled).
    """

    camera: str
    video: str
    num_frames: int
    frames_for_inference: int
    edge_seconds: float
    cloud_seconds: float
    camera_edge_bytes: int
    edge_cloud_bytes: int
    transfer_description: str = ""
    accuracy: float = float("nan")

    def __post_init__(self) -> None:
        if self.num_frames < 0 or self.frames_for_inference < 0:
            raise ClusterError("frame counts must be >= 0")
        if self.edge_seconds < 0 or self.cloud_seconds < 0:
            raise ClusterError("compute seconds must be >= 0")
        if self.camera_edge_bytes < 0 or self.edge_cloud_bytes < 0:
            raise ClusterError("transfer bytes must be >= 0")


@dataclass
class JobOutcome:
    """Timeline of one camera job through the fleet.

    Attributes:
        job: The planned job.
        edge_index: Edge server the camera was placed on.
        start_seconds: Virtual time the camera started streaming.
        end_seconds: Virtual time the cloud finished its inference.
    """

    job: CameraJob
    edge_index: int
    start_seconds: float
    end_seconds: float = float("nan")

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency of the camera's footage through the fleet."""
        return self.end_seconds - self.start_seconds


class _JobRun:
    """Pipeline position of one in-flight camera job.

    Carried as the station/link payload so the fault driver can requeue
    a failed stage (``reenter[stage]``) on the job's current edge.
    """

    __slots__ = ("outcome", "stage", "reenter")

    def __init__(self, outcome: JobOutcome) -> None:
        self.outcome = outcome
        self.stage = "lan"
        self.reenter: Dict[str, Callable] = {}


@dataclass
class TierReport:
    """Utilisation and queueing of one fleet tier (or one station).

    Attributes:
        busy_seconds: Total service time consumed.
        utilisation: ``busy / (capacity * makespan)``.
        max_queue_depth: Peak number of waiting jobs.
        completed: Jobs served.
    """

    busy_seconds: float
    utilisation: float
    max_queue_depth: int
    completed: int


@dataclass
class FleetReport:
    """What one fleet simulation produced.

    Attributes:
        policy: Placement policy used.
        num_edge_servers: Edge servers in the fleet.
        num_cameras: Cameras served.
        makespan_seconds: Virtual time at which the last job completed.
        total_frames: Frames across all cameras.
        frames_for_inference: Frames that underwent NN inference.
        camera_edge_bytes: Total LAN bytes (camera -> edge).
        edge_cloud_bytes: Total WAN bytes (edge -> cloud).
        edge_busy_seconds: Total edge compute seconds across the fleet.
        cloud_busy_seconds: Total cloud compute seconds.
        wan_transfer_seconds: Total WAN transfer seconds.
        edge_tiers: Per-edge-server compute report.
        wan_tiers: Per-edge-server uplink report.
        cloud_tier: Cloud compute report.
        latency_percentiles: ``{50: ..., 95: ..., 99: ...}`` end-to-end
            camera latency percentiles in seconds.
        assignments: ``camera name -> edge index``.
        outcomes: Per-camera timelines.
        sim_wall_seconds: Real wall-clock time the simulation itself took
            (perf instrumentation; ``0`` for reports built by hand).
        events_processed: Discrete events fired during the simulation.
        faults: Fault/recovery counters, present only when a fault plan
            actually did something (``None`` on every fault-free run, so
            clean reports stay bit-identical to the seed's).
    """

    policy: PlacementPolicy
    num_edge_servers: int
    num_cameras: int
    makespan_seconds: float
    total_frames: int
    frames_for_inference: int
    camera_edge_bytes: int
    edge_cloud_bytes: int
    edge_busy_seconds: float
    cloud_busy_seconds: float
    wan_transfer_seconds: float
    edge_tiers: List[TierReport]
    wan_tiers: List[TierReport]
    cloud_tier: TierReport
    latency_percentiles: Dict[int, float]
    assignments: Dict[str, int]
    outcomes: List[JobOutcome] = field(default_factory=list)
    sim_wall_seconds: float = 0.0
    events_processed: int = 0
    faults: Optional[FaultStats] = None

    @property
    def events_per_second(self) -> float:
        """Scheduler event throughput of the simulation (perf metric)."""
        if self.sim_wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.sim_wall_seconds

    @property
    def aggregate_throughput_fps(self) -> float:
        """Fleet-wide frames per second over the makespan."""
        if self.makespan_seconds <= 0:
            # An empty fleet moved nothing in no time: 0 fps, not 0/0 = inf.
            return 0.0 if self.total_frames == 0 else float("inf")
        return self.total_frames / self.makespan_seconds

    @property
    def mean_edge_utilisation(self) -> float:
        """Average utilisation of the edge compute tier."""
        if not self.edge_tiers:
            return 0.0
        return sum(tier.utilisation for tier in self.edge_tiers) / len(self.edge_tiers)

    @property
    def max_wan_queue_depth(self) -> int:
        """Deepest uplink queue observed anywhere in the fleet."""
        return max((tier.max_queue_depth for tier in self.wan_tiers), default=0)

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view (used by sweeps and the example tables)."""
        row: Dict[str, float] = {
            "policy": self.policy.value,
            "num_edge_servers": float(self.num_edge_servers),
            "num_cameras": float(self.num_cameras),
            "makespan_seconds": self.makespan_seconds,
            "throughput_fps": self.aggregate_throughput_fps,
            "total_frames": float(self.total_frames),
            "frames_for_inference": float(self.frames_for_inference),
            "camera_edge_gb": self.camera_edge_bytes / 1e9,
            "edge_cloud_gb": self.edge_cloud_bytes / 1e9,
            "edge_busy_seconds": self.edge_busy_seconds,
            "cloud_busy_seconds": self.cloud_busy_seconds,
            "wan_transfer_seconds": self.wan_transfer_seconds,
            "mean_edge_utilisation": self.mean_edge_utilisation,
            "cloud_utilisation": self.cloud_tier.utilisation,
            "max_wan_queue_depth": float(self.max_wan_queue_depth),
            # sim_wall_seconds is intentionally omitted: as_dict() is the
            # deterministic view (same seed -> equal dicts); wall-clock perf
            # metrics are read off the report fields directly.
            "events_processed": float(self.events_processed),
        }
        for percentile, value in self.latency_percentiles.items():
            row[f"latency_p{percentile}_seconds"] = value
        return row

    def parity_mismatches(self, other: "FleetReport",
                          tolerance: float = 1e-6) -> List[str]:
        """Every way ``other`` differs from this report beyond ``tolerance``.

        This is the single definition of the multiprocess parity contract
        (used by the regression tests and ``examples/fleet_scaling.py``):
        it covers the flat ``as_dict`` metrics, per-tier statistics
        *including queue depths*, placements and per-job timelines.  An
        empty list means the reports are equal.
        """
        def close(a: float, b: float) -> bool:
            if np.isnan(a) or np.isnan(b):
                return np.isnan(a) and np.isnan(b)
            return abs(a - b) <= tolerance * max(1.0, abs(a))

        mismatches: List[str] = []
        left, right = self.as_dict(), other.as_dict()
        for key in left:
            if isinstance(left[key], str):
                equal = left[key] == right.get(key)
            else:
                equal = key in right and close(left[key], right[key])
            if not equal:
                mismatches.append(
                    f"{key}: {left[key]!r} != {right.get(key)!r}")
        if self.assignments != other.assignments:
            mismatches.append("assignments differ")
        tiers = [("edge", self.edge_tiers, other.edge_tiers),
                 ("wan", self.wan_tiers, other.wan_tiers),
                 ("cloud", [self.cloud_tier], [other.cloud_tier])]
        for label, mine, theirs in tiers:
            if len(mine) != len(theirs):
                mismatches.append(f"{label} tier count differs")
                continue
            for index, (tier_a, tier_b) in enumerate(zip(mine, theirs)):
                if not (close(tier_a.busy_seconds, tier_b.busy_seconds)
                        and close(tier_a.utilisation, tier_b.utilisation)
                        and tier_a.max_queue_depth == tier_b.max_queue_depth
                        and tier_a.completed == tier_b.completed):
                    mismatches.append(
                        f"{label} tier {index}: {tier_a} != {tier_b}")
        if len(self.outcomes) != len(other.outcomes):
            mismatches.append("outcome count differs")
        else:
            for outcome_a, outcome_b in zip(self.outcomes, other.outcomes):
                if not (outcome_a.edge_index == outcome_b.edge_index
                        and close(outcome_a.start_seconds,
                                  outcome_b.start_seconds)
                        and close(outcome_a.end_seconds,
                                  outcome_b.end_seconds)):
                    mismatches.append(
                        f"outcome {outcome_a.job.camera}: "
                        f"({outcome_a.start_seconds}, {outcome_a.end_seconds})"
                        f" != ({outcome_b.start_seconds}, "
                        f"{outcome_b.end_seconds})")
        # Fault/recovery counters are part of the parity contract too: a
        # report without them is an empty counter block, so fault-free
        # runs compare clean against each other.
        mine_faults = self.faults if self.faults is not None else FaultStats()
        their_faults = (other.faults if other.faults is not None
                        else FaultStats())
        mismatches.extend(mine_faults.mismatches(their_faults))
        return mismatches


class FleetOrchestrator:
    """Shards camera jobs over edge servers and simulates the fleet.

    Every job flows through four contended stages on one shared virtual
    clock: camera->edge LAN transfer, edge compute, edge->cloud WAN
    transfer, cloud compute.  Each edge server owns its LAN link, compute
    station and WAN uplink; the cloud tier is a single station whose worker
    count defaults to the number of edge servers (one NN serving slot per
    uplink).

    Args:
        jobs: Planned camera jobs (camera names must be unique).
        num_edge_servers: Edge servers to shard across.
        config: Bandwidths and latencies (defaults to the paper's).
        policy: Camera placement policy.
        edge_workers: Parallel compute slots per edge server.
        cloud_workers: Parallel compute slots in the cloud tier
            (default: ``num_edge_servers``).
        arrival_jitter_seconds: Upper bound of the per-camera start-time
            jitter; offsets are drawn deterministically from ``seed``.
        seed: Root seed for the arrival jitter (see :mod:`repro.rng`).
        fleet_workers: Worker processes executing the simulation (default:
            ``config.fleet_workers``).  ``1`` runs the original
            single-process event loop; larger values shard the per-edge
            pipelines across a process pool (see :mod:`repro.parallel`)
            and produce the same report.
        faults: Optional :class:`~repro.faults.FaultPlan` injected into
            the run (edge crashes fail unfinished jobs over to healthy
            edges; WAN windows degrade uplinks).  ``None`` — the default
            everywhere — schedules nothing and leaves the event sequence
            bit-identical to the seed.  Scheduler-injected faults force
            the single-process reference loop (failover moves work across
            edges, which the per-edge decomposition cannot express);
            worker kills are honoured by the multiprocess path.
    """

    def __init__(self, jobs: Sequence[CameraJob], num_edge_servers: int = 1,
                 config: Optional[SystemConfig] = None,
                 policy: "PlacementPolicy | str" = PlacementPolicy.ROUND_ROBIN,
                 edge_workers: int = 1, cloud_workers: Optional[int] = None,
                 arrival_jitter_seconds: float = 0.0,
                 seed: Optional[int] = None,
                 fleet_workers: Optional[int] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        # An empty job list is legal: admission control may reject every
        # camera, and the orchestrator must still produce a well-formed
        # (all-zero, nan-percentile) report rather than crash downstream.
        names = [job.camera for job in jobs]
        if len(set(names)) != len(names):
            raise ClusterError(f"camera names must be unique, got {names}")
        if num_edge_servers < 1:
            raise ClusterError("num_edge_servers must be >= 1")
        if edge_workers < 1:
            raise ClusterError("edge_workers must be >= 1")
        if arrival_jitter_seconds < 0:
            raise ClusterError("arrival_jitter_seconds must be >= 0")
        self.jobs = list(jobs)
        self.num_edge_servers = int(num_edge_servers)
        self.config = config or SystemConfig()
        self.policy = PlacementPolicy.from_name(policy)
        self.edge_workers = int(edge_workers)
        self.cloud_workers = (int(cloud_workers) if cloud_workers is not None
                              else self.num_edge_servers)
        if self.cloud_workers < 1:
            raise ClusterError("cloud_workers must be >= 1")
        self.arrival_jitter_seconds = float(arrival_jitter_seconds)
        self.seed = seed
        self.fault_plan = faults
        if faults is not None:
            faults.validate_for(self.num_edge_servers)
        try:
            self.fleet_workers = resolve_worker_count(
                int(fleet_workers if fleet_workers is not None
                    else self.config.fleet_workers), "fleet_workers")
        except ConfigurationError as error:
            raise ClusterError(str(error)) from error

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def assign(self) -> Dict[str, int]:
        """Shard the cameras over the edge servers under the policy."""
        if self.policy is PlacementPolicy.ROUND_ROBIN:
            return {job.camera: index % self.num_edge_servers
                    for index, job in enumerate(self.jobs)}
        estimate = self._make_load_estimator()
        loads = [0.0] * self.num_edge_servers
        assignments: Dict[str, int] = {}
        for job in self.jobs:
            target = min(range(self.num_edge_servers), key=lambda i: loads[i])
            assignments[job.camera] = target
            loads[target] += estimate(job)
        return assignments

    def _make_load_estimator(self):
        """Estimator of the edge-local time a job occupies its server."""
        if self.policy is PlacementPolicy.LEAST_LOADED:
            return lambda job: job.edge_seconds
        # Bandwidth-aware: the LAN ingest and the WAN upload occupy the
        # server's links, so a camera with heavy transfers loads an edge even
        # when its compute footprint is small.
        lan = NetworkLink("estimate-lan", self.config.camera_edge_bandwidth_mbps,
                          self.config.camera_edge_latency_ms)
        wan = NetworkLink("estimate-wan", self.config.edge_cloud_bandwidth_mbps,
                          self.config.edge_cloud_latency_ms)
        return lambda job: (job.edge_seconds
                            + lan.transfer_seconds(job.camera_edge_bytes)
                            + wan.transfer_seconds(job.edge_cloud_bytes))

    def _arrival_offsets(self) -> List[float]:
        if self.arrival_jitter_seconds == 0:
            return [0.0] * len(self.jobs)
        rng = make_rng(self.seed, "fleet", "arrivals")
        return [float(value) for value in
                rng.uniform(0.0, self.arrival_jitter_seconds, size=len(self.jobs))]

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self) -> FleetReport:
        """Simulate the fleet and return its report.

        With ``fleet_workers > 1`` the per-edge pipelines are simulated in
        worker processes and merged deterministically (see
        :func:`repro.parallel.run_parallel`); the report is the same either
        way, the single-process path below remains the reference.
        """
        if self.fleet_workers > 1 and (
                self.fault_plan is None
                or not self.fault_plan.has_scheduler_faults):
            from ..parallel import run_parallel
            return run_parallel(self, self.fleet_workers)
        return self._run_single_process()

    def _run_single_process(self) -> FleetReport:
        """The reference single-process event loop (``fleet_workers=1``)."""
        watch = Stopwatch().start()
        scheduler = EventScheduler()
        lan_links: List[ContendedLink] = []
        edge_stations: List[ServiceStation] = []
        wan_links: List[ContendedLink] = []
        for index in range(self.num_edge_servers):
            lan_links.append(ContendedLink(scheduler, NetworkLink(
                name=f"camera-edge:{index}",
                bandwidth_mbps=self.config.camera_edge_bandwidth_mbps,
                latency_ms=self.config.camera_edge_latency_ms)))
            edge_stations.append(ServiceStation(
                scheduler, f"edge:{index}", capacity=self.edge_workers))
            wan_links.append(ContendedLink(scheduler, NetworkLink(
                name=f"edge-cloud:{index}",
                bandwidth_mbps=self.config.edge_cloud_bandwidth_mbps,
                latency_ms=self.config.edge_cloud_latency_ms)))
        cloud_station = ServiceStation(scheduler, "cloud",
                                       capacity=self.cloud_workers)
        driver: Optional[FleetFaultDriver] = None
        if (self.fault_plan is not None
                and self.fault_plan.has_scheduler_faults):
            driver = FleetFaultDriver(scheduler, self.fault_plan,
                                      self.num_edge_servers, lan_links,
                                      edge_stations, wan_links)

        assignments = self.assign()
        offsets = self._arrival_offsets()
        outcomes: List[JobOutcome] = []
        for job, offset in zip(self.jobs, offsets):
            edge_index = assignments[job.camera]
            outcome = JobOutcome(job=job, edge_index=edge_index,
                                 start_seconds=offset)
            outcomes.append(outcome)
            self._submit_job(scheduler, outcome, lan_links, edge_stations,
                             wan_links, cloud_station, driver)
        scheduler.run()

        # Report the placements jobs actually ran under: failover rewrites
        # ``outcome.edge_index`` mid-run, and the report must account every
        # failed-over job at its final edge.  Fault-free this rebuilds the
        # planner's dict verbatim (outcomes follow job order).
        assignments = {outcome.job.camera: outcome.edge_index
                       for outcome in outcomes}
        makespan = max((outcome.end_seconds for outcome in outcomes),
                       default=0.0)
        latencies = sorted(outcome.latency_seconds for outcome in outcomes)
        percentiles = latency_percentiles_of(latencies)
        edge_tiers = [self._tier(station.stats, station.capacity, makespan)
                      for station in edge_stations]
        wan_tiers = [self._tier(link.stats, 1, makespan) for link in wan_links]
        cloud_tier = self._tier(cloud_station.stats, cloud_station.capacity,
                                makespan)
        return FleetReport(
            policy=self.policy,
            num_edge_servers=self.num_edge_servers,
            num_cameras=len(self.jobs),
            makespan_seconds=makespan,
            total_frames=sum(job.num_frames for job in self.jobs),
            frames_for_inference=sum(job.frames_for_inference
                                     for job in self.jobs),
            camera_edge_bytes=sum(link.link.total_bytes for link in lan_links),
            edge_cloud_bytes=sum(link.link.total_bytes for link in wan_links),
            edge_busy_seconds=sum(tier.busy_seconds for tier in edge_tiers),
            cloud_busy_seconds=cloud_tier.busy_seconds,
            wan_transfer_seconds=sum(link.link.total_seconds
                                     for link in wan_links),
            edge_tiers=edge_tiers,
            wan_tiers=wan_tiers,
            cloud_tier=cloud_tier,
            latency_percentiles=percentiles,
            assignments=assignments,
            outcomes=outcomes,
            sim_wall_seconds=watch.stop(),
            events_processed=scheduler.events_processed,
            faults=(driver.stats if driver is not None
                    and driver.stats.has_activity() else None),
        )

    def _submit_job(self, scheduler: EventScheduler, outcome: JobOutcome,
                    lan_links: Sequence[ContendedLink],
                    edge_stations: Sequence[ServiceStation],
                    wan_links: Sequence[ContendedLink],
                    cloud: ServiceStation,
                    driver: "Optional[FleetFaultDriver]" = None) -> None:
        """Chain one job through LAN -> edge -> WAN -> cloud.

        Every stage entry indexes the per-edge resources through
        ``outcome.edge_index`` *at fire time*, so a job failed over by
        the fault driver (which rewrites the outcome's edge) lands on
        its new edge — whether the stage is a requeue of failed work or
        an ingest that had not even started when the edge died.
        Fault-free this makes exactly the same submissions in the same
        order as always.
        """
        job = outcome.job
        run = _JobRun(outcome)
        on_fail = driver.on_job_failed if driver is not None else None
        if driver is not None:
            driver.register(run)

        def _finish(_: object) -> None:
            outcome.end_seconds = scheduler.now

        def _enter_cloud(_: object) -> None:
            run.stage = "cloud"
            cloud.submit(job.cloud_seconds, on_complete=_finish)

        def _enter_wan(_: object) -> None:
            run.stage = "wan"
            wan_links[outcome.edge_index].submit(
                job.edge_cloud_bytes,
                description=job.transfer_description or job.camera,
                on_complete=_enter_cloud, payload=run, on_fail=on_fail)

        def _enter_edge(_: object) -> None:
            run.stage = "edge"
            edge_stations[outcome.edge_index].submit(
                job.edge_seconds, on_complete=_enter_wan, payload=run,
                on_fail=on_fail)

        def _ingest(_: object = None) -> None:
            run.stage = "lan"
            lan_links[outcome.edge_index].submit(
                job.camera_edge_bytes,
                description=f"ingest:{job.camera}",
                on_complete=_enter_edge, payload=run, on_fail=on_fail)

        run.reenter = {"lan": _ingest, "edge": _enter_edge,
                       "wan": _enter_wan, "cloud": _enter_cloud}
        scheduler.schedule_at(outcome.start_seconds, _ingest)

    # Kept as a method alias so the multiprocess merge and subclasses keep
    # one definition of tier folding (the logic lives in `tier_report`).
    _tier = staticmethod(tier_report)


def sweep_edge_counts(jobs: Sequence[CameraJob],
                      edge_counts: Sequence[int],
                      config: Optional[SystemConfig] = None,
                      policy: "PlacementPolicy | str" = PlacementPolicy.LEAST_LOADED,
                      arrival_jitter_seconds: float = 0.0,
                      seed: Optional[int] = None) -> Dict[int, FleetReport]:
    """Run the same fleet over several edge-server counts.

    Returns:
        ``{num_edge_servers: report}`` in ascending edge-count order.
    """
    reports: Dict[int, FleetReport] = {}
    for count in sorted(set(int(count) for count in edge_counts)):
        orchestrator = FleetOrchestrator(
            jobs, num_edge_servers=count, config=config, policy=policy,
            arrival_jitter_seconds=arrival_jitter_seconds, seed=seed)
        reports[count] = orchestrator.run()
    return reports
