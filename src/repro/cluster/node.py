"""Compute nodes of the simulated 3-tier deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterError


@dataclass
class ComputeNode:
    """A compute device (camera SoC, edge desktop, cloud server).

    Attributes:
        name: Node name.
        role: ``"camera"``, ``"edge"`` or ``"cloud"``.
        speed_factor: Relative CPU speed used to scale the cost model
            (``1.0`` is the paper's edge desktop).
        memory_gb: Installed memory (informational; the paper's edge has
            12 GB and the cloud 32 GB).
        busy_seconds: Accumulated simulated compute time.
    """

    name: str
    role: str
    speed_factor: float = 1.0
    memory_gb: float = 12.0
    busy_seconds: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.role not in ("camera", "edge", "cloud"):
            raise ClusterError(f"unknown node role {self.role!r}")
        if self.speed_factor <= 0:
            raise ClusterError("speed_factor must be positive")
        if self.memory_gb <= 0:
            raise ClusterError("memory_gb must be positive")

    def charge(self, seconds: float) -> float:
        """Add simulated compute time to the node and return it."""
        if seconds < 0:
            raise ClusterError("cannot charge negative time")
        self.busy_seconds += seconds
        return seconds

    def reset(self) -> None:
        """Clear the accumulated busy time."""
        self.busy_seconds = 0.0


def default_edge_node(name: str = "edge-0") -> ComputeNode:
    """The paper's edge desktop (Intel i7-5600, 12 GB)."""
    return ComputeNode(name=name, role="edge", speed_factor=1.0, memory_gb=12.0)


def default_cloud_node(name: str = "cloud-0") -> ComputeNode:
    """The paper's cloud server (Intel Xeon E5-1603, 32 GB)."""
    return ComputeNode(name=name, role="cloud", speed_factor=2.2, memory_gb=32.0)


def default_camera_node(name: str) -> ComputeNode:
    """A camera SoC with a hardware encoder and little general compute."""
    return ComputeNode(name=name, role="camera", speed_factor=0.25, memory_gb=1.0)
