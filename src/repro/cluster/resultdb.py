"""Result database of per-frame object labels.

"The cloud engine ... stores the result in a database.  The results are in
the form of a list of tuples where each tuple consists of frame ID and the
object names that appear in the frame." (Section III)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ClusterError
from ..video.events import LabelSet, as_label_set


@dataclass(frozen=True)
class ResultRecord:
    """One detection result row.

    Attributes:
        video_name: Source video.
        frame_index: Frame the labels belong to.
        labels: Detected object labels.
    """

    video_name: str
    frame_index: int
    labels: LabelSet


class ResultDatabase:
    """Append-only store of ``(video, frame, labels)`` detection results."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, int], ResultRecord] = {}

    def record(self, video_name: str, frame_index: int,
               labels: Iterable[str]) -> ResultRecord:
        """Insert (or overwrite) the labels of one frame."""
        if frame_index < 0:
            raise ClusterError("frame_index must be >= 0")
        row = ResultRecord(video_name=video_name, frame_index=int(frame_index),
                           labels=as_label_set(labels))
        self._records[(video_name, int(frame_index))] = row
        return row

    def labels_for(self, video_name: str, frame_index: int) -> Optional[LabelSet]:
        """Labels recorded for a frame, or ``None`` when absent."""
        row = self._records.get((video_name, frame_index))
        return row.labels if row is not None else None

    def records_for_video(self, video_name: str) -> List[ResultRecord]:
        """All rows of one video, ordered by frame index."""
        rows = [row for (name, _), row in self._records.items() if name == video_name]
        return sorted(rows, key=lambda row: row.frame_index)

    def frames_with_label(self, video_name: str, label: str) -> List[int]:
        """Frame indices of a video where ``label`` was detected."""
        return [row.frame_index for row in self.records_for_video(video_name)
                if label in row.labels]

    def video_names(self) -> List[str]:
        """Names of all videos with at least one recorded frame."""
        return sorted({name for name, _ in self._records})

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop every record."""
        self._records.clear()
