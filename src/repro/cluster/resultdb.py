"""Result database of per-frame object labels.

"The cloud engine ... stores the result in a database.  The results are in
the form of a list of tuples where each tuple consists of frame ID and the
object names that appear in the frame." (Section III)

Two implementations share the query surface:

* :class:`ResultDatabase` — the original in-memory dict, still the default
  for single-process simulations and tests;
* :class:`SQLiteResultStore` — a persistent, multi-process-safe store
  (WAL journal, busy-waiting writers, one transaction per mutation) that
  the parallel fleet can use as a shared sink.  Every row carries a
  sha256 content hash over its canonical encoding, so read-back can prove
  the stored results are exactly what was written
  (:meth:`SQLiteResultStore.verify_integrity`), and whole
  :class:`~repro.cluster.fleet.FleetReport` summaries round-trip through
  :meth:`SQLiteResultStore.store_fleet_report` /
  :meth:`SQLiteResultStore.report_summary`.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..errors import ClusterError
from ..video.events import LabelSet, as_label_set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only.
    from .fleet import FleetReport


@dataclass(frozen=True)
class ResultRecord:
    """One detection result row.

    Attributes:
        video_name: Source video.
        frame_index: Frame the labels belong to.
        labels: Detected object labels.
    """

    video_name: str
    frame_index: int
    labels: LabelSet


class ResultDatabase:
    """Append-only store of ``(video, frame, labels)`` detection results."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, int], ResultRecord] = {}

    def record(self, video_name: str, frame_index: int,
               labels: Iterable[str]) -> ResultRecord:
        """Insert (or overwrite) the labels of one frame."""
        if frame_index < 0:
            raise ClusterError("frame_index must be >= 0")
        row = ResultRecord(video_name=video_name, frame_index=int(frame_index),
                           labels=as_label_set(labels))
        self._records[(video_name, int(frame_index))] = row
        return row

    def labels_for(self, video_name: str, frame_index: int) -> Optional[LabelSet]:
        """Labels recorded for a frame, or ``None`` when absent."""
        row = self._records.get((video_name, frame_index))
        return row.labels if row is not None else None

    def records_for_video(self, video_name: str) -> List[ResultRecord]:
        """All rows of one video, ordered by frame index."""
        rows = [row for (name, _), row in self._records.items() if name == video_name]
        return sorted(rows, key=lambda row: row.frame_index)

    def frames_with_label(self, video_name: str, label: str) -> List[int]:
        """Frame indices of a video where ``label`` was detected."""
        return [row.frame_index for row in self.records_for_video(video_name)
                if label in row.labels]

    def video_names(self) -> List[str]:
        """Names of all videos with at least one recorded frame."""
        return sorted({name for name, _ in self._records})

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop every record."""
        self._records.clear()


# --------------------------------------------------------------------- #
# Persistent store
# --------------------------------------------------------------------- #

#: How long a writer busy-waits on a locked database before giving up.
#: SQLite serialises writers; under WAL a blocked writer spins here instead
#: of surfacing ``database is locked`` to the fleet.
_BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    video_name  TEXT    NOT NULL,
    frame_index INTEGER NOT NULL,
    labels      TEXT    NOT NULL,
    content_hash TEXT   NOT NULL,
    PRIMARY KEY (video_name, frame_index)
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    summary     TEXT NOT NULL,
    content_hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS outcomes (
    run_id        TEXT    NOT NULL,
    camera        TEXT    NOT NULL,
    edge_index    INTEGER NOT NULL,
    start_seconds REAL    NOT NULL,
    end_seconds   REAL    NOT NULL,
    content_hash  TEXT    NOT NULL,
    PRIMARY KEY (run_id, camera)
);
"""


def _canonical_labels(labels: Iterable[str]) -> str:
    """The canonical stored encoding of a label set (sorted JSON list)."""
    return json.dumps(sorted(as_label_set(labels)))


def _row_hash(*fields: object) -> str:
    """sha256 over the canonical field encoding — the row's content hash."""
    payload = "\x1f".join(repr(field) for field in fields)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SQLiteResultStore:
    """Persistent, multi-process-safe result store.

    Mirrors the :class:`ResultDatabase` query surface over a SQLite file
    so concurrent fleet processes share one sink: the journal runs in WAL
    mode (readers never block the writer), every mutation is one
    transaction, and blocked writers busy-wait instead of failing — two
    processes recording results for the same run interleave at row
    granularity and never corrupt each other's rows.  Every row stores a
    sha256 hash of its canonical content, checked on read-back by
    :meth:`verify_integrity`.

    Args:
        path: Database file (created on first use).  ``":memory:"`` gives
            a private in-memory database (handy in tests, obviously not
            shared across processes).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._connection = sqlite3.connect(path, timeout=_BUSY_TIMEOUT_MS / 1000.0)
        self._connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
        # WAL persists in the database file; setting it is idempotent.  It
        # is unsupported (and unnecessary) for in-memory databases.
        if path != ":memory:":
            self._connection.execute("PRAGMA journal_mode = WAL")
        self._connection.execute("PRAGMA synchronous = NORMAL")
        with self._connection:
            self._connection.executescript(_SCHEMA)

    # -- lifecycle ----------------------------------------------------- #

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._connection.close()

    def __enter__(self) -> "SQLiteResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- ResultDatabase-compatible surface ----------------------------- #

    def record(self, video_name: str, frame_index: int,
               labels: Iterable[str]) -> ResultRecord:
        """Insert (or overwrite) the labels of one frame, atomically."""
        if frame_index < 0:
            raise ClusterError("frame_index must be >= 0")
        label_set = as_label_set(labels)
        encoded = _canonical_labels(label_set)
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO results "
                "(video_name, frame_index, labels, content_hash) "
                "VALUES (?, ?, ?, ?)",
                (video_name, int(frame_index), encoded,
                 _row_hash(video_name, int(frame_index), encoded)))
        return ResultRecord(video_name=video_name,
                            frame_index=int(frame_index), labels=label_set)

    def labels_for(self, video_name: str,
                   frame_index: int) -> Optional[LabelSet]:
        """Labels recorded for a frame, or ``None`` when absent."""
        row = self._connection.execute(
            "SELECT labels FROM results "
            "WHERE video_name = ? AND frame_index = ?",
            (video_name, frame_index)).fetchone()
        return as_label_set(json.loads(row[0])) if row is not None else None

    def records_for_video(self, video_name: str) -> List[ResultRecord]:
        """All rows of one video, ordered by frame index."""
        rows = self._connection.execute(
            "SELECT frame_index, labels FROM results "
            "WHERE video_name = ? ORDER BY frame_index",
            (video_name,)).fetchall()
        return [ResultRecord(video_name=video_name, frame_index=int(frame),
                             labels=as_label_set(json.loads(labels)))
                for frame, labels in rows]

    def frames_with_label(self, video_name: str, label: str) -> List[int]:
        """Frame indices of a video where ``label`` was detected."""
        return [row.frame_index for row in self.records_for_video(video_name)
                if label in row.labels]

    def video_names(self) -> List[str]:
        """Names of all videos with at least one recorded frame."""
        rows = self._connection.execute(
            "SELECT DISTINCT video_name FROM results ORDER BY video_name")
        return [name for (name,) in rows]

    def __len__(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def clear(self) -> None:
        """Drop every record, run summary and outcome."""
        with self._connection:
            self._connection.execute("DELETE FROM results")
            self._connection.execute("DELETE FROM runs")
            self._connection.execute("DELETE FROM outcomes")

    # -- fleet-report round trip --------------------------------------- #

    def store_fleet_report(self, run_id: str,
                           report: "FleetReport") -> str:
        """Persist a fleet run's summary and per-camera outcomes.

        Stores the report's deterministic flat view (``as_dict``) plus the
        placement assignments as the run summary, and one row per camera
        outcome — everything the report-reading tools consume.  Re-storing
        the same ``run_id`` replaces the run atomically.

        Returns:
            The run summary's content hash.
        """
        summary = {
            "metrics": report.as_dict(),
            "assignments": dict(sorted(report.assignments.items())),
        }
        encoded = json.dumps(summary, sort_keys=True)
        run_hash = _row_hash(run_id, encoded)
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, summary, content_hash) "
                "VALUES (?, ?, ?)", (run_id, encoded, run_hash))
            self._connection.execute("DELETE FROM outcomes WHERE run_id = ?",
                                     (run_id,))
            for outcome in report.outcomes:
                camera = outcome.job.camera
                fields = (run_id, camera, int(outcome.edge_index),
                          float(outcome.start_seconds),
                          float(outcome.end_seconds))
                self._connection.execute(
                    "INSERT INTO outcomes (run_id, camera, edge_index, "
                    "start_seconds, end_seconds, content_hash) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    fields + (_row_hash(*fields),))
        return run_hash

    def run_ids(self) -> List[str]:
        """All stored run ids, sorted."""
        rows = self._connection.execute(
            "SELECT run_id FROM runs ORDER BY run_id")
        return [run_id for (run_id,) in rows]

    def report_summary(self, run_id: str) -> Optional[Dict[str, object]]:
        """The stored ``{"metrics": ..., "assignments": ...}`` of a run."""
        row = self._connection.execute(
            "SELECT summary FROM runs WHERE run_id = ?", (run_id,)).fetchone()
        return json.loads(row[0]) if row is not None else None

    def outcomes_for_run(self, run_id: str
                         ) -> List[Tuple[str, int, float, float]]:
        """``(camera, edge_index, start, end)`` rows of a run, by camera."""
        rows = self._connection.execute(
            "SELECT camera, edge_index, start_seconds, end_seconds "
            "FROM outcomes WHERE run_id = ? ORDER BY camera",
            (run_id,)).fetchall()
        return [(str(camera), int(edge), float(start), float(end))
                for camera, edge, start, end in rows]

    # -- integrity ----------------------------------------------------- #

    def verify_integrity(self) -> List[str]:
        """Recompute every row's content hash and report mismatches.

        Returns:
            Human-readable descriptions of tampered/corrupted rows (empty
            when the store is intact).
        """
        problems: List[str] = []
        for video, frame, labels, stored in self._connection.execute(
                "SELECT video_name, frame_index, labels, content_hash "
                "FROM results"):
            if _row_hash(video, int(frame), labels) != stored:
                problems.append(f"results row ({video!r}, {frame}) "
                                f"fails its content hash")
        for run_id, summary, stored in self._connection.execute(
                "SELECT run_id, summary, content_hash FROM runs"):
            if _row_hash(run_id, summary) != stored:
                problems.append(f"runs row {run_id!r} fails its content hash")
        for row in self._connection.execute(
                "SELECT run_id, camera, edge_index, start_seconds, "
                "end_seconds, content_hash FROM outcomes"):
            fields: Sequence[object] = (str(row[0]), str(row[1]), int(row[2]),
                                        float(row[3]), float(row[4]))
            if _row_hash(*fields) != row[5]:
                problems.append(f"outcomes row ({row[0]!r}, {row[1]!r}) "
                                f"fails its content hash")
        return problems
