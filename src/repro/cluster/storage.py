"""Edge storage of semantically encoded videos.

The paper keeps the full semantically encoded video (I and P frames) in the
edge server's storage so that later, deeper analysis (tracking, person
identification) can seek directly to the GOP of an event.  This module is
that store: encoded videos indexed by name, with size accounting and
event-aligned retrieval helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..codec.bitstream import EncodedFrame, EncodedVideo
from ..errors import ClusterError


class EdgeStorage:
    """In-memory store of encoded videos held at the edge.

    Args:
        capacity_bytes: Optional storage capacity; storing beyond it raises,
            which models the paper's stated assumption that "the edge
            location has access to non-trivial storage capacity".
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ClusterError("capacity_bytes must be positive when given")
        self.capacity_bytes = capacity_bytes
        self._videos: Dict[str, EncodedVideo] = {}

    def store(self, encoded: EncodedVideo) -> None:
        """Store an encoded video under its metadata name."""
        name = encoded.metadata.name
        projected = self.used_bytes - self._size_of(name) + encoded.total_size_bytes
        if self.capacity_bytes is not None and projected > self.capacity_bytes:
            raise ClusterError(
                f"storing {name!r} ({encoded.total_size_bytes} B) exceeds the edge "
                f"storage capacity of {self.capacity_bytes} B")
        self._videos[name] = encoded

    def _size_of(self, name: str) -> int:
        video = self._videos.get(name)
        return video.total_size_bytes if video is not None else 0

    def retrieve(self, name: str) -> EncodedVideo:
        """Fetch a stored video by name."""
        try:
            return self._videos[name]
        except KeyError as exc:
            raise ClusterError(f"no stored video named {name!r}") from exc

    def discard(self, name: str) -> None:
        """Remove a stored video."""
        if name not in self._videos:
            raise ClusterError(f"no stored video named {name!r}")
        del self._videos[name]

    def __contains__(self, name: str) -> bool:
        return name in self._videos

    @property
    def video_names(self) -> List[str]:
        """Names of all stored videos."""
        return sorted(self._videos)

    @property
    def used_bytes(self) -> int:
        """Total encoded bytes currently stored."""
        return sum(video.total_size_bytes for video in self._videos.values())

    def gop_for_event(self, name: str, frame_index: int
                      ) -> Tuple[int, List[EncodedFrame]]:
        """Return the GOP containing ``frame_index`` of a stored video.

        This is the "quickly seek the exact event/GOP" use case of Section IV:
        because the event starts at an I-frame, deeper analysis decodes only
        the frames of that GOP.

        Returns:
            ``(gop_start_index, frames_of_the_gop)``.
        """
        video = self.retrieve(name)
        if not 0 <= frame_index < video.num_frames:
            raise ClusterError(
                f"frame index {frame_index} out of range for video {name!r}")
        start = frame_index
        while start > 0 and not video.frames[start].is_keyframe:
            start -= 1
        stop = frame_index + 1
        while stop < video.num_frames and not video.frames[stop].is_keyframe:
            stop += 1
        return start, video.frames[start:stop]
