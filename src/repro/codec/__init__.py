"""The semantic video codec substrate.

This package implements the video-coding machinery SiEVE tunes and exploits:
block transforms, motion estimation, scene-cut analysis, GOP control, I/P
encoding, a metadata-indexed container, and the I-frame seeker.
"""

from .bitstream import (EncodedFrame, EncodedVideo, FrameIndexEntry,
                        read_frame_index)
from .blocks import (DEFAULT_BLOCK_SIZE, block_grid, block_means, from_blocks,
                     pad_plane, to_blocks)
from .decoder import VideoDecoder, decode_video
from .encoder import VideoEncoder, analyze_video, encode_video
from .entropy import decode_blocks, encode_blocks, encoded_size_bytes
from .gop import (DEFAULT_GOP_SIZE, DEFAULT_PARAMETERS, DEFAULT_SCENECUT,
                  EncoderParameters, KeyframePlacer, StreamingKeyframePlacer,
                  filtering_rate, gop_lengths, sampling_fraction)
from .iframe_seeker import (IFrameSeeker, SeekResult, seek_keyframes,
                            select_events_from_keyframes)
from .jpeg import decode_image, encode_image, estimate_encoded_size, roundtrip_psnr
from .motion import MotionField, estimate_motion, motion_compensate
from .scenecut import (FrameActivity, SceneCutAnalyzer, is_scenecut,
                       scenecut_score_threshold)
from .transform import (dct2_blocks, idct2_blocks, quantisation_matrix,
                        quantise_blocks, dequantise_blocks)

__all__ = [
    "EncodedFrame", "EncodedVideo", "FrameIndexEntry", "read_frame_index",
    "DEFAULT_BLOCK_SIZE", "block_grid", "block_means", "from_blocks",
    "pad_plane", "to_blocks",
    "VideoDecoder", "decode_video",
    "VideoEncoder", "analyze_video", "encode_video",
    "decode_blocks", "encode_blocks", "encoded_size_bytes",
    "DEFAULT_GOP_SIZE", "DEFAULT_PARAMETERS", "DEFAULT_SCENECUT",
    "EncoderParameters", "KeyframePlacer", "StreamingKeyframePlacer",
    "filtering_rate", "gop_lengths", "sampling_fraction",
    "IFrameSeeker", "SeekResult", "seek_keyframes", "select_events_from_keyframes",
    "decode_image", "encode_image", "estimate_encoded_size", "roundtrip_psnr",
    "MotionField", "estimate_motion", "motion_compensate",
    "FrameActivity", "SceneCutAnalyzer", "is_scenecut", "scenecut_score_threshold",
    "dct2_blocks", "idct2_blocks", "quantisation_matrix", "quantise_blocks",
    "dequantise_blocks",
]
