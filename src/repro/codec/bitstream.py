"""Encoded-video container format.

The container mirrors the property of real video containers (MP4/MKV + H.264)
that SiEVE's I-frame seeker exploits: *frame type and size live in metadata
that can be read without touching, let alone decoding, the frame payloads.*

Layout of a serialised container::

    +---------+----------------+---------------------+------------------+
    | header  | JSON metadata  | frame index table   | frame payloads   |
    +---------+----------------+---------------------+------------------+

* header: magic, version, metadata length, frame count;
* metadata: video name/resolution/fps plus the encoder parameters;
* index table: one fixed-size record per frame — frame type, payload offset,
  payload size;
* payloads: the per-frame encoded bytes (may be empty when the video was
  encoded in size-only mode).

:func:`read_frame_index` parses only the header and the index table, which is
exactly what the I-frame seeker does.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import BitstreamError, ConfigurationError
from ..video.frame import FrameType, Resolution
from ..video.raw_video import VideoMetadata
from .gop import EncoderParameters

_MAGIC = b"SIEV"
_VERSION = 1
_HEADER = struct.Struct(">4sBII")          # magic, version, metadata len, num frames
_INDEX_RECORD = struct.Struct(">BQI")      # frame type, payload offset, payload size

_FRAME_TYPE_CODES = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}
_CODE_FRAME_TYPES = {code: frame_type for frame_type, code in _FRAME_TYPE_CODES.items()}


@dataclass
class EncodedFrame:
    """One encoded picture.

    Attributes:
        index: Frame index in presentation order.
        frame_type: I or P.
        size_bytes: Encoded payload size.  Always populated, even when the
            payload itself was not materialised (size-only encoding).
        payload: The encoded bytes, or ``None`` in size-only mode.
        novel_block_fraction: The scene-cut novelty score recorded by the
            encoder (useful for diagnostics and ablations).
    """

    index: int
    frame_type: FrameType
    size_bytes: int
    payload: Optional[bytes] = None
    novel_block_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("frame index must be >= 0")
        if self.size_bytes < 0:
            raise ConfigurationError("size_bytes must be >= 0")
        if self.payload is not None and len(self.payload) != self.size_bytes:
            raise ConfigurationError(
                f"payload length {len(self.payload)} != size_bytes {self.size_bytes}")

    @property
    def is_keyframe(self) -> bool:
        """Whether this is an independently decodable I-frame."""
        return self.frame_type is FrameType.I

    @property
    def has_payload(self) -> bool:
        """Whether the encoded bytes were materialised."""
        return self.payload is not None


@dataclass
class FrameIndexEntry:
    """Metadata-only view of one frame, as read by the I-frame seeker."""

    index: int
    frame_type: FrameType
    payload_offset: int
    size_bytes: int

    @property
    def is_keyframe(self) -> bool:
        """Whether the entry describes an I-frame."""
        return self.frame_type is FrameType.I


class EncodedVideo:
    """A fully encoded video: metadata, encoder parameters and frames."""

    def __init__(self, metadata: VideoMetadata, parameters: EncoderParameters,
                 frames: Sequence[EncodedFrame],
                 analysis: Optional[dict] = None) -> None:
        frames = list(frames)
        if len(frames) != metadata.num_frames:
            raise ConfigurationError(
                f"metadata says {metadata.num_frames} frames, got {len(frames)}")
        for position, frame in enumerate(frames):
            if frame.index != position:
                raise ConfigurationError(
                    f"frame at position {position} has index {frame.index}")
        if frames and frames[0].frame_type is not FrameType.I:
            raise ConfigurationError("the first frame of an encoded video must be an I-frame")
        self.metadata = metadata
        self.parameters = parameters
        self.frames = frames
        self.analysis = dict(analysis or {})

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_frames(self) -> int:
        """Total number of frames."""
        return len(self.frames)

    @property
    def keyframe_indices(self) -> List[int]:
        """Indices of all I-frames."""
        return [frame.index for frame in self.frames if frame.is_keyframe]

    @property
    def num_keyframes(self) -> int:
        """Number of I-frames."""
        return len(self.keyframe_indices)

    @property
    def sampling_fraction(self) -> float:
        """Fraction of frames that are I-frames (paper's sample size *SS*)."""
        if not self.frames:
            return 0.0
        return self.num_keyframes / len(self.frames)

    @property
    def total_size_bytes(self) -> int:
        """Total encoded size (payloads only, container overhead excluded)."""
        return sum(frame.size_bytes for frame in self.frames)

    @property
    def keyframe_size_bytes(self) -> int:
        """Total size of the I-frame payloads."""
        return sum(frame.size_bytes for frame in self.frames if frame.is_keyframe)

    def frame_types(self) -> List[FrameType]:
        """Frame types in presentation order."""
        return [frame.frame_type for frame in self.frames]

    def iter_keyframes(self) -> Iterator[EncodedFrame]:
        """Iterate over I-frames only."""
        return (frame for frame in self.frames if frame.is_keyframe)

    def size_summary(self) -> Dict[str, float]:
        """Summary of the encoded sizes (used by the data-transfer experiment)."""
        return {
            "total_bytes": float(self.total_size_bytes),
            "keyframe_bytes": float(self.keyframe_size_bytes),
            "num_frames": float(self.num_frames),
            "num_keyframes": float(self.num_keyframes),
            "sampling_fraction": self.sampling_fraction,
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def _metadata_json(self) -> bytes:
        payload = {
            "name": self.metadata.name,
            "width": self.metadata.resolution.width,
            "height": self.metadata.resolution.height,
            "fps": self.metadata.fps,
            "num_frames": self.metadata.num_frames,
            "parameters": {
                "gop_size": self.parameters.gop_size,
                "scenecut_threshold": self.parameters.scenecut_threshold,
                "min_gop_size": self.parameters.min_gop_size,
                "quality": self.parameters.quality,
                "block_size": self.parameters.block_size,
                "search_radius": self.parameters.search_radius,
            },
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def serialize(self) -> bytes:
        """Serialise the container (frames without payloads store empty bytes)."""
        metadata_blob = self._metadata_json()
        header = _HEADER.pack(_MAGIC, _VERSION, len(metadata_blob), len(self.frames))
        index_records = []
        payloads = []
        offset = 0
        for frame in self.frames:
            payload = frame.payload if frame.payload is not None else b""
            index_records.append(_INDEX_RECORD.pack(
                _FRAME_TYPE_CODES[frame.frame_type], offset, len(payload)))
            payloads.append(payload)
            offset += len(payload)
        return b"".join([header, metadata_blob, *index_records, *payloads])

    @classmethod
    def deserialize(cls, data: bytes) -> "EncodedVideo":
        """Parse a serialised container back into an :class:`EncodedVideo`."""
        metadata, parameters, entries, payload_base = _parse_container(data)
        frames = []
        for entry in entries:
            start = payload_base + entry.payload_offset
            stop = start + entry.size_bytes
            if stop > len(data):
                raise BitstreamError(f"payload of frame {entry.index} is truncated")
            payload = data[start:stop] if entry.size_bytes else None
            frames.append(EncodedFrame(index=entry.index, frame_type=entry.frame_type,
                                       size_bytes=entry.size_bytes, payload=payload))
        return cls(metadata, parameters, frames)


def _parse_container(data: bytes) -> Tuple[VideoMetadata, EncoderParameters,
                                           List[FrameIndexEntry], int]:
    if len(data) < _HEADER.size:
        raise BitstreamError("container too short for header")
    magic, version, metadata_length, num_frames = _HEADER.unpack(data[:_HEADER.size])
    if magic != _MAGIC:
        raise BitstreamError(f"bad container magic {magic!r}")
    if version != _VERSION:
        raise BitstreamError(f"unsupported container version {version}")
    metadata_start = _HEADER.size
    metadata_stop = metadata_start + metadata_length
    index_stop = metadata_stop + num_frames * _INDEX_RECORD.size
    if len(data) < index_stop:
        raise BitstreamError("container truncated before the frame index")
    try:
        metadata_payload = json.loads(data[metadata_start:metadata_stop].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BitstreamError("container metadata is not valid JSON") from exc
    try:
        metadata = VideoMetadata(
            name=metadata_payload["name"],
            resolution=Resolution(metadata_payload["width"], metadata_payload["height"]),
            fps=metadata_payload["fps"],
            num_frames=metadata_payload["num_frames"],
        )
        raw_parameters = metadata_payload["parameters"]
        parameters = EncoderParameters(**raw_parameters)
    except (KeyError, TypeError) as exc:
        raise BitstreamError("container metadata is missing required fields") from exc
    if metadata.num_frames != num_frames:
        raise BitstreamError("metadata frame count disagrees with the header")
    entries = []
    for position in range(num_frames):
        start = metadata_stop + position * _INDEX_RECORD.size
        code, offset, size = _INDEX_RECORD.unpack(
            data[start:start + _INDEX_RECORD.size])
        if code not in _CODE_FRAME_TYPES:
            raise BitstreamError(f"unknown frame type code {code}")
        entries.append(FrameIndexEntry(index=position,
                                       frame_type=_CODE_FRAME_TYPES[code],
                                       payload_offset=offset, size_bytes=size))
    return metadata, parameters, entries, index_stop


def read_frame_index(data: bytes) -> Tuple[VideoMetadata, List[FrameIndexEntry]]:
    """Read only the metadata and the frame index of a serialised container.

    This is the operation the I-frame seeker performs: no payload bytes are
    touched, so the cost is proportional to the number of frames, not to the
    video size.
    """
    metadata, _, entries, _ = _parse_container(data)
    return metadata, entries
