"""Macroblock partitioning helpers.

The codec substrate (motion estimation, DCT transform, scenecut analysis)
operates on square pixel blocks.  These helpers convert between a 2-D image
plane and a 4-D ``(blocks_y, blocks_x, block, block)`` view, padding the
plane by edge replication when its dimensions are not block-aligned —
the same convention H.264/JPEG use for partial macroblocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import CodecError

#: Default macroblock size used throughout the codec.
DEFAULT_BLOCK_SIZE = 8


def padded_shape(height: int, width: int, block_size: int = DEFAULT_BLOCK_SIZE
                 ) -> Tuple[int, int]:
    """Return the block-aligned ``(height, width)`` for a plane."""
    if block_size <= 0:
        raise CodecError(f"block_size must be positive, got {block_size}")
    pad_h = (block_size - height % block_size) % block_size
    pad_w = (block_size - width % block_size) % block_size
    return height + pad_h, width + pad_w


def pad_plane(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Pad a 2-D plane to a multiple of ``block_size`` by edge replication.

    Args:
        plane: 2-D array.
        block_size: Target alignment.

    Returns:
        The padded plane (a copy only when padding is required).
    """
    if plane.ndim != 2:
        raise CodecError(f"pad_plane expects a 2-D plane, got shape {plane.shape}")
    height, width = plane.shape
    target_h, target_w = padded_shape(height, width, block_size)
    if (target_h, target_w) == (height, width):
        return plane
    # Hand-rolled edge replication: np.pad's generic machinery costs more
    # than the copy itself on this per-frame hot path.
    padded = np.empty((target_h, target_w), dtype=plane.dtype)
    padded[:height, :width] = plane
    if target_h > height:
        padded[height:, :width] = plane[-1]
    if target_w > width:
        padded[:, width:] = padded[:, width - 1:width]
    return padded


def crop_plane(plane: np.ndarray, height: int, width: int) -> np.ndarray:
    """Crop a padded plane back to its original ``(height, width)``."""
    if plane.shape[0] < height or plane.shape[1] < width:
        raise CodecError(
            f"cannot crop plane of shape {plane.shape} to {(height, width)}")
    return plane[:height, :width]


def to_blocks(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Reshape a block-aligned plane into ``(by, bx, block, block)`` blocks.

    The returned array is a view when possible; callers that mutate it should
    copy first.

    Args:
        plane: 2-D array whose dimensions are multiples of ``block_size``.
        block_size: Block edge length.

    Returns:
        4-D array of blocks.
    """
    height, width = plane.shape
    if height % block_size or width % block_size:
        raise CodecError(
            f"plane shape {plane.shape} is not aligned to block size {block_size}")
    blocks_y = height // block_size
    blocks_x = width // block_size
    return (plane.reshape(blocks_y, block_size, blocks_x, block_size)
            .transpose(0, 2, 1, 3))


def from_blocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_blocks`: reassemble blocks into a 2-D plane."""
    if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
        raise CodecError(
            f"expected (by, bx, b, b) block array, got shape {blocks.shape}")
    blocks_y, blocks_x, block_size, _ = blocks.shape
    return (blocks.transpose(0, 2, 1, 3)
            .reshape(blocks_y * block_size, blocks_x * block_size))


def block_grid(height: int, width: int, block_size: int = DEFAULT_BLOCK_SIZE
               ) -> Tuple[int, int]:
    """Number of blocks ``(blocks_y, blocks_x)`` covering a padded plane."""
    target_h, target_w = padded_shape(height, width, block_size)
    return target_h // block_size, target_w // block_size


def block_means(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Per-block mean of a (possibly unaligned) plane.

    Args:
        plane: 2-D array.
        block_size: Block edge length.

    Returns:
        2-D array of shape ``(blocks_y, blocks_x)``.
    """
    padded = pad_plane(np.asarray(plane, dtype=np.float64), block_size)
    return to_blocks(padded, block_size).mean(axis=(2, 3))


def block_sums_abs(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Per-block sum of absolute values (SAD-style aggregation)."""
    padded = pad_plane(np.abs(np.asarray(plane, dtype=np.float64)), block_size)
    return to_blocks(padded, block_size).sum(axis=(2, 3))
