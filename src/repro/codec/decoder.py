"""Video decoder: the expensive path SiEVE avoids.

The decoder reconstructs pixels from an :class:`EncodedVideo` whose frames
carry payloads.  Two paths are provided:

* :meth:`VideoDecoder.decode_video` — the classical full-decode pipeline
  (every P-frame needs bit-stream parsing, motion compensation and the
  inverse transform), which is what decode-based baselines such as MSE/SIFT
  filtering must pay for every single frame;
* :meth:`VideoDecoder.decode_keyframes` — decodes only I-frames, each
  independently, exactly like still JPEG images.  This is the cheap path the
  edge compute engine uses after the I-frame seeker.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..errors import DecodeError
from ..video.frame import Frame, FrameType
from ..video.raw_video import RawVideo, VideoMetadata
from .bitstream import EncodedFrame, EncodedVideo
from .blocks import crop_plane, from_blocks
from .encoder import _P_FRAME_HEADER, P_FRAME_MARKER, unpack_bitmap
from .entropy import decode_blocks
from .jpeg import decode_image
from .motion import MotionField, motion_compensate
from .transform import dequantise_blocks, idct2_blocks, quantisation_matrix


class VideoDecoder:
    """Decoder for :class:`EncodedVideo` containers produced by the encoder."""

    # ------------------------------------------------------------------ #
    # Frame-level decoding
    # ------------------------------------------------------------------ #
    def decode_keyframe(self, frame: EncodedFrame) -> np.ndarray:
        """Decode an I-frame payload into a luma plane."""
        if not frame.is_keyframe:
            raise DecodeError(f"frame {frame.index} is not an I-frame")
        if frame.payload is None:
            raise DecodeError(
                f"frame {frame.index} has no payload (size-only encoding)")
        return decode_image(frame.payload)

    def _decode_predicted(self, frame: EncodedFrame, reference: np.ndarray,
                          frame_shape) -> np.ndarray:
        if frame.payload is None:
            raise DecodeError(
                f"frame {frame.index} has no payload (size-only encoding)")
        payload = frame.payload
        if len(payload) < _P_FRAME_HEADER.size:
            raise DecodeError(f"P-frame {frame.index} payload too short")
        marker, block_size, quality, blocks_y, blocks_x, residual_length = (
            _P_FRAME_HEADER.unpack(payload[:_P_FRAME_HEADER.size]))
        if marker != P_FRAME_MARKER:
            raise DecodeError(f"bad P-frame marker {marker!r} in frame {frame.index}")
        num_blocks = blocks_y * blocks_x
        bitmap_length = -(-num_blocks // 8)
        mv_bitmap_start = _P_FRAME_HEADER.size
        coded_bitmap_start = mv_bitmap_start + bitmap_length
        mv_start = coded_bitmap_start + bitmap_length
        if len(payload) < mv_start:
            raise DecodeError(f"P-frame {frame.index} payload has truncated bitmaps")
        moving = unpack_bitmap(payload[mv_bitmap_start:coded_bitmap_start], num_blocks)
        coded = unpack_bitmap(payload[coded_bitmap_start:mv_start], num_blocks)
        mv_length = int(moving.sum()) * 2
        residual_start = mv_start + mv_length
        if len(payload) != residual_start + residual_length:
            raise DecodeError(f"P-frame {frame.index} payload has inconsistent length")
        vectors = np.zeros((blocks_y * blocks_x, 2), dtype=np.int16)
        if mv_length:
            packed = np.frombuffer(payload[mv_start:residual_start], dtype=np.int8)
            vectors[moving] = packed.reshape(-1, 2).astype(np.int16)
        vectors = vectors.reshape(blocks_y, blocks_x, 2)
        field = MotionField(vectors=vectors,
                            block_sad=np.zeros((blocks_y, blocks_x)),
                            zero_sad=np.zeros((blocks_y, blocks_x)),
                            block_size=block_size)
        prediction = motion_compensate(reference, field, frame_shape)
        quantised = np.zeros((blocks_y * blocks_x, 1, block_size, block_size),
                             dtype=np.int32)
        num_coded = int(coded.sum())
        if num_coded:
            coded_payload = payload[residual_start:]
            quantised[coded] = decode_blocks(coded_payload, num_coded, 1, block_size)
        quantised = quantised.reshape(blocks_y, blocks_x, block_size, block_size)
        matrix = quantisation_matrix(quality, block_size)
        residual_blocks = idct2_blocks(dequantise_blocks(quantised, matrix))
        residual = crop_plane(from_blocks(residual_blocks),
                              frame_shape[0], frame_shape[1])
        return np.clip(prediction + residual, 0, 255)

    # ------------------------------------------------------------------ #
    # Video-level decoding
    # ------------------------------------------------------------------ #
    def iter_decoded_frames(self, encoded: EncodedVideo) -> Iterator[Frame]:
        """Yield fully decoded frames in presentation order."""
        shape = encoded.metadata.resolution.shape
        reference: np.ndarray = None
        for encoded_frame in encoded.frames:
            if encoded_frame.is_keyframe:
                plane = self.decode_keyframe(encoded_frame).astype(np.float64)
            else:
                if reference is None:
                    raise DecodeError(
                        f"P-frame {encoded_frame.index} appears before any I-frame")
                plane = self._decode_predicted(encoded_frame, reference, shape)
            reference = plane
            yield Frame(index=encoded_frame.index,
                        data=np.clip(plane, 0, 255).astype(np.uint8),
                        timestamp=encoded.metadata.timestamp_of(encoded_frame.index),
                        frame_type=encoded_frame.frame_type)

    def decode_video(self, encoded: EncodedVideo) -> RawVideo:
        """Decode every frame (the classical, expensive pipeline)."""
        frames = list(self.iter_decoded_frames(encoded))
        metadata = VideoMetadata(name=encoded.metadata.name,
                                 resolution=encoded.metadata.resolution,
                                 fps=encoded.metadata.fps,
                                 num_frames=len(frames),
                                 extra=dict(encoded.metadata.extra))
        return RawVideo(metadata, frames)

    def decode_keyframes(self, encoded: EncodedVideo) -> List[Frame]:
        """Decode only the I-frames, each as an independent still image."""
        frames = []
        for encoded_frame in encoded.iter_keyframes():
            plane = self.decode_keyframe(encoded_frame)
            frames.append(Frame(
                index=encoded_frame.index, data=plane,
                timestamp=encoded.metadata.timestamp_of(encoded_frame.index),
                frame_type=FrameType.I))
        return frames

    def decode_frame_at(self, encoded: EncodedVideo, frame_index: int) -> Frame:
        """Decode a single frame by index.

        I-frames are decoded directly; P-frames require decoding forward from
        the preceding I-frame, which is exactly the seek penalty the paper's
        edge storage avoids by keeping the semantically encoded video (the
        event of interest starts at an I-frame).
        """
        if not 0 <= frame_index < encoded.num_frames:
            raise DecodeError(f"frame index {frame_index} out of range")
        start = frame_index
        while start > 0 and not encoded.frames[start].is_keyframe:
            start -= 1
        if not encoded.frames[start].is_keyframe:
            raise DecodeError("no I-frame precedes the requested frame")
        shape = encoded.metadata.resolution.shape
        reference = self.decode_keyframe(encoded.frames[start]).astype(np.float64)
        for index in range(start + 1, frame_index + 1):
            reference = self._decode_predicted(encoded.frames[index], reference, shape)
        return Frame(index=frame_index,
                     data=np.clip(reference, 0, 255).astype(np.uint8),
                     timestamp=encoded.metadata.timestamp_of(frame_index),
                     frame_type=encoded.frames[frame_index].frame_type)

    def reconstruction_error(self, encoded: EncodedVideo, original: RawVideo
                             ) -> Dict[str, float]:
        """PSNR statistics of the decoded video against the original."""
        errors = []
        for decoded, source in zip(self.iter_decoded_frames(encoded), original.frames()):
            difference = (decoded.data.astype(np.float64)
                          - source.to_grayscale())
            errors.append(float(np.mean(difference ** 2)))
        mse = float(np.mean(errors)) if errors else 0.0
        psnr = float("inf") if mse == 0 else 10.0 * np.log10(255.0 ** 2 / mse)
        return {"mean_mse": mse, "psnr_db": psnr, "num_frames": len(errors)}


def decode_video(encoded: EncodedVideo) -> RawVideo:
    """Module-level convenience wrapper around :class:`VideoDecoder`."""
    return VideoDecoder().decode_video(encoded)
