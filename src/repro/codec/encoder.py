"""The semantic video encoder.

:class:`VideoEncoder` encodes a raw video into an :class:`EncodedVideo` using
the classic hybrid-coding structure (I-frames coded like still JPEG images,
P-frames coded as motion-compensated residuals), with I-frame placement
driven by the two parameters the paper tunes: GOP size and scenecut
threshold.

Two encoding modes are provided:

* ``materialise_payload=True`` — real byte payloads are produced for every
  frame so the video can be serialised and decoded again (used by the
  round-trip tests and the edge-storage path);
* ``materialise_payload=False`` (default) — only the *exact* payload sizes
  are computed (the entropy coder is byte-aligned, so sizes can be computed
  without emitting bytes).  This is what the experiment harnesses use: frame
  types and sizes fully determine the paper's metrics.

The encoder also exposes :meth:`VideoEncoder.analyze`, a parameter-free
lookahead pass producing one :class:`FrameActivity` per frame; the offline
tuner evaluates every (GOP, scenecut) configuration against a single such
pass instead of re-encoding the video k*l times.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence

import numpy as np

from ..contracts import validate_precision
from ..errors import EncodeError
from ..logging_utils import get_logger
from ..video.frame import FrameType
from ..video.raw_video import VideoSource
from .bitstream import EncodedFrame, EncodedVideo
from .blocks import pad_plane, to_blocks, from_blocks, crop_plane
from .entropy import encode_blocks, encoded_size_bytes
from .gop import EncoderParameters, KeyframePlacer, StreamingKeyframePlacer
from .jpeg import encode_image, estimate_encoded_size
from .motion import estimate_motion, motion_compensate
from .scenecut import FrameActivity, SceneCutAnalyzer
from .transform import (dct2_blocks, dequantise_blocks, idct2_blocks,
                        quantisation_matrix, quantise_blocks)

_LOGGER = get_logger(__name__)

#: Header prepended to every P-frame payload: marker, block size, quality,
#: blocks_y, blocks_x, residual payload length.
_P_FRAME_HEADER = struct.Struct(">cBBHHI")
P_FRAME_MARKER = b"P"

#: Quantised residual levels with absolute value at or below this are zeroed
#: in P-frames.  Real encoders achieve the same effect with a quantiser
#: dead-zone: sensor noise never survives into the bitstream, only genuine
#: prediction failures (new objects, disocclusions) do.
P_FRAME_DEADZONE = 1


def pack_bitmap(flags: np.ndarray) -> bytes:
    """Pack a boolean array into a row-major bitmap (MSB first)."""
    return np.packbits(flags.astype(bool).ravel()).tobytes()


def unpack_bitmap(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bitmap` for the first ``count`` flags."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count)
    return bits.astype(bool)


class VideoEncoder:
    """Semantic video encoder.

    Args:
        parameters: Encoder configuration (GOP size, scenecut threshold,
            quality, macroblock size, motion-search radius).
        precision: Numeric mode of the motion search — ``"exact"`` (the
            default, bit-identical to the seed) or ``"fast"`` (float32
            SADs under :data:`repro.contracts.FAST_CONTRACT`).
    """

    def __init__(self, parameters: Optional[EncoderParameters] = None,
                 precision: str = "exact") -> None:
        self.parameters = parameters or EncoderParameters()
        self.precision = validate_precision(precision)

    # ------------------------------------------------------------------ #
    # Lookahead analysis
    # ------------------------------------------------------------------ #
    def make_analyzer(self) -> SceneCutAnalyzer:
        """Build a scene-cut analyser matching the encoder's block settings."""
        return SceneCutAnalyzer(block_size=self.parameters.block_size,
                                search_radius=self.parameters.search_radius,
                                precision=self.precision)

    def analyze(self, video: VideoSource) -> List[FrameActivity]:
        """Run the parameter-independent lookahead pass over ``video``."""
        return self.make_analyzer().analyze_video(video)

    def place_frame_types(self, activities: Sequence[FrameActivity]) -> List[FrameType]:
        """Frame types this encoder's parameters assign to an analysis pass."""
        return KeyframePlacer(self.parameters).place(activities)

    # ------------------------------------------------------------------ #
    # Frame-level encoding
    # ------------------------------------------------------------------ #
    def _encode_keyframe(self, luma: np.ndarray, materialise: bool):
        """Encode an I-frame; returns (payload or None, size, reconstruction)."""
        image = np.clip(luma, 0, 255).astype(np.uint8)
        if materialise:
            payload = encode_image(image, self.parameters.quality,
                                   self.parameters.block_size)
            size = len(payload)
        else:
            payload = None
            size = estimate_encoded_size(image, self.parameters.quality,
                                         self.parameters.block_size)
        reconstruction = self._reconstruct_intra(image)
        return payload, size, reconstruction

    def _reconstruct_intra(self, image: np.ndarray) -> np.ndarray:
        """Decoder-side reconstruction of an intra-coded frame."""
        block_size = self.parameters.block_size
        blocks = to_blocks(pad_plane(image.astype(np.float64) - 128.0, block_size),
                           block_size)
        matrix = quantisation_matrix(self.parameters.quality, block_size)
        quantised = quantise_blocks(dct2_blocks(blocks), matrix)
        reconstructed = idct2_blocks(dequantise_blocks(quantised, matrix)) + 128.0
        plane = crop_plane(from_blocks(reconstructed), image.shape[0], image.shape[1])
        return np.clip(plane, 0, 255)

    def _encode_predicted(self, reference: np.ndarray, luma: np.ndarray,
                          materialise: bool):
        """Encode a P-frame against ``reference``; returns (payload, size, recon).

        The P-frame payload mimics a real inter-coded picture:

        * a bitmap marking the blocks with a non-zero motion vector, followed
          by two bytes per such block (``dy``, ``dx``) — blocks that did not
          move cost one bit each, like H.264 skip signalling;
        * a bitmap marking the blocks whose quantised residual (after the
          dead-zone) has any non-zero coefficient, followed by the entropy
          payload of only those blocks.
        """
        block_size = self.parameters.block_size
        field = estimate_motion(reference, luma, block_size,
                                self.parameters.search_radius,
                                precision=self.precision)
        prediction = motion_compensate(reference, field, luma.shape)
        residual = luma - prediction
        residual_blocks = to_blocks(pad_plane(residual, block_size), block_size)
        matrix = quantisation_matrix(self.parameters.quality, block_size)
        quantised = quantise_blocks(dct2_blocks(residual_blocks), matrix)
        quantised[np.abs(quantised) <= P_FRAME_DEADZONE] = 0
        blocks_y, blocks_x = quantised.shape[:2]

        moving = np.any(field.vectors != 0, axis=2)
        coded = np.any(quantised != 0, axis=(2, 3))
        mv_bitmap = pack_bitmap(moving)
        coded_bitmap = pack_bitmap(coded)
        mv_bytes = field.vectors[moving].astype(np.int8).tobytes()
        coded_blocks = quantised[coded][:, None, :, :]  # (n, 1, b, b) block array
        if materialise:
            residual_payload = (encode_blocks(coded_blocks)
                                if coded_blocks.shape[0] else b"")
            header = _P_FRAME_HEADER.pack(P_FRAME_MARKER, block_size,
                                          self.parameters.quality, blocks_y, blocks_x,
                                          len(residual_payload))
            payload = (header + mv_bitmap + coded_bitmap + mv_bytes
                       + residual_payload)
            size = len(payload)
        else:
            payload = None
            residual_size = (encoded_size_bytes(coded_blocks)
                             if coded_blocks.shape[0] else 0)
            size = (_P_FRAME_HEADER.size + len(mv_bitmap) + len(coded_bitmap)
                    + len(mv_bytes) + residual_size)
        reconstructed_residual = idct2_blocks(dequantise_blocks(quantised, matrix))
        residual_plane_full = crop_plane(from_blocks(reconstructed_residual),
                                         luma.shape[0], luma.shape[1])
        reconstruction = np.clip(prediction + residual_plane_full, 0, 255)
        return payload, size, reconstruction

    # ------------------------------------------------------------------ #
    # Video-level encoding
    # ------------------------------------------------------------------ #
    def encode(self, video: VideoSource, materialise_payload: bool = False,
               activities: Optional[Sequence[FrameActivity]] = None) -> EncodedVideo:
        """Encode a whole video.

        Args:
            video: Source video.
            materialise_payload: Produce decodable byte payloads (slower) or
                exact sizes only.
            activities: Optional precomputed lookahead pass.  When provided
                the scene-cut analysis is not recomputed, but the frame count
                must match the video.

        Returns:
            The encoded video, with per-frame types, sizes and (optionally)
            payloads.

        Raises:
            EncodeError: If a precomputed analysis pass does not match the
                video length.
        """
        parameters = self.parameters
        if activities is not None and len(activities) != video.metadata.num_frames:
            raise EncodeError(
                f"analysis pass has {len(activities)} entries for a video of "
                f"{video.metadata.num_frames} frames")
        analyzer = None if activities is not None else self.make_analyzer()
        placer = StreamingKeyframePlacer(parameters)

        encoded_frames: List[EncodedFrame] = []
        reference: Optional[np.ndarray] = None
        keyframes = 0
        for frame in video.frames():
            luma = frame.to_grayscale()
            if activities is not None:
                activity = activities[frame.index]
            else:
                activity = analyzer.analyze_next(luma)
            frame_type = placer.decide(activity)
            if frame_type is FrameType.I:
                payload, size, reconstruction = self._encode_keyframe(
                    luma, materialise_payload)
                keyframes += 1
            else:
                payload, size, reconstruction = self._encode_predicted(
                    reference, luma, materialise_payload)
            reference = reconstruction
            encoded_frames.append(EncodedFrame(
                index=frame.index, frame_type=frame_type, size_bytes=size,
                payload=payload,
                novel_block_fraction=activity.novel_block_fraction))
        _LOGGER.debug("encoded %s: %d frames, %d keyframes (%s)",
                      video.metadata.name, len(encoded_frames), keyframes,
                      parameters.describe())
        return EncodedVideo(video.metadata, parameters, encoded_frames)


def encode_video(video: VideoSource, parameters: Optional[EncoderParameters] = None,
                 materialise_payload: bool = False,
                 activities: Optional[Sequence[FrameActivity]] = None,
                 precision: str = "exact") -> EncodedVideo:
    """Module-level convenience wrapper around :class:`VideoEncoder`."""
    return VideoEncoder(parameters, precision).encode(video, materialise_payload,
                                                      activities)


def analyze_video(video: VideoSource,
                  parameters: Optional[EncoderParameters] = None,
                  precision: str = "exact") -> List[FrameActivity]:
    """Run the lookahead analysis pass for ``video``."""
    return VideoEncoder(parameters, precision).analyze(video)
