"""Entropy coding of quantised transform coefficients.

The scheme is a byte-aligned run/level coder in the spirit of JPEG's
run-length + magnitude coding:

* coefficients of each block are visited in zig-zag order;
* every non-zero coefficient is emitted as a token byte
  ``(run << 4) | level_bytes`` followed by the level as a 1- or 2-byte
  big-endian two's-complement integer, where ``run`` is the number of zero
  coefficients skipped since the previous non-zero one (runs longer than 15
  are split with ``ZRL`` tokens, exactly like JPEG);
* each block ends with an ``EOB`` byte.

Because the format is byte aligned, the encoded size of a frame can be
computed exactly without materialising the payload
(:func:`encoded_size_bytes`), which is what the video encoder uses on its
fast path; :func:`encode_blocks` / :func:`decode_blocks` provide the real
round-trip used by the still-image codec and the tests.

Both directions are fully vectorised: encoding is a numpy run-length pass
over the zig-zag rows (``flatnonzero``/``diff`` -> token/level byte arrays
-> ``tobytes``), decoding is a token scan over a ``frombuffer`` view whose
token positions are found by pointer doubling.  The original per-block
Python implementations are retained as :func:`encode_blocks_reference` /
:func:`decode_blocks_reference` — they pin the byte format, and the
equivalence property tests assert the vectorised pair matches them byte for
byte.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..errors import BitstreamError, CodecError

#: End-of-block marker byte.
EOB = 0x00
#: Zero-run-length extension token: a run of 16 zeros with no level.
ZRL = 0xF0

#: Levels are clipped to the int16 range so they always fit two bytes.
MAX_LEVEL = 32767


@lru_cache(maxsize=8)
def zigzag_order(block_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (forward, inverse) zig-zag permutations for a block size.

    ``forward`` maps raster index -> zig-zag position is applied as
    ``flat_block[forward]`` to obtain zig-zag order; ``inverse`` undoes it.
    """
    if block_size <= 0:
        raise CodecError(f"block_size must be positive, got {block_size}")
    indices = []
    for diagonal in range(2 * block_size - 1):
        cells = []
        for row in range(block_size):
            col = diagonal - row
            if 0 <= col < block_size:
                cells.append((row, col))
        if diagonal % 2 == 0:
            cells.reverse()
        indices.extend(cells)
    forward = np.array([row * block_size + col for row, col in indices], dtype=np.int64)
    inverse = np.empty_like(forward)
    inverse[forward] = np.arange(forward.size)
    return forward, inverse


def _to_zigzag_rows(quantised: np.ndarray) -> np.ndarray:
    """Flatten a 4-D quantised block array into (num_blocks, block²) zig-zag rows."""
    if quantised.ndim != 4 or quantised.shape[2] != quantised.shape[3]:
        raise CodecError(f"expected (by, bx, b, b) blocks, got {quantised.shape}")
    block_size = quantised.shape[2]
    forward, _ = zigzag_order(block_size)
    rows = quantised.reshape(-1, block_size * block_size)
    return rows[:, forward]


def _level_bytes(levels: np.ndarray) -> np.ndarray:
    """Number of bytes (1 or 2) needed to store each level.

    Levels are stored as signed big-endian integers, so the single-byte
    range is the asymmetric two's-complement interval [-128, 127] — using
    ``abs(level) < 128`` here would overestimate a level of exactly -128 by
    one byte and disagree with :func:`encode_blocks`.
    """
    return np.where((levels >= -128) & (levels <= 127), 1, 2)


def encoded_size_bytes(quantised: np.ndarray) -> int:
    """Exact encoded size in bytes of a 4-D quantised block array.

    This is fully vectorised and matches :func:`encode_blocks` byte for byte.
    """
    rows = _to_zigzag_rows(quantised)
    num_blocks, num_coeffs = rows.shape
    nonzero = rows != 0
    # Bytes for (token + level) of every non-zero coefficient.
    level_cost = np.where(nonzero, 1 + _level_bytes(rows), 0).sum()
    # ZRL tokens: one byte per full run of 16 zeros preceding a non-zero.
    positions = np.where(nonzero, np.arange(num_coeffs)[None, :], -1)
    previous = np.maximum.accumulate(positions, axis=1)
    shifted = np.concatenate(
        [np.full((num_blocks, 1), -1, dtype=previous.dtype), previous[:, :-1]], axis=1)
    runs = np.where(nonzero, np.arange(num_coeffs)[None, :] - shifted - 1, 0)
    zrl_cost = (runs // 16).sum()
    # One EOB byte per block.
    return int(level_cost + zrl_cost + num_blocks)


def encode_blocks(quantised: np.ndarray) -> bytes:
    """Encode a 4-D quantised block array into the byte format described above.

    Vectorised run-length pass: every non-zero coefficient becomes one chunk
    of ``[ZRL...] token level-bytes`` whose offset into the output buffer is
    computed with a cumulative sum, and the buffer starts zeroed so the EOB
    byte (``0x00``) of every block is already in place.  Byte-for-byte
    identical to :func:`encode_blocks_reference`.
    """
    rows = _to_zigzag_rows(np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))
    num_blocks, num_coeffs = rows.shape
    flat = rows.ravel()
    nonzero_flat = np.flatnonzero(flat)
    if nonzero_flat.size == 0:
        # Every block is empty: the payload is one EOB per block.
        return bytes(num_blocks)

    levels = flat[nonzero_flat].astype(np.int64)
    block_index = nonzero_flat // num_coeffs
    position = nonzero_flat - block_index * num_coeffs
    # Zig-zag position of the previous non-zero coefficient in the same
    # block (-1 at a block start), from which the zero-run length follows.
    previous = np.empty_like(position)
    previous[0] = -1
    previous[1:] = position[:-1]
    first_in_block = np.empty(nonzero_flat.size, dtype=bool)
    first_in_block[0] = True
    np.not_equal(block_index[1:], block_index[:-1], out=first_in_block[1:])
    previous[first_in_block] = -1
    run = position - previous - 1

    zrl_count = run >> 4
    short_run = run & 0x0F
    size = _level_bytes(levels)
    token = (short_run << 4) | size

    # Chunk layout: zrl_count ZRL bytes, the token byte, then 1-2 level
    # bytes.  Chunks are laid out in (block, position) order with one EOB
    # byte between consecutive blocks' chunk groups.
    chunk_length = zrl_count + 1 + size
    chunk_start = np.empty(nonzero_flat.size, dtype=np.int64)
    chunk_start[0] = 0
    np.cumsum(chunk_length[:-1], out=chunk_start[1:])
    chunk_start += block_index  # one EOB per already-completed block

    total = int(chunk_length.sum()) + num_blocks
    output = np.zeros(total, dtype=np.uint8)  # zeros double as the EOB bytes
    # ZRL runs are at most (num_coeffs - 1) // 16 bytes long, so this loop is
    # bounded by the block size (3 iterations for 8x8 blocks), not the data.
    for offset in range(int(zrl_count.max(initial=0))):
        needs_zrl = zrl_count > offset
        output[chunk_start[needs_zrl] + offset] = ZRL
    token_position = chunk_start + zrl_count
    output[token_position] = token.astype(np.uint8)
    # Level bytes, big-endian two's complement (1 or 2 bytes).
    one_byte = size == 1
    output[token_position[one_byte] + 1] = (levels[one_byte] & 0xFF).astype(np.uint8)
    two_byte = ~one_byte
    output[token_position[two_byte] + 1] = \
        ((levels[two_byte] >> 8) & 0xFF).astype(np.uint8)
    output[token_position[two_byte] + 2] = (levels[two_byte] & 0xFF).astype(np.uint8)
    return output.tobytes()


def _token_positions(data: np.ndarray) -> np.ndarray:
    """Positions of every token byte in an entropy payload, by pointer doubling.

    Treating *every* byte as a potential token start, the byte at ``p``
    consumes ``1 + size`` bytes when it is a run/level token and ``1`` byte
    when it is ``EOB``/``ZRL``; the actual token positions are the orbit of
    ``0`` under ``p -> p + consumed(p)``.  Squaring the jump table marks the
    whole orbit in ``O(log n)`` vectorised passes: after iteration ``j`` the
    marked set is exactly the chain's first ``2^j`` positions.
    """
    length = data.size
    if length == 0:
        return np.empty(0, dtype=np.int64)
    step = np.ones(length, dtype=np.int64)
    is_token = (data != EOB) & (data != ZRL)
    step[is_token] += data[is_token] & 0x0F
    jump = np.minimum(np.arange(length, dtype=np.int64) + step, length)
    jump = np.append(jump, length)  # position ``length`` is a fixed point
    scratch = np.empty(length + 1, dtype=np.int64)
    marked = np.zeros(length + 1, dtype=bool)
    marked[0] = True
    # After iteration ``k`` the frontier holds chain steps ``0..2^k - 1`` and
    # ``jump`` advances ``2^k`` steps, so jumping the whole frontier yields
    # steps ``2^k..2^(k+1) - 1`` — all fresh, except the clamped sentinel.
    frontier = np.zeros(1, dtype=np.int64)
    while True:
        advanced = jump[frontier]
        fresh = advanced[~marked[advanced]]
        fresh = fresh[fresh < length]
        if fresh.size == 0:
            break
        marked[fresh] = True
        frontier = np.concatenate([frontier, fresh])
        np.take(jump, jump, out=scratch)
        jump, scratch = scratch, jump
    return np.flatnonzero(marked[:length])


def decode_blocks(payload: bytes, blocks_y: int, blocks_x: int,
                  block_size: int) -> np.ndarray:
    """Decode :func:`encode_blocks` output back into a 4-D block array.

    Vectorised token scan over a ``frombuffer`` view of the payload: token
    positions come from :func:`_token_positions`, then runs, levels and
    per-block coefficient positions are reconstructed with segmented
    cumulative sums.  Byte-for-byte equivalent to
    :func:`decode_blocks_reference` on well-formed payloads and raises
    :class:`~repro.errors.BitstreamError` on the same malformed ones.

    Args:
        payload: Encoded bytes.
        blocks_y: Number of block rows.
        blocks_x: Number of block columns.
        block_size: Block edge length.

    Returns:
        Quantised coefficient blocks of shape ``(blocks_y, blocks_x, b, b)``.

    Raises:
        BitstreamError: If the payload is truncated or malformed.
    """
    num_blocks = blocks_y * blocks_x
    num_coeffs = block_size * block_size
    _, inverse = zigzag_order(block_size)
    rows = np.zeros((num_blocks, num_coeffs), dtype=np.int32)

    data = np.frombuffer(payload, dtype=np.uint8)
    positions = _token_positions(data)
    tokens = data[positions]
    is_eob = tokens == EOB
    eob_before = np.cumsum(is_eob) - is_eob  # EOBs seen before each token

    # The scan stops at the ``num_blocks``-th EOB; everything after it is
    # either trailing garbage or evidence of truncation.
    complete = np.flatnonzero(is_eob & (eob_before == num_blocks - 1)) \
        if num_blocks else np.empty(0, dtype=np.int64)
    if num_blocks and complete.size == 0:
        # Ran out of payload before every block closed.  Distinguish the two
        # reference error messages: a token whose level bytes run past the
        # end versus a clean end with blocks still open.
        if positions.size and positions[-1] + _consumed(tokens[-1]) > data.size:
            raise BitstreamError("truncated entropy payload (missing level bytes)")
        raise BitstreamError("truncated entropy payload (missing EOB)")
    end_index = int(complete[0]) if num_blocks else -1
    end_offset = (positions[end_index] + 1) if num_blocks else 0
    if end_offset != data.size:
        raise BitstreamError(
            f"trailing {data.size - end_offset} bytes after decoding "
            f"{num_blocks} blocks")

    in_scan = slice(0, end_index + 1)
    tokens = tokens[in_scan]
    positions = positions[in_scan]
    is_eob = is_eob[in_scan]
    block_of = eob_before[in_scan]
    is_zrl = tokens == ZRL
    is_level = ~is_eob
    np.logical_and(is_level, ~is_zrl, out=is_level)
    size = (tokens & 0x0F).astype(np.int64)
    bad = is_level & ((size == 0) | (size > 2))
    if bad.any():
        raise BitstreamError(
            f"invalid level size {int(size[bad.argmax()])} in entropy payload")

    # Coefficient index of each level token: segmented cumulative advance
    # (ZRL adds 16, a run/level token adds run + 1) reset at block starts.
    # EOB tokens have a zero run nibble, so `run + 1 - is_eob` folds all
    # three token kinds into one expression without fancy-index assignments
    # (ZRL's run nibble is 15, i.e. an advance of 16 as required).
    advance = (tokens >> 4).astype(np.int64) + 1 - is_eob
    total_advance = np.cumsum(advance)
    block_base = np.zeros(num_blocks, dtype=np.int64)
    eob_positions = np.flatnonzero(is_eob)
    if num_blocks > 1:
        block_base[1:] = total_advance[eob_positions[:num_blocks - 1]]
    coeff_index = total_advance[is_level] - block_base[block_of[is_level]] - 1
    if coeff_index.size and int(coeff_index.max()) >= num_coeffs:
        raise BitstreamError("coefficient index out of range in entropy payload")

    level_positions = positions[is_level]
    # Sign-extended first level byte; two-byte levels fold in the low byte.
    levels = data[level_positions + 1].astype(np.int8).astype(np.int32)
    two = size[is_level] == 2
    levels[two] = levels[two] * 256 + data[level_positions[two] + 2]
    rows[block_of[is_level], coeff_index] = levels

    raster = rows[:, inverse]
    return raster.reshape(blocks_y, blocks_x, block_size, block_size)


def _consumed(token: int) -> int:
    """Bytes consumed by one token byte (token itself plus its level bytes)."""
    if token == EOB or token == ZRL:
        return 1
    return 1 + (int(token) & 0x0F)


def encode_blocks_reference(quantised: np.ndarray) -> bytes:
    """Reference per-block Python encoder (pins the byte format).

    This is the original implementation :func:`encode_blocks` replaced; the
    equivalence property tests assert both produce identical payloads, and
    the micro-benchmarks use it as the speedup baseline.
    """
    rows = _to_zigzag_rows(np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))
    output = bytearray()
    for row in rows:
        nonzero_positions = np.nonzero(row)[0]
        previous = -1
        for position in nonzero_positions:
            run = int(position - previous - 1)
            previous = int(position)
            while run >= 16:
                output.append(ZRL)
                run -= 16
            level = int(row[position])
            size = 1 if -128 <= level <= 127 else 2
            output.append((run << 4) | size)
            output.extend(int(level).to_bytes(size, "big", signed=True))
        output.append(EOB)
    return bytes(output)


def decode_blocks_reference(payload: bytes, blocks_y: int, blocks_x: int,
                            block_size: int) -> np.ndarray:
    """Reference per-byte Python decoder (pins the byte format).

    See :func:`encode_blocks_reference`; kept for the equivalence tests and
    as the micro-benchmark baseline.
    """
    num_blocks = blocks_y * blocks_x
    num_coeffs = block_size * block_size
    _, inverse = zigzag_order(block_size)
    rows = np.zeros((num_blocks, num_coeffs), dtype=np.int32)
    offset = 0
    length = len(payload)
    for block_index in range(num_blocks):
        position = 0
        while True:
            if offset >= length:
                raise BitstreamError("truncated entropy payload (missing EOB)")
            token = payload[offset]
            offset += 1
            if token == EOB:
                break
            if token == ZRL:
                position += 16
                continue
            run = token >> 4
            size = token & 0x0F
            if size not in (1, 2):
                raise BitstreamError(f"invalid level size {size} in entropy payload")
            if offset + size > length:
                raise BitstreamError("truncated entropy payload (missing level bytes)")
            level = int.from_bytes(payload[offset:offset + size], "big", signed=True)
            offset += size
            position += run
            if position >= num_coeffs:
                raise BitstreamError("coefficient index out of range in entropy payload")
            rows[block_index, position] = level
            position += 1
    if offset != length:
        raise BitstreamError(
            f"trailing {length - offset} bytes after decoding {num_blocks} blocks")
    raster = rows[:, inverse]
    return raster.reshape(blocks_y, blocks_x, block_size, block_size)


def coefficient_statistics(quantised: np.ndarray) -> dict:
    """Summary statistics of a quantised block array (for tests/diagnostics)."""
    rows = _to_zigzag_rows(quantised)
    nonzero = rows != 0
    return {
        "num_blocks": int(rows.shape[0]),
        "nonzero_coefficients": int(nonzero.sum()),
        "nonzero_fraction": float(nonzero.mean()) if rows.size else 0.0,
        "max_abs_level": int(np.abs(rows).max()) if rows.size else 0,
        "encoded_size_bytes": encoded_size_bytes(quantised),
    }


def split_block_payloads(payload: bytes, num_blocks: int) -> List[bytes]:
    """Split an encoded payload into one byte string per block (diagnostics).

    Raises:
        BitstreamError: If the payload is truncated or a token carries an
            invalid level size — an unvalidated size nibble (3-15) would
            otherwise silently desynchronise the scan.
    """
    pieces: List[bytes] = []
    offset = 0
    length = len(payload)
    for _ in range(num_blocks):
        start = offset
        while True:
            if offset >= length:
                raise BitstreamError("truncated entropy payload while splitting")
            token = payload[offset]
            offset += 1
            if token == EOB:
                break
            if token == ZRL:
                continue
            size = token & 0x0F
            if size not in (1, 2):
                raise BitstreamError(f"invalid level size {size} in entropy payload")
            if offset + size > length:
                raise BitstreamError("truncated entropy payload (missing level bytes)")
            offset += size
        pieces.append(payload[start:offset])
    return pieces
