"""Entropy coding of quantised transform coefficients.

The scheme is a byte-aligned run/level coder in the spirit of JPEG's
run-length + magnitude coding:

* coefficients of each block are visited in zig-zag order;
* every non-zero coefficient is emitted as a token byte
  ``(run << 4) | level_bytes`` followed by the level as a 1- or 2-byte
  big-endian two's-complement integer, where ``run`` is the number of zero
  coefficients skipped since the previous non-zero one (runs longer than 15
  are split with ``ZRL`` tokens, exactly like JPEG);
* each block ends with an ``EOB`` byte.

Because the format is byte aligned, the encoded size of a frame can be
computed exactly without materialising the payload
(:func:`encoded_size_bytes`), which is what the video encoder uses on its
fast path; :func:`encode_blocks` / :func:`decode_blocks` provide the real
round-trip used by the still-image codec and the tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..errors import BitstreamError, CodecError

#: End-of-block marker byte.
EOB = 0x00
#: Zero-run-length extension token: a run of 16 zeros with no level.
ZRL = 0xF0

#: Levels are clipped to the int16 range so they always fit two bytes.
MAX_LEVEL = 32767


@lru_cache(maxsize=8)
def zigzag_order(block_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return (forward, inverse) zig-zag permutations for a block size.

    ``forward`` maps raster index -> zig-zag position is applied as
    ``flat_block[forward]`` to obtain zig-zag order; ``inverse`` undoes it.
    """
    if block_size <= 0:
        raise CodecError(f"block_size must be positive, got {block_size}")
    indices = []
    for diagonal in range(2 * block_size - 1):
        cells = []
        for row in range(block_size):
            col = diagonal - row
            if 0 <= col < block_size:
                cells.append((row, col))
        if diagonal % 2 == 0:
            cells.reverse()
        indices.extend(cells)
    forward = np.array([row * block_size + col for row, col in indices], dtype=np.int64)
    inverse = np.empty_like(forward)
    inverse[forward] = np.arange(forward.size)
    return forward, inverse


def _to_zigzag_rows(quantised: np.ndarray) -> np.ndarray:
    """Flatten a 4-D quantised block array into (num_blocks, block²) zig-zag rows."""
    if quantised.ndim != 4 or quantised.shape[2] != quantised.shape[3]:
        raise CodecError(f"expected (by, bx, b, b) blocks, got {quantised.shape}")
    block_size = quantised.shape[2]
    forward, _ = zigzag_order(block_size)
    rows = quantised.reshape(-1, block_size * block_size)
    return rows[:, forward]


def _level_bytes(levels: np.ndarray) -> np.ndarray:
    """Number of bytes (1 or 2) needed to store each level.

    Levels are stored as signed big-endian integers, so the single-byte
    range is the asymmetric two's-complement interval [-128, 127] — using
    ``abs(level) < 128`` here would overestimate a level of exactly -128 by
    one byte and disagree with :func:`encode_blocks`.
    """
    return np.where((levels >= -128) & (levels <= 127), 1, 2)


def encoded_size_bytes(quantised: np.ndarray) -> int:
    """Exact encoded size in bytes of a 4-D quantised block array.

    This is fully vectorised and matches :func:`encode_blocks` byte for byte.
    """
    rows = _to_zigzag_rows(quantised)
    num_blocks, num_coeffs = rows.shape
    nonzero = rows != 0
    # Bytes for (token + level) of every non-zero coefficient.
    level_cost = np.where(nonzero, 1 + _level_bytes(rows), 0).sum()
    # ZRL tokens: one byte per full run of 16 zeros preceding a non-zero.
    positions = np.where(nonzero, np.arange(num_coeffs)[None, :], -1)
    previous = np.maximum.accumulate(positions, axis=1)
    shifted = np.concatenate(
        [np.full((num_blocks, 1), -1, dtype=previous.dtype), previous[:, :-1]], axis=1)
    runs = np.where(nonzero, np.arange(num_coeffs)[None, :] - shifted - 1, 0)
    zrl_cost = (runs // 16).sum()
    # One EOB byte per block.
    return int(level_cost + zrl_cost + num_blocks)


def encode_blocks(quantised: np.ndarray) -> bytes:
    """Encode a 4-D quantised block array into the byte format described above."""
    rows = _to_zigzag_rows(np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))
    output = bytearray()
    for row in rows:
        nonzero_positions = np.nonzero(row)[0]
        previous = -1
        for position in nonzero_positions:
            run = int(position - previous - 1)
            previous = int(position)
            while run >= 16:
                output.append(ZRL)
                run -= 16
            level = int(row[position])
            size = 1 if -128 <= level <= 127 else 2
            output.append((run << 4) | size)
            output.extend(int(level).to_bytes(size, "big", signed=True))
        output.append(EOB)
    return bytes(output)


def decode_blocks(payload: bytes, blocks_y: int, blocks_x: int,
                  block_size: int) -> np.ndarray:
    """Decode :func:`encode_blocks` output back into a 4-D block array.

    Args:
        payload: Encoded bytes.
        blocks_y: Number of block rows.
        blocks_x: Number of block columns.
        block_size: Block edge length.

    Returns:
        Quantised coefficient blocks of shape ``(blocks_y, blocks_x, b, b)``.

    Raises:
        BitstreamError: If the payload is truncated or malformed.
    """
    num_blocks = blocks_y * blocks_x
    num_coeffs = block_size * block_size
    _, inverse = zigzag_order(block_size)
    rows = np.zeros((num_blocks, num_coeffs), dtype=np.int32)
    offset = 0
    length = len(payload)
    for block_index in range(num_blocks):
        position = 0
        while True:
            if offset >= length:
                raise BitstreamError("truncated entropy payload (missing EOB)")
            token = payload[offset]
            offset += 1
            if token == EOB:
                break
            if token == ZRL:
                position += 16
                continue
            run = token >> 4
            size = token & 0x0F
            if size not in (1, 2):
                raise BitstreamError(f"invalid level size {size} in entropy payload")
            if offset + size > length:
                raise BitstreamError("truncated entropy payload (missing level bytes)")
            level = int.from_bytes(payload[offset:offset + size], "big", signed=True)
            offset += size
            position += run
            if position >= num_coeffs:
                raise BitstreamError("coefficient index out of range in entropy payload")
            rows[block_index, position] = level
            position += 1
    if offset != length:
        raise BitstreamError(
            f"trailing {length - offset} bytes after decoding {num_blocks} blocks")
    raster = rows[:, inverse]
    return raster.reshape(blocks_y, blocks_x, block_size, block_size)


def coefficient_statistics(quantised: np.ndarray) -> dict:
    """Summary statistics of a quantised block array (for tests/diagnostics)."""
    rows = _to_zigzag_rows(quantised)
    nonzero = rows != 0
    return {
        "num_blocks": int(rows.shape[0]),
        "nonzero_coefficients": int(nonzero.sum()),
        "nonzero_fraction": float(nonzero.mean()) if rows.size else 0.0,
        "max_abs_level": int(np.abs(rows).max()) if rows.size else 0,
        "encoded_size_bytes": encoded_size_bytes(quantised),
    }


def split_block_payloads(payload: bytes, num_blocks: int) -> List[bytes]:
    """Split an encoded payload into one byte string per block (diagnostics)."""
    pieces: List[bytes] = []
    offset = 0
    length = len(payload)
    for _ in range(num_blocks):
        start = offset
        while True:
            if offset >= length:
                raise BitstreamError("truncated entropy payload while splitting")
            token = payload[offset]
            offset += 1
            if token == EOB:
                break
            if token == ZRL:
                continue
            size = token & 0x0F
            offset += size
        pieces.append(payload[start:offset])
    return pieces
