"""Encoder parameters and GOP (group-of-pictures) key-frame placement.

The semantic video encoder exposes exactly the two knobs the paper tunes:

* ``gop_size`` — the maximum number of frames between two I-frames (x264's
  ``--keyint``); if no scene cut occurred for ``gop_size`` frames an I-frame
  is forced,
* ``scenecut_threshold`` — the 0-400 sensitivity of the scene-cut decision
  (x264's ``--scenecut``), interpreted by
  :func:`repro.codec.scenecut.scenecut_score_threshold`.

Given the per-frame :class:`~repro.codec.scenecut.FrameActivity` series
produced by one analysis pass, :class:`KeyframePlacer` converts any
parameter configuration into the corresponding I/P frame-type sequence
without re-running motion estimation — the property that makes the offline
grid search of Section IV practical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..video.frame import FrameType
from .scenecut import MAX_SCENECUT, FrameActivity, is_scenecut

#: x264 defaults, quoted in the paper ("the default parameters (i.e., GOP
#: size = 250, and scenecut = 40)").
DEFAULT_GOP_SIZE = 250
DEFAULT_SCENECUT = 40.0


@dataclass(frozen=True)
class EncoderParameters:
    """Configuration of the semantic video encoder.

    Attributes:
        gop_size: Maximum distance between two I-frames (frames).
        scenecut_threshold: Scene-cut sensitivity in ``[0, 400]``.
        min_gop_size: Minimum distance between two I-frames; scene cuts
            closer than this to the previous I-frame are encoded as P-frames
            (x264's ``--min-keyint``).  ``0`` selects ``max(gop_size // 10, 1)``.
        quality: JPEG-style quality factor used by the transform/quantiser.
        block_size: Macroblock size.
        search_radius: Motion-search radius in pixels.
    """

    gop_size: int = DEFAULT_GOP_SIZE
    scenecut_threshold: float = DEFAULT_SCENECUT
    min_gop_size: int = 0
    quality: int = 75
    block_size: int = 8
    search_radius: int = 2

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ConfigurationError(f"gop_size must be >= 1, got {self.gop_size}")
        if not 0 <= self.scenecut_threshold <= MAX_SCENECUT:
            raise ConfigurationError(
                f"scenecut_threshold must be in [0, {MAX_SCENECUT}], "
                f"got {self.scenecut_threshold}")
        if self.min_gop_size < 0:
            raise ConfigurationError("min_gop_size must be >= 0")
        if not 1 <= self.quality <= 100:
            raise ConfigurationError(f"quality must be in [1, 100], got {self.quality}")
        if self.block_size < 2:
            raise ConfigurationError("block_size must be >= 2")
        if self.search_radius < 0:
            raise ConfigurationError("search_radius must be >= 0")

    @property
    def effective_min_gop(self) -> int:
        """The minimum I-frame spacing actually applied.

        Follows the x264 ``--min-keyint auto`` convention of one tenth of the
        GOP size, capped at roughly one second of video (25 frames) so that a
        very large GOP does not lock out scene-cut I-frames for minutes.
        """
        if self.min_gop_size > 0:
            return min(self.min_gop_size, self.gop_size)
        return min(max(self.gop_size // 10, 1), 25)

    def with_(self, **changes) -> "EncoderParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable description (used in experiment tables)."""
        return f"gop={self.gop_size}, sc={self.scenecut_threshold:g}"


#: The default (non-semantic) configuration used as the paper's baseline.
DEFAULT_PARAMETERS = EncoderParameters()


class StreamingKeyframePlacer:
    """Stateful frame-type decision, one frame at a time.

    Placement rules, applied in order for every frame:

    1. the first frame is always an I-frame;
    2. if ``gop_size`` frames have passed since the last I-frame, force an
       I-frame;
    3. if the scene-cut decision fires (now, or fired earlier but was held
       back by the minimum key-frame interval — the request is *latched*)
       and at least ``min_gop`` frames have passed since the last I-frame,
       emit an I-frame;
    4. otherwise emit a P-frame.

    The latching in rule 3 matters for event detection: when an object is
    crossing the scene the scene-cut signal fires continuously, so the last
    I-frame before the object disappears may be closer than ``min_gop`` to
    the disappearance itself; without latching that final scene cut would be
    dropped and the "object left" event would never receive an I-frame.
    """

    def __init__(self, parameters: EncoderParameters) -> None:
        self.parameters = parameters
        self._since_keyframe = 0
        self._pending_scenecut = False
        self._frame_count = 0

    def reset(self) -> None:
        """Restart the placer for a new video."""
        self._since_keyframe = 0
        self._pending_scenecut = False
        self._frame_count = 0

    def decide(self, activity: FrameActivity) -> FrameType:
        """Return the frame type of the next frame of the stream."""
        parameters = self.parameters
        min_gop = parameters.effective_min_gop
        is_first_frame = self._frame_count == 0 or activity.is_first
        self._frame_count += 1
        if is_first_frame:
            self._since_keyframe = 0
            self._pending_scenecut = False
            return FrameType.I
        self._since_keyframe += 1
        if is_scenecut(activity, parameters.scenecut_threshold):
            self._pending_scenecut = True
        if self._since_keyframe >= parameters.gop_size:
            self._since_keyframe = 0
            self._pending_scenecut = False
            return FrameType.I
        if self._pending_scenecut and self._since_keyframe >= min_gop:
            self._since_keyframe = 0
            self._pending_scenecut = False
            return FrameType.I
        return FrameType.P


class KeyframePlacer:
    """Convert frame-activity series + encoder parameters into frame types.

    Args:
        parameters: Encoder configuration.
    """

    def __init__(self, parameters: EncoderParameters) -> None:
        self.parameters = parameters

    def place(self, activities: Sequence[FrameActivity]) -> List[FrameType]:
        """Assign a :class:`FrameType` to every analysed frame.

        See :class:`StreamingKeyframePlacer` for the placement rules.
        """
        placer = StreamingKeyframePlacer(self.parameters)
        return [placer.decide(activity) for activity in activities]

    def keyframe_indices(self, activities: Sequence[FrameActivity]) -> List[int]:
        """Indices of the frames that would be encoded as I-frames."""
        return [index for index, frame_type in enumerate(self.place(activities))
                if frame_type is FrameType.I]


def keyframe_flags(frame_types: Sequence[FrameType]) -> np.ndarray:
    """Boolean array marking the I-frames of a frame-type sequence."""
    return np.array([frame_type is FrameType.I for frame_type in frame_types],
                    dtype=bool)


def sampling_fraction(frame_types: Sequence[FrameType]) -> float:
    """Fraction of frames that are I-frames (the paper's sample size *SS*)."""
    if not frame_types:
        return 0.0
    return float(keyframe_flags(frame_types).mean())


def filtering_rate(frame_types: Sequence[FrameType]) -> float:
    """Fraction of frames that are *not* I-frames (the paper's ``fr_i``)."""
    return 1.0 - sampling_fraction(frame_types)


def gop_lengths(frame_types: Sequence[FrameType]) -> List[int]:
    """Lengths of every GOP (distance between consecutive I-frames)."""
    indices = [index for index, frame_type in enumerate(frame_types)
               if frame_type is FrameType.I]
    if not indices:
        return [len(frame_types)] if frame_types else []
    lengths = [later - earlier for earlier, later in zip(indices, indices[1:])]
    lengths.append(len(frame_types) - indices[-1])
    return lengths
