"""The I-frame seeker: SiEVE's cheap event-detection front end.

"We note that the I-frame seeker is not actually decoding each frame in the
video but instead it searches through the video metadata and drops every
frame that is not of type I-frame." (Section III)

The seeker therefore touches only the container's frame index — frame types,
offsets and sizes — and returns the I-frames (or, for serialised
containers, their index entries) without any pixel work.  Its per-frame cost
is what gives SiEVE the 100x+ event-detection speedup of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import BitstreamError
from ..video.frame import FrameType
from ..video.raw_video import VideoMetadata
from .bitstream import (EncodedFrame, EncodedVideo, FrameIndexEntry,
                        read_frame_index)


@dataclass
class SeekResult:
    """Outcome of one I-frame seeking pass.

    Attributes:
        keyframe_indices: Indices of the frames that passed the seeker.
        frames_scanned: Total number of index entries examined.
        keyframe_bytes: Total payload size of the selected I-frames.
        total_bytes: Total payload size of the scanned video.
    """

    keyframe_indices: List[int]
    frames_scanned: int
    keyframe_bytes: int
    total_bytes: int

    @property
    def num_keyframes(self) -> int:
        """Number of I-frames found."""
        return len(self.keyframe_indices)

    @property
    def sampling_fraction(self) -> float:
        """Fraction of frames that passed the seeker (the paper's *SS*)."""
        if self.frames_scanned == 0:
            return 0.0
        return self.num_keyframes / self.frames_scanned

    @property
    def filtering_rate(self) -> float:
        """Fraction of frames dropped without any decoding."""
        return 1.0 - self.sampling_fraction

    @property
    def data_reduction_factor(self) -> float:
        """Encoded-bytes reduction achieved by keeping only I-frames."""
        if self.keyframe_bytes == 0:
            return float("inf")
        return self.total_bytes / self.keyframe_bytes


class IFrameSeeker:
    """Extracts I-frames from encoded videos using metadata only."""

    def seek(self, encoded: EncodedVideo) -> List[EncodedFrame]:
        """Return the I-frames of an in-memory encoded video."""
        return [frame for frame in encoded.frames if frame.frame_type is FrameType.I]

    def seek_with_stats(self, encoded: EncodedVideo) -> Tuple[List[EncodedFrame], SeekResult]:
        """Return the I-frames together with seek statistics."""
        keyframes: List[EncodedFrame] = []
        keyframe_bytes = 0
        total_bytes = 0
        for frame in encoded.frames:
            total_bytes += frame.size_bytes
            if frame.frame_type is FrameType.I:
                keyframes.append(frame)
                keyframe_bytes += frame.size_bytes
        result = SeekResult(
            keyframe_indices=[frame.index for frame in keyframes],
            frames_scanned=encoded.num_frames,
            keyframe_bytes=keyframe_bytes,
            total_bytes=total_bytes,
        )
        return keyframes, result

    def seek_serialized(self, data: bytes
                        ) -> Tuple[VideoMetadata, List[FrameIndexEntry], SeekResult]:
        """Seek I-frames in a serialised container without reading payloads.

        Args:
            data: Bytes of a serialised :class:`EncodedVideo`.

        Returns:
            The video metadata, the index entries of the I-frames, and the
            seek statistics.

        Raises:
            BitstreamError: If the container is malformed.
        """
        metadata, entries = read_frame_index(data)
        keyframes = [entry for entry in entries if entry.is_keyframe]
        result = SeekResult(
            keyframe_indices=[entry.index for entry in keyframes],
            frames_scanned=len(entries),
            keyframe_bytes=sum(entry.size_bytes for entry in keyframes),
            total_bytes=sum(entry.size_bytes for entry in entries),
        )
        return metadata, keyframes, result

    def keyframe_indices(self, encoded: EncodedVideo) -> List[int]:
        """Indices of the I-frames of an encoded video."""
        return [frame.index for frame in encoded.frames
                if frame.frame_type is FrameType.I]


def seek_keyframes(encoded: EncodedVideo) -> List[EncodedFrame]:
    """Module-level convenience wrapper around :class:`IFrameSeeker.seek`."""
    return IFrameSeeker().seek(encoded)


def select_events_from_keyframes(keyframe_indices: Sequence[int],
                                 num_frames: int) -> List[Tuple[int, int]]:
    """Partition a video into segments induced by its I-frames.

    Every segment starts at an I-frame and extends to the frame before the
    next one; downstream, all frames of a segment inherit the labels detected
    on its leading I-frame.

    Args:
        keyframe_indices: Sorted I-frame indices (must start at 0).
        num_frames: Total number of frames in the video.

    Returns:
        List of ``(start_frame, end_frame_exclusive)`` segments.
    """
    if not keyframe_indices:
        return [(0, num_frames)] if num_frames else []
    indices = sorted(set(int(index) for index in keyframe_indices))
    if indices[0] != 0:
        raise BitstreamError("the first keyframe of a video must be frame 0")
    segments = []
    for position, start in enumerate(indices):
        stop = indices[position + 1] if position + 1 < len(indices) else num_frames
        segments.append((start, stop))
    return segments
