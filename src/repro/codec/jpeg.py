"""Still-image (JPEG-like) codec used for I-frame payloads.

The paper decodes I-frames "in the same way still JPEG images are
decompressed" and resizes them to the NN input resolution before shipping
them to the cloud.  This module provides that still-image path: an 8x8
DCT + quantisation + run/level entropy coder for single grayscale planes
(colour frames are encoded plane by plane).

The format is self-describing: a small header records dimensions, quality
and channel count so :func:`decode_image` needs no side information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import BitstreamError, CodecError
from .blocks import DEFAULT_BLOCK_SIZE, crop_plane, pad_plane, to_blocks, from_blocks
from .entropy import decode_blocks, encode_blocks, encoded_size_bytes
from .transform import (dct2_blocks, dequantise_blocks, idct2_blocks,
                        quantisation_matrix, quantise_blocks)

_MAGIC = b"SJPG"
_HEADER = struct.Struct(">4sHHBBB")  # magic, height, width, channels, quality, block


@dataclass(frozen=True)
class ImageCodecStats:
    """Statistics of one still-image encode.

    Attributes:
        encoded_bytes: Size of the encoded image (header included).
        raw_bytes: Size of the raw pixel data.
    """

    encoded_bytes: int
    raw_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Raw size divided by encoded size."""
        if self.encoded_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.encoded_bytes


def _encode_plane(plane: np.ndarray, quality: int, block_size: int) -> bytes:
    blocks = to_blocks(pad_plane(plane.astype(np.float64) - 128.0, block_size),
                       block_size)
    matrix = quantisation_matrix(quality, block_size)
    quantised = quantise_blocks(dct2_blocks(blocks), matrix)
    return encode_blocks(quantised)


def _decode_plane(payload: bytes, height: int, width: int, quality: int,
                  block_size: int) -> np.ndarray:
    padded_h = -(-height // block_size) * block_size
    padded_w = -(-width // block_size) * block_size
    blocks_y = padded_h // block_size
    blocks_x = padded_w // block_size
    quantised = decode_blocks(payload, blocks_y, blocks_x, block_size)
    matrix = quantisation_matrix(quality, block_size)
    reconstructed = idct2_blocks(dequantise_blocks(quantised, matrix)) + 128.0
    plane = crop_plane(from_blocks(reconstructed), height, width)
    return np.clip(plane, 0, 255).astype(np.uint8)


def encode_image(image: np.ndarray, quality: int = 75,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a grayscale or RGB ``uint8`` image.

    Args:
        image: Array of shape ``(H, W)`` or ``(H, W, 3)``.
        quality: JPEG-style quality factor in ``[1, 100]``.
        block_size: Transform block size.

    Returns:
        The encoded byte string (header + per-plane payloads).
    """
    image = np.asarray(image)
    if image.ndim == 2:
        planes = [image]
    elif image.ndim == 3 and image.shape[2] == 3:
        planes = [image[:, :, channel] for channel in range(3)]
    else:
        raise CodecError(f"encode_image expects (H, W) or (H, W, 3), got {image.shape}")
    height, width = image.shape[:2]
    if height == 0 or width == 0:
        raise CodecError("cannot encode an empty image")
    if height > 0xFFFF or width > 0xFFFF:
        raise CodecError("image dimensions exceed the 16-bit header fields")
    header = _HEADER.pack(_MAGIC, height, width, len(planes), int(quality),
                          int(block_size))
    pieces = [header]
    for plane in planes:
        payload = _encode_plane(plane, quality, block_size)
        pieces.append(struct.pack(">I", len(payload)))
        pieces.append(payload)
    return b"".join(pieces)


def decode_image(data: bytes) -> np.ndarray:
    """Decode :func:`encode_image` output back into a ``uint8`` array."""
    if len(data) < _HEADER.size:
        raise BitstreamError("image payload too short for header")
    magic, height, width, channels, quality, block_size = _HEADER.unpack(
        data[:_HEADER.size])
    if magic != _MAGIC:
        raise BitstreamError(f"bad still-image magic {magic!r}")
    offset = _HEADER.size
    planes = []
    for _ in range(channels):
        if offset + 4 > len(data):
            raise BitstreamError("truncated still-image plane header")
        (plane_length,) = struct.unpack(">I", data[offset:offset + 4])
        offset += 4
        if offset + plane_length > len(data):
            raise BitstreamError("truncated still-image plane payload")
        planes.append(_decode_plane(data[offset:offset + plane_length], height, width,
                                    quality, block_size))
        offset += plane_length
    if offset != len(data):
        raise BitstreamError("trailing bytes after still-image payload")
    if channels == 1:
        return planes[0]
    return np.stack(planes, axis=2)


def estimate_encoded_size(image: np.ndarray, quality: int = 75,
                          block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Exact encoded size of an image without materialising the bytes."""
    image = np.asarray(image)
    if image.ndim == 2:
        planes = [image]
    elif image.ndim == 3 and image.shape[2] == 3:
        planes = [image[:, :, channel] for channel in range(3)]
    else:
        raise CodecError(f"expected (H, W) or (H, W, 3), got {image.shape}")
    matrix = quantisation_matrix(quality, block_size)
    total = _HEADER.size
    for plane in planes:
        blocks = to_blocks(pad_plane(plane.astype(np.float64) - 128.0, block_size),
                           block_size)
        quantised = quantise_blocks(dct2_blocks(blocks), matrix)
        total += 4 + encoded_size_bytes(quantised)
    return total


def roundtrip_psnr(image: np.ndarray, quality: int = 75) -> Tuple[float, ImageCodecStats]:
    """Encode + decode an image and report PSNR and size statistics."""
    encoded = encode_image(image, quality)
    decoded = decode_image(encoded)
    original = np.asarray(image, dtype=np.float64)
    reconstructed = decoded.astype(np.float64)
    mse = float(np.mean((original - reconstructed) ** 2))
    psnr = float("inf") if mse == 0 else 10.0 * np.log10(255.0 ** 2 / mse)
    stats = ImageCodecStats(encoded_bytes=len(encoded),
                            raw_bytes=int(original.size))
    return psnr, stats
