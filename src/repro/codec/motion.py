"""Block-matching motion estimation and compensation.

The encoder predicts every P-frame block from the previous frame shifted by
a per-block motion vector.  Motion search is a candidate-set search (the
zero vector plus a small square neighbourhood), evaluated for *all* blocks
of a frame simultaneously: for each candidate displacement the whole
reference frame is shifted once and per-block SADs are computed with a
reshape/sum, which keeps pure-numpy encoding fast enough for
multi-thousand-frame videos.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..errors import CodecError
from .blocks import DEFAULT_BLOCK_SIZE, from_blocks, pad_plane, to_blocks


@lru_cache(maxsize=32)
def candidate_offsets(search_radius: int, step: int = 1) -> Tuple[Tuple[int, int], ...]:
    """Candidate motion vectors: the origin plus a square grid of offsets.

    Args:
        search_radius: Maximum absolute displacement in pixels per axis.
        step: Grid step between candidates.

    Returns:
        Tuple of ``(dy, dx)`` candidates, origin first.
    """
    if search_radius < 0:
        raise CodecError(f"search_radius must be >= 0, got {search_radius}")
    if step <= 0:
        raise CodecError(f"step must be positive, got {step}")
    offsets: List[Tuple[int, int]] = [(0, 0)]
    for dy in range(-search_radius, search_radius + 1, step):
        for dx in range(-search_radius, search_radius + 1, step):
            if (dy, dx) != (0, 0):
                offsets.append((dy, dx))
    return tuple(offsets)


def shift_plane(plane: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a plane by ``(dy, dx)`` with edge replication.

    A positive ``dy`` moves content downwards, i.e. the value at ``(y, x)``
    of the result is the value at ``(y - dy, x - dx)`` of the input clamped
    to the frame.
    """
    height, width = plane.shape
    ys = np.clip(np.arange(height) - dy, 0, height - 1)
    xs = np.clip(np.arange(width) - dx, 0, width - 1)
    return plane[np.ix_(ys, xs)]


@dataclass
class MotionField:
    """Result of motion estimation for one frame.

    Attributes:
        vectors: Integer motion vectors, shape ``(blocks_y, blocks_x, 2)``
            ordered ``(dy, dx)``.
        block_sad: Best per-block sum of absolute differences.
        zero_sad: Per-block SAD of the zero-motion candidate.
        block_size: Block edge length used for the estimation.
    """

    vectors: np.ndarray
    block_sad: np.ndarray
    zero_sad: np.ndarray
    block_size: int

    @property
    def mean_sad_per_pixel(self) -> float:
        """Mean absolute prediction error per pixel over the whole frame."""
        return float(self.block_sad.mean() / (self.block_size ** 2))

    @property
    def nonzero_vector_fraction(self) -> float:
        """Fraction of blocks with a non-zero motion vector."""
        moving = np.any(self.vectors != 0, axis=2)
        return float(moving.mean())


def estimate_motion(reference: np.ndarray, current: np.ndarray,
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    search_radius: int = 3, search_step: int = 1) -> MotionField:
    """Estimate per-block motion of ``current`` with respect to ``reference``.

    Args:
        reference: Previous (reference) luma plane, float or uint8.
        current: Current luma plane of the same shape.
        block_size: Macroblock size.
        search_radius: Maximum displacement searched per axis.
        search_step: Candidate grid step (``2`` halves the search cost).

    Returns:
        The :class:`MotionField` with the best candidate per block.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.shape != current.shape:
        raise CodecError(
            f"reference {reference.shape} and current {current.shape} differ in shape")
    reference = pad_plane(reference, block_size)
    current = pad_plane(current, block_size)
    current_blocks = to_blocks(current, block_size)
    blocks_y, blocks_x = current_blocks.shape[:2]

    offsets = candidate_offsets(search_radius, search_step)
    best_sad = np.full((blocks_y, blocks_x), np.inf)
    best_vector = np.zeros((blocks_y, blocks_x, 2), dtype=np.int16)
    zero_sad = None
    for dy, dx in offsets:
        predicted = shift_plane(reference, dy, dx)
        sad = np.abs(to_blocks(predicted, block_size) - current_blocks).sum(axis=(2, 3))
        if (dy, dx) == (0, 0):
            zero_sad = sad
        better = sad < best_sad
        best_sad = np.where(better, sad, best_sad)
        best_vector[better] = (dy, dx)
    assert zero_sad is not None  # the origin is always the first candidate
    return MotionField(vectors=best_vector, block_sad=best_sad,
                       zero_sad=zero_sad, block_size=block_size)


def motion_compensate(reference: np.ndarray, field: MotionField,
                      output_shape: Tuple[int, int]) -> np.ndarray:
    """Build the motion-compensated prediction of the current frame.

    Args:
        reference: Previous reconstructed luma plane.
        field: Motion field estimated for the current frame.
        output_shape: ``(height, width)`` of the original (unpadded) frame.

    Returns:
        The prediction plane cropped to ``output_shape``.
    """
    reference = pad_plane(np.asarray(reference, dtype=np.float64), field.block_size)
    blocks_y, blocks_x = field.vectors.shape[:2]
    expected_shape = (blocks_y * field.block_size, blocks_x * field.block_size)
    if reference.shape != expected_shape:
        raise CodecError(
            f"reference shape {reference.shape} does not match motion field "
            f"{expected_shape}")
    prediction_blocks = np.empty((blocks_y, blocks_x, field.block_size,
                                  field.block_size))
    unique_vectors = {tuple(v) for v in field.vectors.reshape(-1, 2)}
    for dy, dx in unique_vectors:
        shifted_blocks = to_blocks(shift_plane(reference, int(dy), int(dx)),
                                   field.block_size)
        mask = np.all(field.vectors == (dy, dx), axis=2)
        prediction_blocks[mask] = shifted_blocks[mask]
    prediction = from_blocks(prediction_blocks)
    return prediction[:output_shape[0], :output_shape[1]]


def residual_plane(current: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Prediction residual (current minus prediction) as float64."""
    current = np.asarray(current, dtype=np.float64)
    if current.shape != prediction.shape:
        raise CodecError(
            f"current {current.shape} and prediction {prediction.shape} differ in shape")
    return current - prediction
