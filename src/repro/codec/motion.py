"""Block-matching motion estimation and compensation.

The encoder predicts every P-frame block from the previous frame shifted by
a per-block motion vector.  Motion search is a candidate-set search (the
zero vector plus a small square neighbourhood), evaluated for *all* blocks
of a frame simultaneously: for each candidate displacement the whole
reference frame is shifted once and per-block SADs are computed with a
reshape/sum, which keeps pure-numpy encoding fast enough for
multi-thousand-frame videos.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from ..contracts import (NumericContract, PRECISION_EXACT, resolve_contract,
                         validate_precision)
from ..errors import CodecError
from .blocks import DEFAULT_BLOCK_SIZE, from_blocks, pad_plane, to_blocks


@lru_cache(maxsize=32)
def candidate_offsets(search_radius: int, step: int = 1) -> Tuple[Tuple[int, int], ...]:
    """Candidate motion vectors: the origin plus a square grid of offsets.

    Args:
        search_radius: Maximum absolute displacement in pixels per axis.
        step: Grid step between candidates.

    Returns:
        Tuple of ``(dy, dx)`` candidates, origin first.
    """
    if search_radius < 0:
        raise CodecError(f"search_radius must be >= 0, got {search_radius}")
    if step <= 0:
        raise CodecError(f"step must be positive, got {step}")
    offsets: List[Tuple[int, int]] = [(0, 0)]
    for dy in range(-search_radius, search_radius + 1, step):
        for dx in range(-search_radius, search_radius + 1, step):
            if (dy, dx) != (0, 0):
                offsets.append((dy, dx))
    return tuple(offsets)


def pad_edge(plane: np.ndarray, radius: int) -> np.ndarray:
    """Pad a plane by ``radius`` on every side with edge replication.

    Equivalent to ``np.pad(plane, radius, mode="edge")`` but hand-rolled —
    np.pad's generic machinery dominates the copy cost on this per-frame
    hot path.
    """
    if radius <= 0:
        return plane
    height, width = plane.shape
    padded = np.empty((height + 2 * radius, width + 2 * radius),
                      dtype=plane.dtype)
    padded[radius:height + radius, radius:width + radius] = plane
    padded[:radius, radius:width + radius] = plane[0]
    padded[height + radius:, radius:width + radius] = plane[-1]
    padded[:, :radius] = padded[:, radius:radius + 1]
    padded[:, width + radius:] = padded[:, width + radius - 1:width + radius]
    return padded


def shift_plane(plane: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a plane by ``(dy, dx)`` with edge replication.

    A positive ``dy`` moves content downwards, i.e. the value at ``(y, x)``
    of the result is the value at ``(y - dy, x - dx)`` of the input clamped
    to the frame.
    """
    height, width = plane.shape
    ys = np.clip(np.arange(height) - dy, 0, height - 1)
    xs = np.clip(np.arange(width) - dx, 0, width - 1)
    return plane[np.ix_(ys, xs)]


@dataclass
class MotionField:
    """Result of motion estimation for one frame.

    Attributes:
        vectors: Integer motion vectors, shape ``(blocks_y, blocks_x, 2)``
            ordered ``(dy, dx)``.
        block_sad: Best per-block sum of absolute differences.
        zero_sad: Per-block SAD of the zero-motion candidate.
        block_size: Block edge length used for the estimation.
    """

    vectors: np.ndarray
    block_sad: np.ndarray
    zero_sad: np.ndarray
    block_size: int

    @property
    def mean_sad_per_pixel(self) -> float:
        """Mean absolute prediction error per pixel over the whole frame."""
        return float(self.block_sad.mean() / (self.block_size ** 2))

    @property
    def nonzero_vector_fraction(self) -> float:
        """Fraction of blocks with a non-zero motion vector."""
        moving = np.any(self.vectors != 0, axis=2)
        return float(moving.mean())


def estimate_motion(reference: np.ndarray, current: np.ndarray,
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    search_radius: int = 3, search_step: int = 1,
                    precision: str = PRECISION_EXACT,
                    contract: Optional[NumericContract] = None) -> MotionField:
    """Estimate per-block motion of ``current`` with respect to ``reference``.

    Args:
        reference: Previous (reference) luma plane, float or uint8.
        current: Current luma plane of the same shape.
        block_size: Macroblock size.
        search_radius: Maximum displacement searched per axis.
        search_step: Candidate grid step (``2`` halves the search cost).
        precision: ``"exact"`` (default) runs the float64 search that is
            bit-identical to the seed implementation; ``"fast"`` runs the
            float32 dot-product SAD reduction with an exact-argmin fallback
            on near-ties (see :func:`_estimate_motion_fast`).
        contract: Numeric contract supplying the near-tie margin of the
            fast path (defaults to the contract of ``precision``).

    Returns:
        The :class:`MotionField` with the best candidate per block.
    """
    validate_precision(precision)
    if precision != PRECISION_EXACT:
        return _estimate_motion_fast(reference, current, block_size,
                                     search_radius, search_step,
                                     contract or resolve_contract(precision))
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.shape != current.shape:
        raise CodecError(
            f"reference {reference.shape} and current {current.shape} differ in shape")
    reference = pad_plane(reference, block_size)
    current = pad_plane(current, block_size)
    current_blocks = to_blocks(current, block_size)
    blocks_y, blocks_x = current_blocks.shape[:2]
    height, width = current.shape

    offsets = candidate_offsets(search_radius, search_step)
    # Pad the reference once by the search radius (edge replication); every
    # candidate shift is then a pure slice view into the padded plane, which
    # is what makes the search fast — no per-candidate index arithmetic or
    # gather.  ``padded[r-dy : r-dy+H, r-dx : r-dx+W]`` equals
    # ``shift_plane(reference, dy, dx)`` for every ``|dy|, |dx| <= r``.
    padded = pad_edge(reference, search_radius)
    # One reusable frame-sized diff buffer: fusing subtract/abs/block-sum per
    # candidate keeps the working set in cache instead of streaming a
    # (candidates, H, W) stack through memory.  The diff stays in plane
    # memory order, so the per-block summation pattern — and therefore every
    # SAD value — is bit-identical to the original per-candidate
    # ``to_blocks(...).sum(axis=(2, 3))``.
    diff = np.empty((height, width))
    blocked = diff.reshape(blocks_y, block_size, blocks_x, block_size)
    sads = np.empty((len(offsets), blocks_y, blocks_x))
    for index, (dy, dx) in enumerate(offsets):
        shifted = padded[search_radius - dy:search_radius - dy + height,
                         search_radius - dx:search_radius - dx + width]
        np.subtract(shifted, current, out=diff)
        np.abs(diff, out=diff)
        sads[index] = blocked.sum(axis=(1, 3))
    # argmin returns the first minimum along the candidate axis, matching the
    # original loop's first-candidate-wins tie-break (origin first).
    best_index = sads.argmin(axis=0)
    best_sad = sads.min(axis=0)
    offset_table = np.asarray(offsets, dtype=np.int16)
    best_vector = offset_table[best_index]
    return MotionField(vectors=best_vector, block_sad=best_sad,
                       zero_sad=sads[0], block_size=block_size)


def _estimate_motion_fast(reference: np.ndarray, current: np.ndarray,
                          block_size: int, search_radius: int,
                          search_step: int,
                          contract: NumericContract) -> MotionField:
    """float32 motion search with an exact-argmin fallback on near-ties.

    The per-candidate SAD surface is computed in float32 (halving the
    memory traffic that dominates this path) and reduced per block with two
    dot products against a ones vector instead of numpy's generic
    two-small-axis reduction.  Both changes reassociate the summation, so
    the SAD values live under ``contract.sad_values`` rather than the
    bit-identity contract.

    Argmin stability is restored where it matters: every block whose
    float32 gap between best and second-best candidate falls inside the
    ``contract.sad_tie`` margin has its full candidate row recomputed in
    float64 and its winner (and SAD) replaced by the exact result — so
    genuine ties resolve by the exact path's first-candidate-wins rule, and
    a fast/exact vector disagreement can only happen when two candidates
    are *nearly* tied beyond float32 resolution but outside the margin,
    which ``contract.sad_argmin`` budgets for.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.shape != current.shape:
        raise CodecError(
            f"reference {reference.shape} and current {current.shape} differ in shape")
    reference = pad_plane(reference, block_size)
    current = pad_plane(current, block_size)
    blocks_y = current.shape[0] // block_size
    blocks_x = current.shape[1] // block_size
    height, width = current.shape

    offsets = candidate_offsets(search_radius, search_step)
    padded = pad_edge(reference, search_radius)
    padded32 = padded.astype(np.float32)
    current32 = current.astype(np.float32)
    diff = np.empty((height, width), dtype=np.float32)
    blocked = diff.reshape(blocks_y, block_size, blocks_x, block_size)
    ones = np.ones(block_size, dtype=np.float32)
    sads = np.empty((len(offsets), blocks_y, blocks_x), dtype=np.float32)
    for index, (dy, dx) in enumerate(offsets):
        shifted = padded32[search_radius - dy:search_radius - dy + height,
                           search_radius - dx:search_radius - dx + width]
        np.subtract(shifted, current32, out=diff)
        np.abs(diff, out=diff)
        # Dot-product reduction: matmul over the inner block axis, then
        # over the block-row axis.
        sads[index] = (blocked @ ones).transpose(0, 2, 1) @ ones

    best_index = sads.argmin(axis=0)
    block_sad = sads.min(axis=0).astype(np.float64)
    zero_sad = sads[0].astype(np.float64)

    if len(offsets) > 1:
        runner_up = np.partition(sads, 1, axis=0)[1].astype(np.float64)
        near_tie = (runner_up - block_sad) <= contract.sad_tie.margin(block_sad)
        if np.any(near_tie):
            tied_y, tied_x = np.nonzero(near_tie)
            exact_sads = _exact_block_sads(padded, current, block_size,
                                           search_radius, offsets,
                                           tied_y, tied_x)
            best_index[near_tie] = exact_sads.argmin(axis=0)
            block_sad[near_tie] = exact_sads.min(axis=0)
            zero_sad[near_tie] = exact_sads[0]

    offset_table = np.asarray(offsets, dtype=np.int16)
    best_vector = offset_table[best_index]
    return MotionField(vectors=best_vector, block_sad=block_sad,
                       zero_sad=zero_sad, block_size=block_size)


def _exact_block_sads(padded: np.ndarray, current: np.ndarray,
                      block_size: int, search_radius: int,
                      offsets: Tuple[Tuple[int, int], ...],
                      tied_y: np.ndarray, tied_x: np.ndarray) -> np.ndarray:
    """float64 SADs of every candidate for the selected blocks.

    ``padded`` is the reference plane pre-padded by ``search_radius``.
    Returns an array of shape ``(num_candidates, num_blocks)`` in candidate
    order (origin first), computed entirely in float64 so its argmin
    resolves ties like the exact search does.
    """
    current_blocks = to_blocks(current, block_size)
    tied_blocks = current_blocks[tied_y, tied_x]
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (block_size, block_size))
    rows = tied_y * block_size
    cols = tied_x * block_size
    sads = np.empty((len(offsets), len(tied_y)))
    for index, (dy, dx) in enumerate(offsets):
        shifted = windows[search_radius - dy + rows, search_radius - dx + cols]
        sads[index] = np.abs(shifted - tied_blocks).sum(axis=(1, 2))
    return sads


def motion_compensate(reference: np.ndarray, field: MotionField,
                      output_shape: Tuple[int, int]) -> np.ndarray:
    """Build the motion-compensated prediction of the current frame.

    Args:
        reference: Previous reconstructed luma plane.
        field: Motion field estimated for the current frame.
        output_shape: ``(height, width)`` of the original (unpadded) frame.

    Returns:
        The prediction plane cropped to ``output_shape``.
    """
    reference = pad_plane(np.asarray(reference, dtype=np.float64), field.block_size)
    blocks_y, blocks_x = field.vectors.shape[:2]
    expected_shape = (blocks_y * field.block_size, blocks_x * field.block_size)
    if reference.shape != expected_shape:
        raise CodecError(
            f"reference shape {reference.shape} does not match motion field "
            f"{expected_shape}")
    prediction_blocks = np.empty((blocks_y, blocks_x, field.block_size,
                                  field.block_size))
    height, width = reference.shape
    unique_vectors = np.unique(field.vectors.reshape(-1, 2), axis=0)
    radius = int(np.abs(unique_vectors).max())
    padded = pad_edge(reference, radius)
    for dy, dx in unique_vectors:
        dy, dx = int(dy), int(dx)
        shifted = padded[radius - dy:radius - dy + height,
                         radius - dx:radius - dx + width]
        shifted_blocks = to_blocks(shifted, field.block_size)
        mask = np.all(field.vectors == (dy, dx), axis=2)
        prediction_blocks[mask] = shifted_blocks[mask]
    prediction = from_blocks(prediction_blocks)
    return prediction[:output_shape[0], :output_shape[1]]


def residual_plane(current: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Prediction residual (current minus prediction) as float64."""
    current = np.asarray(current, dtype=np.float64)
    if current.shape != prediction.shape:
        raise CodecError(
            f"current {current.shape} and prediction {prediction.shape} differ in shape")
    return current - prediction
