"""Scene-cut analysis: the heart of the semantic video encoder.

An x264-style encoder decides to emit an I-frame when the current frame is
"hard to predict" from the previous one; the ``--scenecut`` parameter (0-400)
controls how aggressively that decision is made.  SiEVE's contribution is to
*tune* that parameter (together with the GOP size) so the decision fires
exactly when an object enters or leaves the scene.

This module implements the per-frame analysis.  For every frame we run
block-matching motion estimation against the previous frame and compute:

* ``inter_cost``  — total SAD of the best motion-compensated prediction,
* ``intra_cost``  — total SAD of a cheap intra predictor (per-block DC),
* ``novel_block_fraction`` — the fraction of macroblocks that contain
  *new content*: at least :data:`NOVEL_PIXEL_COUNT` pixels whose
  motion-compensated residual exceeds :data:`NOVEL_PIXEL_THRESHOLD` luma
  levels.  Sensor noise never reaches that threshold, so the score is a
  noise-robust measure of how much of the frame could not be explained by
  motion from the previous frame — exactly the situation when a new object
  appears (its pixels did not exist before) or leaves (the background it
  occluded reappears).

The scenecut *decision* maps the 0-400 threshold onto a required
``novel_block_fraction`` via :func:`scenecut_score_threshold`: higher
thresholds demand less novelty, i.e. place I-frames more aggressively —
matching the paper's description ("the higher the scenecut threshold value,
the more sensitive it is to small motion").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..contracts import validate_precision
from ..errors import CodecError
from .blocks import DEFAULT_BLOCK_SIZE, pad_plane, to_blocks
from .motion import estimate_motion, motion_compensate

#: Residual magnitude (luma levels) above which a pixel counts as novel.
#: Sensor noise in the synthetic scenes has a standard deviation of 2-3
#: levels, so 25 is far outside the noise distribution, while objects have
#: luma deltas of 45-95.
NOVEL_PIXEL_THRESHOLD = 25.0

#: Number of novel pixels a macroblock must contain to count as a novel block.
NOVEL_PIXEL_COUNT = 4

#: Maximum scenecut threshold accepted by x264 (and by this reproduction).
MAX_SCENECUT = 400

#: Scale/shape of the threshold-to-score mapping (see
#: :func:`scenecut_score_threshold`).
_SCORE_SCALE = 0.4
_SCORE_GAMMA = 6.0


@dataclass(frozen=True)
class FrameActivity:
    """Motion-analysis statistics of one frame relative to its predecessor.

    Attributes:
        frame_index: Index of the analysed frame.
        inter_cost: Total SAD of the best motion-compensated prediction.
        intra_cost: Total SAD of the per-block DC intra predictor.
        novel_block_fraction: Fraction of macroblocks with new content.
        moving_block_fraction: Fraction of blocks with non-zero motion vectors.
        is_first: Whether this is the first frame of the video (always an
            I-frame, with no predecessor to analyse).
    """

    frame_index: int
    inter_cost: float
    intra_cost: float
    novel_block_fraction: float
    moving_block_fraction: float
    is_first: bool = False

    @property
    def predictability(self) -> float:
        """Inter/intra cost ratio; small values mean cheap P-frames."""
        if self.intra_cost <= 0:
            return 0.0
        return self.inter_cost / self.intra_cost


def scenecut_score_threshold(scenecut: float) -> float:
    """Map an x264-style scenecut threshold (0-400) to a required novelty score.

    The mapping is monotonically decreasing: ``scenecut=0`` effectively
    disables scene-cut I-frames (a score above ``_SCORE_SCALE`` would be
    needed, which only a full scene change produces), while ``scenecut=400``
    accepts any non-zero novelty.  The sixth-power shape gives the wide
    dynamic range the paper's tuning relies on: thresholds of 100-250 map to
    required novel-block fractions of roughly 7 %% down to 0.1 %%, spanning
    close-up vehicles down to distant boats.

    Args:
        scenecut: Threshold in ``[0, 400]``; values outside are clipped.

    Returns:
        The minimum ``novel_block_fraction`` that triggers a scene cut.
    """
    clipped = float(np.clip(scenecut, 0.0, MAX_SCENECUT))
    if clipped >= MAX_SCENECUT:
        return 0.0
    return _SCORE_SCALE * (1.0 - clipped / MAX_SCENECUT) ** _SCORE_GAMMA


def is_scenecut(activity: FrameActivity, scenecut: float) -> bool:
    """Whether ``activity`` crosses the scene-cut decision for ``scenecut``."""
    if activity.is_first:
        return True
    if scenecut <= 0:
        return False
    threshold = scenecut_score_threshold(scenecut)
    return activity.novel_block_fraction > max(threshold, 1e-12)


class SceneCutAnalyzer:
    """Per-frame motion/novelty analyser.

    The analyser is stateful: feed frames in presentation order with
    :meth:`analyze_next`, or analyse a whole video with
    :meth:`analyze_video`.  The statistics depend only on consecutive frame
    pairs, never on encoder parameters, so one analysis pass can be reused to
    evaluate every (GOP, scenecut) configuration — this is what makes the
    offline tuner of Section IV cheap.

    Args:
        block_size: Macroblock size for motion estimation.
        search_radius: Motion search radius in pixels.
        search_step: Motion search grid step.
        novel_pixel_threshold: Override of :data:`NOVEL_PIXEL_THRESHOLD`.
        novel_pixel_count: Override of :data:`NOVEL_PIXEL_COUNT`.
        precision: Numeric mode of the motion search (``"exact"`` default;
            ``"fast"`` selects the float32 SAD path under the tolerance
            contract).
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE, search_radius: int = 2,
                 search_step: int = 1,
                 novel_pixel_threshold: float = NOVEL_PIXEL_THRESHOLD,
                 novel_pixel_count: int = NOVEL_PIXEL_COUNT,
                 precision: str = "exact") -> None:
        if block_size <= 0:
            raise CodecError("block_size must be positive")
        if novel_pixel_threshold <= 0:
            raise CodecError("novel_pixel_threshold must be positive")
        if novel_pixel_count < 1:
            raise CodecError("novel_pixel_count must be >= 1")
        self.block_size = block_size
        self.search_radius = search_radius
        self.search_step = search_step
        self.novel_pixel_threshold = float(novel_pixel_threshold)
        self.novel_pixel_count = int(novel_pixel_count)
        self.precision = validate_precision(precision)
        self._previous: Optional[np.ndarray] = None
        self._frame_index = 0

    def reset(self) -> None:
        """Forget the previous frame and restart frame numbering."""
        self._previous = None
        self._frame_index = 0

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def _intra_cost(self, plane: np.ndarray) -> float:
        """Total SAD of the per-block DC (mean) intra predictor."""
        blocks = to_blocks(pad_plane(plane, self.block_size), self.block_size)
        means = blocks.mean(axis=(2, 3), keepdims=True)
        return float(np.abs(blocks - means).sum())

    def analyze_pair(self, previous: np.ndarray, current: np.ndarray,
                     frame_index: int) -> FrameActivity:
        """Analyse ``current`` against ``previous`` (both luma planes)."""
        previous = np.asarray(previous, dtype=np.float64)
        current = np.asarray(current, dtype=np.float64)
        field = estimate_motion(previous, current, self.block_size,
                                self.search_radius, self.search_step,
                                precision=self.precision)
        prediction = motion_compensate(previous, field, current.shape)
        residual = np.abs(current - prediction)
        residual_blocks = to_blocks(pad_plane(residual, self.block_size),
                                    self.block_size)
        novel_pixels = (residual_blocks > self.novel_pixel_threshold).sum(axis=(2, 3))
        novel_blocks = novel_pixels >= self.novel_pixel_count
        return FrameActivity(
            frame_index=frame_index,
            inter_cost=float(field.block_sad.sum()),
            intra_cost=self._intra_cost(current),
            novel_block_fraction=float(novel_blocks.mean()),
            moving_block_fraction=field.nonzero_vector_fraction,
            is_first=False,
        )

    def analyze_next(self, luma: np.ndarray) -> FrameActivity:
        """Analyse the next frame of a stream (presentation order)."""
        luma = np.asarray(luma, dtype=np.float64)
        index = self._frame_index
        if self._previous is None:
            activity = FrameActivity(frame_index=index, inter_cost=0.0,
                                     intra_cost=self._intra_cost(luma),
                                     novel_block_fraction=1.0,
                                     moving_block_fraction=0.0, is_first=True)
        else:
            activity = self.analyze_pair(self._previous, luma, index)
        self._previous = luma
        self._frame_index += 1
        return activity

    def analyze_video(self, video) -> List[FrameActivity]:
        """Analyse every frame of a :class:`~repro.video.raw_video.VideoSource`."""
        self.reset()
        activities = []
        for frame in video.frames():
            activities.append(self.analyze_next(frame.to_grayscale()))
        return activities


def novelty_series(activities: Sequence[FrameActivity]) -> np.ndarray:
    """Extract the ``novel_block_fraction`` series from an analysis pass."""
    return np.array([a.novel_block_fraction for a in activities], dtype=np.float64)


def summarize_activities(activities: Iterable[FrameActivity]) -> dict:
    """Aggregate statistics of an analysis pass (for logging/tests)."""
    activities = list(activities)
    if not activities:
        return {"num_frames": 0}
    novelty = novelty_series(activities)
    return {
        "num_frames": len(activities),
        "mean_novelty": float(novelty.mean()),
        "max_novelty": float(novelty.max()),
        "frames_with_novelty": int((novelty > 0).sum()),
        "mean_predictability": float(np.mean([a.predictability for a in activities])),
    }
