"""Block transform and quantisation.

The codec uses the classic JPEG/MPEG toolchain: an 8x8 type-II DCT followed
by quantisation with a perceptual quantisation matrix scaled by a quality
factor.  All operations are vectorised over a 4-D block array
``(blocks_y, blocks_x, block, block)`` so that whole frames are transformed
with a couple of einsums.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import CodecError

#: The standard JPEG luminance quantisation matrix (ITU-T T.81 Annex K).
JPEG_LUMA_QUANT = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


@lru_cache(maxsize=8)
def dct_matrix(size: int) -> np.ndarray:
    """Return the orthonormal type-II DCT matrix of the given size.

    ``dct_matrix(n) @ x`` computes the 1-D DCT of a length-``n`` signal; the
    matrix is orthonormal so its transpose is the inverse transform.
    """
    if size <= 0:
        raise CodecError(f"DCT size must be positive, got {size}")
    k = np.arange(size).reshape(-1, 1)
    n = np.arange(size).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    matrix *= np.sqrt(2.0 / size)
    matrix[0, :] *= np.sqrt(0.5)
    return matrix


def dct2_blocks(blocks: np.ndarray) -> np.ndarray:
    """Apply the 2-D DCT to every block of a 4-D block array.

    Implemented as broadcast matrix products (``M @ blocks @ M.T``), which
    performs the same two contractions as the original optimised einsum —
    bit-identical results — without einsum's per-call parsing overhead.
    """
    if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
        raise CodecError(f"expected (by, bx, b, b) blocks, got {blocks.shape}")
    matrix = dct_matrix(blocks.shape[2])
    return matrix @ blocks @ matrix.T


def idct2_blocks(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of every block of a 4-D coefficient array."""
    if coefficients.ndim != 4 or coefficients.shape[2] != coefficients.shape[3]:
        raise CodecError(f"expected (by, bx, b, b) blocks, got {coefficients.shape}")
    matrix = dct_matrix(coefficients.shape[2])
    return matrix.T @ coefficients @ matrix


def quality_to_scale(quality: int) -> float:
    """Map a JPEG-style quality factor (1-100) to a quant-matrix scale.

    Uses the libjpeg convention: quality 50 keeps the reference matrix,
    higher qualities shrink it (finer quantisation), lower qualities grow it.
    """
    quality = int(quality)
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        return 5000.0 / quality / 100.0
    return (200.0 - 2.0 * quality) / 100.0


def quantisation_matrix(quality: int, block_size: int = 8,
                        base: np.ndarray = JPEG_LUMA_QUANT) -> np.ndarray:
    """Build the quantisation matrix for ``quality`` and ``block_size``.

    Block sizes other than 8 reuse the JPEG matrix by bilinear resampling of
    its entries, which preserves the low-frequency-fine / high-frequency-
    coarse structure.
    """
    scale = quality_to_scale(quality)
    matrix = base
    if block_size != base.shape[0]:
        source = np.linspace(0, base.shape[0] - 1, block_size)
        xi = np.clip(source.astype(int), 0, base.shape[0] - 2)
        frac = source - xi
        rows = (base[xi, :] * (1 - frac)[:, None] + base[xi + 1, :] * frac[:, None])
        cols_idx = xi
        matrix = (rows[:, cols_idx] * (1 - frac)[None, :]
                  + rows[:, np.clip(cols_idx + 1, 0, base.shape[0] - 1)] * frac[None, :])
    scaled = np.floor(matrix * scale + 0.5)
    return np.clip(scaled, 1, 255)


def quantise_blocks(coefficients: np.ndarray, quant_matrix: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients to integers (round-to-nearest)."""
    return np.round(coefficients / quant_matrix).astype(np.int32)


def dequantise_blocks(quantised: np.ndarray, quant_matrix: np.ndarray) -> np.ndarray:
    """Reconstruct approximate DCT coefficients from quantised integers."""
    return quantised.astype(np.float64) * quant_matrix


def transform_and_quantise(blocks: np.ndarray, quality: int) -> np.ndarray:
    """DCT + quantise a 4-D block array in one call."""
    matrix = quantisation_matrix(quality, blocks.shape[2])
    return quantise_blocks(dct2_blocks(blocks), matrix)


def reconstruct_blocks(quantised: np.ndarray, quality: int) -> np.ndarray:
    """Dequantise + inverse DCT a 4-D quantised coefficient array."""
    matrix = quantisation_matrix(quality, quantised.shape[2])
    return idct2_blocks(dequantise_blocks(quantised, matrix))
