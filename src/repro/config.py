"""Library-wide configuration objects.

Most components take their own dataclass configs (encoder parameters, scene
profiles, node specs, ...).  This module holds the handful of settings that
are shared across subsystems, most importantly the default hardware
calibration used by the discrete-event cost model that stands in for the
paper's physical edge/cloud testbed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, asdict
from typing import Dict

from .contracts import (PRECISION_ENV, PRECISION_EXACT, NumericContract,
                        resolve_contract, validate_precision)
from .errors import ConfigurationError

#: Default wide-area bandwidth between edge and cloud, from Section V of the
#: paper ("We control the bandwidth from edge to cloud server to be 30 Mbps").
DEFAULT_EDGE_CLOUD_BANDWIDTH_MBPS = 30.0

#: Default local bandwidth between camera and edge (not constrained in the
#: paper; cameras stream over a local network).
DEFAULT_CAMERA_EDGE_BANDWIDTH_MBPS = 100.0

#: Resolution the paper resizes I-frames to before shipping them to the
#: cloud-side YOLO model ("resizing them to the resolution of the YOLO model
#: (i.e., 300x300)").
NN_INPUT_RESOLUTION = (300, 300)

#: How the multiprocess fleet ships array payloads to its workers (see
#: :mod:`repro.parallel.transport`).  ``"pickle"`` is the original pool
#: channel, ``"shm"`` uses ``multiprocessing.shared_memory`` segments, and
#: ``"auto"`` picks shared memory when the platform supports it.  The
#: constants live here (not in the parallel package) so config validation
#: never imports the execution layer.
TRANSPORT_PICKLE = "pickle"
TRANSPORT_SHM = "shm"
TRANSPORT_AUTO = "auto"
TRANSPORT_MODES = (TRANSPORT_PICKLE, TRANSPORT_SHM, TRANSPORT_AUTO)


def validate_transport(mode: str) -> str:
    """Validate a ``fleet_transport`` setting, returning it unchanged."""
    if mode not in TRANSPORT_MODES:
        raise ConfigurationError(
            f"fleet_transport must be one of {TRANSPORT_MODES}, got {mode!r}")
    return mode


def default_precision() -> str:
    """The default numeric precision mode.

    ``"exact"`` unless the ``REPRO_PRECISION`` environment variable selects
    another mode — which is how the CI matrix leg runs the whole tier-1
    suite under the float32 fast paths without code changes.
    """
    return validate_precision(
        os.environ.get(PRECISION_ENV, PRECISION_EXACT).strip() or PRECISION_EXACT)


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    Resolution order: the scheduling-affinity mask first
    (``len(os.sched_getaffinity(0))`` — it honours container cpusets,
    cgroup CPU pinning and ``taskset`` restrictions, where
    :func:`os.cpu_count` reports the whole machine and over-subscribes
    CI containers), then :func:`os.cpu_count`, then ``1``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:  # absent on macOS/Windows
        try:
            affinity = getaffinity(0)
        except OSError:
            affinity = None
        if affinity:
            return len(affinity)
    return max(os.cpu_count() or 1, 1)


def resolve_worker_count(workers: int, name: str) -> int:
    """Resolve a worker-count setting, treating ``0`` as "auto".

    ``0`` sizes the pool from :func:`available_cpu_count` (affinity mask
    first, then :func:`os.cpu_count`, then ``1``); positive values pass
    through unchanged.
    """
    if workers < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {workers}")
    if workers == 0:
        return available_cpu_count()
    return workers


@dataclass(frozen=True)
class HardwareCalibration:
    """Per-operation costs used by the simulated cluster.

    The values are calibrated to the measurements reported in Section V of
    the paper for the edge desktop (Intel i7-5600) and mirror the relative
    costs the evaluation depends on:

    * I-frame seeking costs ``seek_ms_per_frame_1080p`` scaled by resolution
      (0.43 ms/frame at 1080p, Table III discussion).
    * Full-frame decode costs ``decode_ms_per_frame_1080p`` scaled by
      resolution (8 ms/frame at 1080p).
    * MSE / SIFT similarity add their own per-pixel costs on top of decode.
    * NN inference has a fixed per-frame cost that differs between edge and
      cloud (the cloud Xeon is faster for batch NN serving in the paper's
      setup because it hosts the full model).

    Attributes:
        seek_ms_per_frame_1080p: Metadata-only I-frame seek cost at 1080p.
        decode_ms_per_frame_1080p: Full decode cost per frame at 1080p.
        mse_ms_per_frame_1080p: MSE similarity cost per decoded frame at 1080p.
        sift_ms_per_frame_1080p: SIFT feature+match cost per frame at 1080p.
        jpeg_decode_ms_per_frame_1080p: Still-image decode of one I-frame.
        resize_ms_per_frame: Cost of resizing a decoded frame to the NN input.
        edge_nn_ms_per_frame: NN inference per frame on the edge device.
        cloud_nn_ms_per_frame: NN inference per frame on the cloud server.
        edge_speed_factor: Relative CPU speed of the edge device (1.0 = edge).
        cloud_speed_factor: Relative CPU speed of the cloud server.
    """

    seek_ms_per_frame_1080p: float = 0.43
    decode_ms_per_frame_1080p: float = 11.0
    mse_ms_per_frame_1080p: float = 37.0
    sift_ms_per_frame_1080p: float = 54.0
    jpeg_decode_ms_per_frame_1080p: float = 6.0
    resize_ms_per_frame: float = 1.5
    edge_nn_ms_per_frame: float = 150.0
    cloud_nn_ms_per_frame: float = 45.0
    edge_speed_factor: float = 1.0
    cloud_speed_factor: float = 2.2

    def __post_init__(self) -> None:
        for name, value in asdict(self).items():
            if value <= 0:
                raise ConfigurationError(
                    f"HardwareCalibration.{name} must be positive, got {value!r}")

    def as_dict(self) -> Dict[str, float]:
        """Return the calibration as a plain dictionary."""
        return asdict(self)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for an end-to-end SiEVE deployment.

    Attributes:
        edge_cloud_bandwidth_mbps: Simulated WAN bandwidth edge -> cloud.
        camera_edge_bandwidth_mbps: Simulated LAN bandwidth camera -> edge.
        edge_cloud_latency_ms: One-way propagation latency edge -> cloud.
        camera_edge_latency_ms: One-way propagation latency camera -> edge.
        hardware: Per-operation cost calibration.
        nn_input_resolution: (width, height) frames are resized to before NN
            inference / upload.
        nn_batch_size: Frames fed through the NN per batched forward pass
            (the analysis pipeline and the dataflow detector operators chunk
            their sampled frames to this size).
        fleet_workers: Worker *processes* used to execute a fleet
            simulation (see :mod:`repro.parallel`).  ``1`` (the default)
            keeps the single-process serial path; larger values shard the
            per-edge pipelines across a ``ProcessPoolExecutor`` and merge
            the results deterministically — the report is equal to the
            serial one regardless of worker count or completion order.
            ``0`` means "auto": the count resolves to
            :func:`available_cpu_count` at construction time.
        build_workers: Worker *processes* used to build experiment
            workloads (dataset render -> analysis -> tuning -> size-only
            encodes; see :class:`repro.parallel.WorkloadBuilder`).  ``1``
            (the default) keeps the serial build path; larger values
            prepare datasets concurrently, each worker writing its own
            content-keyed disk-cache entries, and the parent assembles
            the results deterministically by dataset — byte-identical
            cache artifacts and equal workload objects either way.
            ``0`` means "auto" (resolved via :func:`available_cpu_count`).
        fleet_transport: How the multiprocess fleet moves array payloads
            across the pool boundary (see :mod:`repro.parallel.transport`).
            ``"pickle"`` (the default) serialises through the pool channel
            exactly as before; ``"shm"`` packs the per-job arrays into
            ``multiprocessing.shared_memory`` segments so the hot loop
            stops pickling numpy data; ``"auto"`` resolves to shared
            memory when the platform supports it.  Every mode produces
            bit-identical reports — the transport moves bytes, never
            changes them.
        fleet_stealing: Whether pool workers *claim* edge tasks from a
            shared longest-first queue instead of taking a static
            round-robin shard (see :mod:`repro.parallel.stealing`).
            ``False`` (the default) keeps the static shards.  Stealing
            rebalances skewed fleets across workers; the report stays
            bit-identical because results merge by edge index, and every
            run records a replayable :class:`~repro.parallel.StealLog`.
        fleet_regions: Regions of the hierarchical cloud replay.  ``1``
            (the default) keeps the single-pass replay; larger values
            split the arrival-order merge into per-region sorts plus a
            global k-way merge, so the parent's replay stops being the
            serial bottleneck at fleet scale.  ``0`` means "auto" (one
            region per fleet worker).  Reports are bit-identical at any
            region count.
        precision: Numeric mode of the hot paths.  ``"exact"`` (the
            default) keeps every optimised kernel bit-identical to the seed
            implementation; ``"fast"`` routes NN inference and the motion
            search through float32 kernels (merged batched GEMMs,
            dot-product SAD reductions with an exact-argmin fallback on
            near-ties) whose deviation is bounded by the
            :data:`repro.contracts.FAST_CONTRACT` accuracy budget.  The
            default honours the ``REPRO_PRECISION`` environment variable.
        seed: Root seed for all stochastic components.
    """

    edge_cloud_bandwidth_mbps: float = DEFAULT_EDGE_CLOUD_BANDWIDTH_MBPS
    camera_edge_bandwidth_mbps: float = DEFAULT_CAMERA_EDGE_BANDWIDTH_MBPS
    edge_cloud_latency_ms: float = 40.0
    camera_edge_latency_ms: float = 5.0
    hardware: HardwareCalibration = field(default_factory=HardwareCalibration)
    nn_input_resolution: tuple = NN_INPUT_RESOLUTION
    nn_batch_size: int = 16
    fleet_workers: int = 1
    build_workers: int = 1
    fleet_transport: str = TRANSPORT_PICKLE
    fleet_stealing: bool = False
    fleet_regions: int = 1
    precision: str = field(default_factory=default_precision)
    seed: int = 20200601

    def __post_init__(self) -> None:
        if self.edge_cloud_bandwidth_mbps <= 0:
            raise ConfigurationError("edge_cloud_bandwidth_mbps must be positive")
        if self.camera_edge_bandwidth_mbps <= 0:
            raise ConfigurationError("camera_edge_bandwidth_mbps must be positive")
        if self.edge_cloud_latency_ms < 0 or self.camera_edge_latency_ms < 0:
            raise ConfigurationError("latencies must be non-negative")
        width, height = self.nn_input_resolution
        if width <= 0 or height <= 0:
            raise ConfigurationError("nn_input_resolution must be positive")
        if self.nn_batch_size < 1:
            raise ConfigurationError("nn_batch_size must be >= 1")
        # 0 = "auto" for both worker pools; the dataclass is frozen, so the
        # resolved counts are written through object.__setattr__ once here.
        object.__setattr__(self, "fleet_workers", resolve_worker_count(
            self.fleet_workers, "fleet_workers"))
        object.__setattr__(self, "build_workers", resolve_worker_count(
            self.build_workers, "build_workers"))
        validate_transport(self.fleet_transport)
        if self.fleet_regions < 0:
            raise ConfigurationError(
                f"fleet_regions must be >= 0 (0 = auto), "
                f"got {self.fleet_regions}")
        validate_precision(self.precision)

    @property
    def contract(self) -> NumericContract:
        """The numeric contract selected by :attr:`precision`."""
        return resolve_contract(self.precision)

    def with_bandwidth(self, edge_cloud_mbps: float) -> "SystemConfig":
        """Return a copy with a different edge->cloud bandwidth."""
        return SystemConfig(
            edge_cloud_bandwidth_mbps=edge_cloud_mbps,
            camera_edge_bandwidth_mbps=self.camera_edge_bandwidth_mbps,
            edge_cloud_latency_ms=self.edge_cloud_latency_ms,
            camera_edge_latency_ms=self.camera_edge_latency_ms,
            hardware=self.hardware,
            nn_input_resolution=self.nn_input_resolution,
            nn_batch_size=self.nn_batch_size,
            fleet_workers=self.fleet_workers,
            build_workers=self.build_workers,
            fleet_transport=self.fleet_transport,
            fleet_stealing=self.fleet_stealing,
            fleet_regions=self.fleet_regions,
            precision=self.precision,
            seed=self.seed,
        )


DEFAULT_SYSTEM_CONFIG = SystemConfig()
