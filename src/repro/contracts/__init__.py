"""Numeric-contract subsystem: tolerance budgets for the float32 fast paths.

See :mod:`repro.contracts.contract` for the design discussion.  The default
system precision is ``"exact"`` (bit-identical hot paths); selecting
``SystemConfig(precision="fast")`` routes the NN engine and the motion
search through float32 kernels whose deviation from the exact path is
bounded by :data:`FAST_CONTRACT` and pinned by the differential harness in
``tests/contracts/``.
"""

from .contract import (EXACT_CONTRACT, FAST_CONTRACT, NumericContract,
                       PRECISION_ENV, PRECISION_EXACT, PRECISION_FAST,
                       PRECISION_MODES, ToleranceBudget, activation_dtype,
                       agreement_fraction, resolve_contract,
                       selection_agreement, validate_precision)

__all__ = [
    "EXACT_CONTRACT", "FAST_CONTRACT", "NumericContract",
    "PRECISION_ENV", "PRECISION_EXACT", "PRECISION_FAST", "PRECISION_MODES",
    "ToleranceBudget", "activation_dtype", "agreement_fraction",
    "resolve_contract", "selection_agreement", "validate_precision",
]
