"""Numeric contracts: the accuracy budgets of the float32 fast paths.

The reproduction's default numeric mode is **exact**: every hot path is
pinned bit-identical to the seed implementation (see the bitwise-stability
contract in ROADMAP.md).  That contract blocked two measured speedups —
merged batched GEMMs in the NN engine and dot-product SAD reductions in the
motion search — because both reassociate floating-point reductions and run
in float32.

This module turns "how wrong is the fast path allowed to be" into a
first-class, tested object.  A :class:`NumericContract` carries one
:class:`ToleranceBudget` per numeric stage:

* ``nn_logits`` — elementwise tolerance of the fast NN output vectors
  (softmax probabilities) against the exact float64 forward pass;
* ``nn_classes`` — minimum fraction of examples whose fast argmax class
  equals the exact argmax class;
* ``detections`` — minimum end-to-end agreement of derived discrete
  decisions (detector labels, selected key frames) between fast and exact
  pipelines;
* ``sad_values`` — elementwise tolerance of the fast motion-search SAD
  surface against the exact one;
* ``sad_argmin`` — minimum fraction of blocks whose fast motion vector
  equals the exact argmin vector;
* ``sad_tie`` — the near-tie margin of the fast motion search: whenever the
  float32 gap between a block's best and second-best candidate is inside
  this budget the fast path recomputes that block's SADs in float64 and
  takes the *exact* argmin, so ties (and near-ties) resolve exactly like
  the exact path's first-candidate-wins rule.

The differential harness under ``tests/contracts/`` asserts every budget on
synthetic scenarios (including adversarial near-tie SAD cases and
logit-margin edge cases), and the benchmark suite records the measured
fast/exact agreement next to the speedup so the CI perf gate can fail when
either collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

#: The numeric modes a :class:`~repro.config.SystemConfig` can select.
PRECISION_EXACT = "exact"
PRECISION_FAST = "fast"
PRECISION_MODES: Tuple[str, ...] = (PRECISION_EXACT, PRECISION_FAST)

#: Environment variable overriding the default precision mode (used by the
#: CI matrix leg that runs the whole tier-1 suite under ``fast``).
PRECISION_ENV = "REPRO_PRECISION"


def validate_precision(precision: str) -> str:
    """Return ``precision`` unchanged, raising on unknown modes."""
    if precision not in PRECISION_MODES:
        raise ConfigurationError(
            f"precision must be one of {PRECISION_MODES}, got {precision!r}")
    return precision


def activation_dtype(precision: str):
    """The numpy dtype the NN engine computes in under ``precision``."""
    validate_precision(precision)
    return np.float32 if precision == PRECISION_FAST else np.float64


@dataclass(frozen=True)
class ToleranceBudget:
    """Accuracy budget of one numeric stage.

    Attributes:
        atol: Absolute tolerance on continuous values.
        rtol: Relative tolerance on continuous values.
        min_agreement: Minimum fraction of discrete decisions (argmax
            classes, motion vectors, selected frames) that must equal the
            exact path's decisions.
    """

    atol: float = 0.0
    rtol: float = 0.0
    min_agreement: float = 1.0

    def __post_init__(self) -> None:
        if self.atol < 0 or self.rtol < 0:
            raise ConfigurationError(
                f"tolerances must be non-negative, got atol={self.atol}, "
                f"rtol={self.rtol}")
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ConfigurationError(
                f"min_agreement must be in [0, 1], got {self.min_agreement}")

    def margin(self, reference) -> np.ndarray:
        """The allowed absolute deviation around ``reference`` values."""
        return self.atol + self.rtol * np.abs(np.asarray(reference, dtype=np.float64))

    def values_within(self, exact, fast) -> bool:
        """Whether ``fast`` matches ``exact`` within ``atol``/``rtol``."""
        exact = np.asarray(exact, dtype=np.float64)
        fast = np.asarray(fast, dtype=np.float64)
        return bool(np.all(np.abs(fast - exact) <= self.margin(exact)))

    def max_violation(self, exact, fast) -> float:
        """Largest absolute deviation in excess of the budget (<= 0 is ok)."""
        exact = np.asarray(exact, dtype=np.float64)
        fast = np.asarray(fast, dtype=np.float64)
        if exact.size == 0:
            return 0.0
        return float((np.abs(fast - exact) - self.margin(exact)).max())


def agreement_fraction(exact, fast) -> float:
    """Fraction of aligned discrete decisions that are equal.

    Accepts arrays (compared elementwise; multi-dimensional arrays compare
    whole trailing vectors, e.g. ``(blocks_y, blocks_x, 2)`` motion fields
    agree per block) or plain sequences of hashable decisions (labels,
    frame indices).  Empty inputs agree trivially.
    """
    if isinstance(exact, np.ndarray) or isinstance(fast, np.ndarray):
        exact = np.asarray(exact)
        fast = np.asarray(fast)
        if exact.shape != fast.shape:
            raise ConfigurationError(
                f"agreement_fraction got mismatched shapes {exact.shape} "
                f"vs {fast.shape}")
        if exact.size == 0:
            return 1.0
        equal = exact == fast
        if equal.ndim > 2:
            equal = equal.reshape(equal.shape[0], equal.shape[1], -1).all(axis=-1)
        return float(np.mean(equal))
    exact = list(exact)
    fast = list(fast)
    if len(exact) != len(fast):
        raise ConfigurationError(
            f"agreement_fraction got mismatched lengths {len(exact)} "
            f"vs {len(fast)}")
    if not exact:
        return 1.0
    return sum(a == b for a, b in zip(exact, fast)) / len(exact)


def selection_agreement(exact, fast) -> float:
    """Jaccard agreement of two selected-index sets (key frames, samples)."""
    exact_set, fast_set = set(exact), set(fast)
    union = exact_set | fast_set
    if not union:
        return 1.0
    return len(exact_set & fast_set) / len(union)


@dataclass(frozen=True)
class NumericContract:
    """The full accuracy budget of one precision mode.

    ``NumericContract.exact()`` is the degenerate contract (zero tolerance,
    full agreement) describing the default mode; ``NumericContract.fast()``
    is the budget the float32 fast paths are tested against.

    Attributes:
        mode: The precision mode this contract describes.
        nn_logits: Elementwise budget on fast NN output vectors.
        nn_classes: Agreement budget on fast argmax classifications.
        detections: Agreement budget on derived discrete pipeline decisions
            (detector labels, selected key frames).
        sad_values: Elementwise budget on the fast SAD surface.
        sad_argmin: Agreement budget on fast motion vectors.
        sad_tie: Near-tie margin triggering the fast search's exact-argmin
            fallback.
    """

    mode: str
    nn_logits: ToleranceBudget
    nn_classes: ToleranceBudget
    detections: ToleranceBudget
    sad_values: ToleranceBudget
    sad_argmin: ToleranceBudget
    sad_tie: ToleranceBudget

    def __post_init__(self) -> None:
        validate_precision(self.mode)

    @property
    def is_exact(self) -> bool:
        """Whether this contract demands bit-identical results."""
        return self.mode == PRECISION_EXACT

    @classmethod
    def exact(cls) -> "NumericContract":
        """The zero-tolerance contract of the default mode."""
        zero = ToleranceBudget()
        return cls(mode=PRECISION_EXACT, nn_logits=zero, nn_classes=zero,
                   detections=zero, sad_values=zero, sad_argmin=zero,
                   sad_tie=zero)

    @classmethod
    def fast(cls) -> "NumericContract":
        """The accuracy budget of the float32 fast paths.

        The continuous tolerances are sized from float32 arithmetic: one
        fused-reduction step loses ~1e-7 relative per term, YoloLite's
        deepest accumulation chains are a few hundred terms, and SAD
        reductions sum ``block_size**2`` absolute differences — so 1e-4
        relative headroom is two orders of magnitude above the observed
        error while still catching any real numerical defect.  The
        agreement floors leave room only for genuine near-ties, which the
        harness shows are rare on every tested scenario.
        """
        return cls(
            mode=PRECISION_FAST,
            nn_logits=ToleranceBudget(atol=1e-5, rtol=1e-4),
            nn_classes=ToleranceBudget(min_agreement=0.98),
            detections=ToleranceBudget(min_agreement=0.95),
            sad_values=ToleranceBudget(atol=0.25, rtol=1e-4),
            sad_argmin=ToleranceBudget(min_agreement=0.995),
            sad_tie=ToleranceBudget(atol=0.5, rtol=2e-4),
        )

    def describe(self) -> str:
        """One-line human-readable summary (logging, examples)."""
        if self.is_exact:
            return "exact (bit-identical to the seed implementations)"
        return (f"fast (float32: nn logits atol={self.nn_logits.atol:g}/"
                f"rtol={self.nn_logits.rtol:g}, class agreement >= "
                f"{self.nn_classes.min_agreement:g}, detection agreement >= "
                f"{self.detections.min_agreement:g}, SAD atol="
                f"{self.sad_values.atol:g}/rtol={self.sad_values.rtol:g}, "
                f"vector agreement >= {self.sad_argmin.min_agreement:g})")


#: Shared contract instances (the contracts are frozen, so sharing is safe).
EXACT_CONTRACT = NumericContract.exact()
FAST_CONTRACT = NumericContract.fast()


def resolve_contract(precision: str) -> NumericContract:
    """The :class:`NumericContract` selected by a precision mode."""
    validate_precision(precision)
    return FAST_CONTRACT if precision == PRECISION_FAST else EXACT_CONTRACT
