"""SiEVE core: metrics, offline tuner, event detection, deployment, pipeline."""

from .deployment import (ALL_DEPLOYMENT_MODES, DeploymentMode, NNDeploymentPlan,
                         NNDeploymentService, NNPlacement)
from .event_detection import (EventDetectionResult, EventDetector, MseEventDetector,
                              SieveEventDetector, SiftEventDetector,
                              SimilarityEventDetector, UniformSamplingDetector,
                              sieve_sampling_sweep)
from .metrics import (DetectionScore, detection_latencies, evaluate_sampling,
                      event_start_accuracy, f1_score, filtering_rate,
                      propagate_labels, propagation_accuracy, sampling_fraction,
                      summarize_latencies)
from .pipeline import (DeploymentReport, EndToEndSimulation, VideoWorkload,
                       build_workload, plan_camera_job)
from .sieve import Sieve, VideoAnalysisResult
from .tuner import (ConfigurationResult, ParameterLookupTable, SemanticEncoderTuner,
                    TuningGrid, TuningResult, DEFAULT_GOP_GRID,
                    DEFAULT_SCENECUT_GRID)

__all__ = [
    "ALL_DEPLOYMENT_MODES", "DeploymentMode", "NNDeploymentPlan",
    "NNDeploymentService", "NNPlacement",
    "EventDetectionResult", "EventDetector", "MseEventDetector",
    "SieveEventDetector", "SiftEventDetector", "SimilarityEventDetector",
    "UniformSamplingDetector", "sieve_sampling_sweep",
    "DetectionScore", "detection_latencies", "evaluate_sampling",
    "event_start_accuracy", "f1_score", "filtering_rate", "propagate_labels",
    "propagation_accuracy", "sampling_fraction", "summarize_latencies",
    "DeploymentReport", "EndToEndSimulation", "VideoWorkload", "build_workload",
    "plan_camera_job",
    "Sieve", "VideoAnalysisResult",
    "ConfigurationResult", "ParameterLookupTable", "SemanticEncoderTuner",
    "TuningGrid", "TuningResult", "DEFAULT_GOP_GRID", "DEFAULT_SCENECUT_GRID",
]
