"""Deployment modes and the NN deployment service.

Figure 4/5 of the paper compare five end-to-end deployments, reproduced by
:class:`DeploymentMode`.  The NN deployment service of Figure 1 additionally
decides *where the network's layers live*: all on the edge, all in the
cloud, or split at a layer boundary (Neurosurgeon); :class:`NNDeploymentService`
implements that decision for the reference network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import PipelineError
from ..nn.model import SequentialModel
from ..nn.partition import NeurosurgeonPartitioner, PartitionDecision
from ..nn.profiler import CLOUD_DEVICE, EDGE_DEVICE, DeviceSpec


class DeploymentMode(enum.Enum):
    """The five end-to-end baselines of Section V-B."""

    #: I-frame seeking on the edge, NN inference in the cloud (3-tier SiEVE).
    IFRAME_EDGE_CLOUD_NN = "iframe_edge_cloud_nn"
    #: Full video shipped to the cloud; seeking and NN both in the cloud.
    IFRAME_CLOUD_CLOUD_NN = "iframe_cloud_cloud_nn"
    #: I-frame seeking and NN inference both on the edge.
    IFRAME_EDGE_EDGE_NN = "iframe_edge_edge_nn"
    #: Uniform sampling on the edge (default encoding), NN in the cloud.
    UNIFORM_EDGE_CLOUD_NN = "uniform_edge_cloud_nn"
    #: MSE filtering on the edge (default encoding), NN in the cloud.
    MSE_EDGE_CLOUD_NN = "mse_edge_cloud_nn"

    @property
    def uses_semantic_encoding(self) -> bool:
        """Whether the mode operates on the semantically encoded video."""
        return self in (DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                        DeploymentMode.IFRAME_CLOUD_CLOUD_NN,
                        DeploymentMode.IFRAME_EDGE_EDGE_NN)

    @property
    def nn_device(self) -> str:
        """Where NN inference runs for this mode."""
        return "edge" if self is DeploymentMode.IFRAME_EDGE_EDGE_NN else "cloud"

    @property
    def label(self) -> str:
        """The legend label used in Figure 4/5."""
        return {
            DeploymentMode.IFRAME_EDGE_CLOUD_NN: "I-frame edge + Cloud NN",
            DeploymentMode.IFRAME_CLOUD_CLOUD_NN: "I-frame Cloud + Cloud NN",
            DeploymentMode.IFRAME_EDGE_EDGE_NN: "I-frame edge + edge NN",
            DeploymentMode.UNIFORM_EDGE_CLOUD_NN: "Uniform Sampling edge + Cloud NN",
            DeploymentMode.MSE_EDGE_CLOUD_NN: "MSE Edge + Cloud NN",
        }[self]


#: All modes in the order the paper's figures list them.
ALL_DEPLOYMENT_MODES = (
    DeploymentMode.IFRAME_EDGE_CLOUD_NN,
    DeploymentMode.IFRAME_CLOUD_CLOUD_NN,
    DeploymentMode.IFRAME_EDGE_EDGE_NN,
    DeploymentMode.UNIFORM_EDGE_CLOUD_NN,
    DeploymentMode.MSE_EDGE_CLOUD_NN,
)


class NNPlacement(enum.Enum):
    """Where the reference network's layers execute."""

    EDGE_ONLY = "edge"
    CLOUD_ONLY = "cloud"
    SPLIT = "split"


@dataclass(frozen=True)
class NNDeploymentPlan:
    """Concrete layer placement produced by the deployment service.

    Attributes:
        placement: Edge-only, cloud-only or split.
        split_index: Number of layers on the edge (only meaningful for SPLIT,
            where ``0 < split_index < num_layers``).
        partition: The full Neurosurgeon decision when a split was evaluated.
    """

    placement: NNPlacement
    split_index: int
    partition: Optional[PartitionDecision] = None


class NNDeploymentService:
    """Decides the layer placement of the reference network (Figure 1).

    Args:
        model: The reference network.
        edge_device: Edge compute capability.
        cloud_device: Cloud compute capability.
    """

    def __init__(self, model: SequentialModel,
                 edge_device: DeviceSpec = EDGE_DEVICE,
                 cloud_device: DeviceSpec = CLOUD_DEVICE) -> None:
        self.model = model
        self.edge_device = edge_device
        self.cloud_device = cloud_device

    def plan(self, placement: NNPlacement,
             bandwidth_mbps: Optional[float] = None,
             latency_ms: float = 0.0) -> NNDeploymentPlan:
        """Produce a placement plan.

        ``EDGE_ONLY``/``CLOUD_ONLY`` need no network information; ``SPLIT``
        runs the Neurosurgeon search and therefore requires the edge->cloud
        bandwidth.
        """
        if placement is NNPlacement.EDGE_ONLY:
            return NNDeploymentPlan(placement=placement,
                                    split_index=self.model.num_layers)
        if placement is NNPlacement.CLOUD_ONLY:
            return NNDeploymentPlan(placement=placement, split_index=0)
        if bandwidth_mbps is None or bandwidth_mbps <= 0:
            raise PipelineError("a SPLIT plan requires a positive bandwidth")
        partitioner = NeurosurgeonPartitioner(self.model, self.edge_device,
                                              self.cloud_device)
        decision = partitioner.decide(bandwidth_mbps, latency_ms)
        return NNDeploymentPlan(placement=placement,
                                split_index=decision.best.split_index,
                                partition=decision)
