"""Event-detection front ends: SiEVE and the compared approaches.

Section V-A compares four ways of deciding which frames of a video get NN
inference:

* **SiEVE** — semantic encoding + I-frame seeking: the sampled frames are the
  I-frames placed by the tuned encoder; no frame is decoded to make the
  decision.
* **MSE** — decode every frame, sample when the pixel MSE against the
  previous frame crosses a threshold.
* **SIFT** — decode every frame, sample when SIFT feature matching against
  the previous frame degrades past a threshold.
* **Uniform sampling** — sample every k-th frame (used in the end-to-end
  evaluation).

Every front end produces the same thing — the list of sampled frame indices
— so they can be scored identically by :mod:`repro.core.metrics` and costed
identically by the cluster's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..cluster.costmodel import CostModel
from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters, KeyframePlacer
from ..codec.scenecut import FrameActivity
from ..errors import PipelineError
from ..video.events import EventTimeline
from ..video.frame import Resolution
from ..video.raw_video import VideoSource
from ..vision.mse import MseChangeDetector
from ..vision.sift import SiftChangeDetector
from ..vision.similarity import (ChangeDetector, ThresholdSampler, score_video,
                                 threshold_for_sampling_fraction)
from .metrics import DetectionScore, evaluate_sampling


@dataclass
class EventDetectionResult:
    """Outcome of one event-detection front end on one video.

    Attributes:
        method: Front-end name (``"sieve"``, ``"mse"``, ``"sift"``,
            ``"uniform"``).
        sample_indices: Frame indices selected for NN inference.
        num_frames: Total frames in the video.
        score: Accuracy/F1 score against ground truth (when available).
        simulated_fps: Event-detection throughput predicted by the cost model
            at the dataset's nominal resolution (Table III).
        details: Free-form extras (chosen threshold, encoder parameters, ...).
    """

    method: str
    sample_indices: List[int]
    num_frames: int
    score: Optional[DetectionScore] = None
    simulated_fps: Optional[float] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def sampling_fraction(self) -> float:
        """Fraction of frames selected for NN inference."""
        if self.num_frames == 0:
            return 0.0
        return len(set(self.sample_indices)) / self.num_frames


class EventDetector:
    """Base class of event-detection front ends."""

    #: Name used in experiment tables and by the cost model.
    method: str = "base"

    def detect(self, video: VideoSource,
               timeline: Optional[EventTimeline] = None) -> EventDetectionResult:
        """Run the front end over a video and (optionally) score it."""
        raise NotImplementedError

    def _finalise(self, video: VideoSource, samples: Sequence[int],
                  timeline: Optional[EventTimeline],
                  cost_resolution: Optional[Resolution] = None,
                  **details) -> EventDetectionResult:
        timeline = timeline if timeline is not None else getattr(video, "timeline", None)
        score = evaluate_sampling(timeline, samples) if timeline is not None else None
        fps = None
        if cost_resolution is not None:
            method = "sieve" if self.method in ("sieve", "uniform") else self.method
            fps = CostModel().event_detection_fps(method, cost_resolution)
        return EventDetectionResult(
            method=self.method, sample_indices=sorted(set(int(i) for i in samples)),
            num_frames=video.metadata.num_frames, score=score, simulated_fps=fps,
            details=dict(details))


class SieveEventDetector(EventDetector):
    """SiEVE's front end: semantic encoding + I-frame seeking.

    Args:
        parameters: Tuned encoder parameters for the camera.
        activities: Optional precomputed analysis pass of the video (reused
            by the experiment sweeps to avoid repeated motion estimation).
    """

    method = "sieve"

    def __init__(self, parameters: EncoderParameters,
                 activities: Optional[Sequence[FrameActivity]] = None) -> None:
        self.parameters = parameters
        self.activities = list(activities) if activities is not None else None

    def detect(self, video: VideoSource,
               timeline: Optional[EventTimeline] = None,
               cost_resolution: Optional[Resolution] = None) -> EventDetectionResult:
        activities = self.activities
        if activities is None:
            activities = VideoEncoder(self.parameters).analyze(video)
        elif len(activities) != video.metadata.num_frames:
            raise PipelineError("precomputed analysis does not match the video length")
        keyframes = KeyframePlacer(self.parameters).keyframe_indices(activities)
        return self._finalise(video, keyframes, timeline, cost_resolution,
                              parameters=self.parameters.describe())


class SimilarityEventDetector(EventDetector):
    """Decode-based front end built on a :class:`ChangeDetector`.

    Args:
        detector: The underlying change detector (MSE or SIFT).
        threshold: Change-score threshold; when ``None`` it must be supplied
            per call or fitted with :meth:`fit_threshold`.
        scores: Optional precomputed change-score series of the target video.
    """

    def __init__(self, detector: ChangeDetector, threshold: Optional[float] = None,
                 scores: Optional[Sequence[float]] = None) -> None:
        self.detector = detector
        self.threshold = threshold
        self.scores = list(scores) if scores is not None else None
        self.method = detector.name

    def compute_scores(self, video: VideoSource) -> List[float]:
        """Change-score series of a video (cached when precomputed)."""
        if self.scores is not None and len(self.scores) == video.metadata.num_frames:
            return self.scores
        return score_video(self.detector, video)

    def fit_threshold(self, video: VideoSource, target_fraction: float) -> float:
        """Pick the threshold matching a target sampling fraction on ``video``."""
        scores = self.compute_scores(video)
        self.threshold = threshold_for_sampling_fraction(scores, target_fraction)
        return self.threshold

    def detect(self, video: VideoSource,
               timeline: Optional[EventTimeline] = None,
               cost_resolution: Optional[Resolution] = None) -> EventDetectionResult:
        if self.threshold is None:
            raise PipelineError(
                f"{self.method} detector has no threshold; call fit_threshold first")
        scores = self.compute_scores(video)
        samples = ThresholdSampler(self.threshold).sample(scores)
        return self._finalise(video, samples, timeline, cost_resolution,
                              threshold=self.threshold)


class MseEventDetector(SimilarityEventDetector):
    """MSE-based front end (NoScope-style difference detector)."""

    def __init__(self, threshold: Optional[float] = None,
                 scores: Optional[Sequence[float]] = None,
                 downsample_factor: int = 1) -> None:
        super().__init__(MseChangeDetector(downsample_factor=downsample_factor),
                         threshold, scores)


class SiftEventDetector(SimilarityEventDetector):
    """SIFT-matching front end."""

    def __init__(self, threshold: Optional[float] = None,
                 scores: Optional[Sequence[float]] = None) -> None:
        super().__init__(SiftChangeDetector(), threshold, scores)


class UniformSamplingDetector(EventDetector):
    """Sample every k-th frame (the end-to-end baseline of Section V-B).

    Args:
        interval: Sampling interval in frames; alternatively use
            :meth:`for_sample_count` to match a target number of samples.
    """

    method = "uniform"

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise PipelineError("sampling interval must be >= 1")
        self.interval = int(interval)

    @classmethod
    def for_sample_count(cls, num_frames: int, num_samples: int) -> "UniformSamplingDetector":
        """Build a detector transmitting roughly ``num_samples`` frames."""
        if num_samples < 1:
            raise PipelineError("num_samples must be >= 1")
        return cls(max(num_frames // num_samples, 1))

    def detect(self, video: VideoSource,
               timeline: Optional[EventTimeline] = None,
               cost_resolution: Optional[Resolution] = None) -> EventDetectionResult:
        samples = list(range(0, video.metadata.num_frames, self.interval))
        return self._finalise(video, samples, timeline, cost_resolution,
                              interval=self.interval)


def sieve_sampling_sweep(activities: Sequence[FrameActivity],
                         timeline: EventTimeline,
                         parameters_list: Sequence[EncoderParameters]
                         ) -> List[EventDetectionResult]:
    """Evaluate SiEVE for many encoder configurations on one analysis pass.

    Used by the Figure 3 sweep: each configuration gives a different sampling
    fraction / accuracy point.
    """
    results = []
    for parameters in parameters_list:
        keyframes = KeyframePlacer(parameters).keyframe_indices(activities)
        score = evaluate_sampling(timeline, keyframes)
        results.append(EventDetectionResult(
            method="sieve", sample_indices=list(keyframes),
            num_frames=timeline.num_frames, score=score,
            details={"parameters": parameters.describe()}))
    return results
