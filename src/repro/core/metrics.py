"""Evaluation metrics for event detection (Section IV and V-A of the paper).

The paper scores an encoder configuration (or a baseline change detector) by
three quantities:

* **accuracy** (``acc_i``) — per-frame object-label accuracy when every
  sampled frame is labelled by the reference NN and every other frame
  inherits the labels of the most recent sampled frame;
* **filtering rate** (``fr_i``) — the fraction of frames that are *not*
  sampled (the paper also reports its complement, the sample size *SS*);
* **F1 score** — the harmonic mean of accuracy and filtering rate, used by
  the offline tuner to pick the best configuration.

Two accuracy variants are provided.  :func:`propagation_accuracy` is the
per-frame label accuracy actually used in the evaluation (Figure 3,
Table II).  :func:`event_start_accuracy` is the formulation of Section IV
(each event contributes the fraction of its frames from the event start to
its first I-frame); the two coincide when every event contains at least one
sampled frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..video.events import EventTimeline, LabelSet, NO_LABEL


def _validate_samples(sample_indices: Sequence[int], num_frames: int) -> List[int]:
    indices = sorted(set(int(index) for index in sample_indices))
    if indices and (indices[0] < 0 or indices[-1] >= num_frames):
        raise ConfigurationError(
            f"sample indices must lie in [0, {num_frames}), got "
            f"{indices[0]}..{indices[-1]}")
    return indices


def propagate_labels(timeline: EventTimeline,
                     sample_indices: Sequence[int]) -> List[LabelSet]:
    """Propagate the labels of sampled frames to every frame.

    Sampled frames are assumed to be labelled perfectly by the reference NN
    (the paper's assumption: the NN is the ground-truth oracle for the frames
    it sees); every other frame inherits the labels of the most recent
    sampled frame.  Frames before the first sample are labelled as background.

    Args:
        timeline: Ground-truth event timeline.
        sample_indices: Indices of the frames that undergo NN inference.

    Returns:
        One label set per frame.
    """
    indices = _validate_samples(sample_indices, timeline.num_frames)
    labels: List[LabelSet] = []
    current: LabelSet = NO_LABEL
    sample_cursor = 0
    for frame_index in range(timeline.num_frames):
        while sample_cursor < len(indices) and indices[sample_cursor] == frame_index:
            current = timeline.labels_at(frame_index)
            sample_cursor += 1
        labels.append(current)
    return labels


def propagation_accuracy(timeline: EventTimeline,
                         sample_indices: Sequence[int]) -> float:
    """Per-frame label accuracy under label propagation from sampled frames."""
    predicted = propagate_labels(timeline, sample_indices)
    truth = timeline.frame_labels()
    correct = sum(1 for observed, expected in zip(predicted, truth)
                  if observed == expected)
    return correct / timeline.num_frames


def event_start_accuracy(timeline: EventTimeline,
                         sample_indices: Sequence[int]) -> float:
    """Accuracy as defined in Section IV of the paper.

    Every event contributes its full frame count when it starts with a
    sampled frame; otherwise the frames from the event start until the first
    sampled frame inside the event (or the whole event, if it contains no
    sample) are counted as wrong.
    """
    indices = np.array(_validate_samples(sample_indices, timeline.num_frames),
                       dtype=np.int64)
    wrong = 0
    for event in timeline.events:
        inside = indices[(indices >= event.start_frame) & (indices < event.end_frame)]
        if inside.size == 0:
            wrong += event.num_frames
        else:
            wrong += int(inside.min()) - event.start_frame
    return 1.0 - wrong / timeline.num_frames


def sampling_fraction(sample_indices: Sequence[int], num_frames: int) -> float:
    """Fraction of frames that are sampled (the paper's *SS*)."""
    if num_frames <= 0:
        raise ConfigurationError("num_frames must be positive")
    return len(set(sample_indices)) / num_frames


def filtering_rate(sample_indices: Sequence[int], num_frames: int) -> float:
    """Fraction of frames filtered out before NN inference (``fr_i``)."""
    return 1.0 - sampling_fraction(sample_indices, num_frames)


def f1_score(accuracy: float, filtering: float) -> float:
    """Harmonic mean of accuracy and filtering rate (Section IV)."""
    if accuracy < 0 or filtering < 0:
        raise ConfigurationError("accuracy and filtering rate must be non-negative")
    if accuracy + filtering == 0:
        return 0.0
    return 2.0 * accuracy * filtering / (accuracy + filtering)


@dataclass(frozen=True)
class DetectionScore:
    """Full score of one event-detection configuration.

    Attributes:
        accuracy: Per-frame label accuracy (propagation variant).
        event_accuracy: Section-IV accuracy variant.
        sampling_fraction: Fraction of frames sampled (*SS*).
        filtering_rate: Fraction of frames filtered (``fr``).
        f1: Harmonic mean of accuracy and filtering rate.
        num_samples: Number of sampled frames.
        num_frames: Total number of frames.
    """

    accuracy: float
    event_accuracy: float
    sampling_fraction: float
    filtering_rate: float
    f1: float
    num_samples: int
    num_frames: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view (used by the experiment tables)."""
        return {
            "accuracy": self.accuracy,
            "event_accuracy": self.event_accuracy,
            "sampling_fraction": self.sampling_fraction,
            "filtering_rate": self.filtering_rate,
            "f1": self.f1,
            "num_samples": float(self.num_samples),
            "num_frames": float(self.num_frames),
        }


def evaluate_sampling(timeline: EventTimeline,
                      sample_indices: Sequence[int]) -> DetectionScore:
    """Score a set of sampled frame indices against the ground truth.

    Args:
        timeline: Ground-truth event timeline.
        sample_indices: Indices of frames that undergo NN inference (for
            SiEVE these are the I-frames; for the baselines, the frames whose
            change signal crossed the threshold).

    Returns:
        The full :class:`DetectionScore`.
    """
    indices = _validate_samples(sample_indices, timeline.num_frames)
    accuracy = propagation_accuracy(timeline, indices)
    event_acc = event_start_accuracy(timeline, indices)
    fraction = sampling_fraction(indices, timeline.num_frames)
    filtering = 1.0 - fraction
    return DetectionScore(
        accuracy=accuracy,
        event_accuracy=event_acc,
        sampling_fraction=fraction,
        filtering_rate=filtering,
        f1=f1_score(accuracy, filtering),
        num_samples=len(indices),
        num_frames=timeline.num_frames,
    )


def detection_latencies(timeline: EventTimeline,
                        sample_indices: Sequence[int]) -> List[Optional[int]]:
    """Per-event detection latency in frames.

    For every event, the number of frames between the event start and the
    first sampled frame inside the event, or ``None`` when the event contains
    no sampled frame at all.
    """
    indices = np.array(_validate_samples(sample_indices, timeline.num_frames),
                       dtype=np.int64)
    latencies: List[Optional[int]] = []
    for event in timeline.events:
        inside = indices[(indices >= event.start_frame) & (indices < event.end_frame)]
        latencies.append(int(inside.min()) - event.start_frame if inside.size else None)
    return latencies


def summarize_latencies(latencies: Sequence[Optional[int]]) -> Dict[str, float]:
    """Aggregate latency statistics (mean/median/miss rate)."""
    observed = [latency for latency in latencies if latency is not None]
    missed = sum(1 for latency in latencies if latency is None)
    if not latencies:
        return {"mean": 0.0, "median": 0.0, "max": 0.0, "miss_rate": 0.0}
    if not observed:
        return {"mean": float("inf"), "median": float("inf"), "max": float("inf"),
                "miss_rate": 1.0}
    return {
        "mean": float(np.mean(observed)),
        "median": float(np.median(observed)),
        "max": float(np.max(observed)),
        "miss_rate": missed / len(latencies),
    }
