"""End-to-end 3-tier simulation (Section V-B: Figures 4 and 5).

The evaluation scenario is post-event analysis: encoded videos are already
stored on the edge server, and we measure (a) the sustained throughput in
frames per second of pushing all of them through object detection under each
deployment mode, and (b) the bytes moved camera->edge and edge->cloud.

The simulation is split into two stages so the expensive part runs once:

* :func:`build_workload` encodes a dataset clip with both the semantic and
  the default parameters, fits the MSE baseline threshold, and condenses
  everything the deployments need into a :class:`VideoWorkload` (frame
  counts, I-frame counts, encoded sizes scaled to the dataset's nominal
  resolution, per-method sampled-frame sets);
* :class:`EndToEndSimulation` replays any :class:`DeploymentMode` over a set
  of workloads using the calibrated cost model and the simulated links, and
  reports throughput, data transfer and (when ground truth exists) accuracy.

Since the fleet-simulator refactor the replay itself runs on the
discrete-event scheduler: every workload becomes a :class:`CameraJob`
(planned by :func:`plan_camera_job`) executed by a
:class:`~repro.cluster.fleet.FleetOrchestrator`.  With the default single
edge server the reported totals reproduce the seed's serial accounting (the
legacy path is kept as :meth:`EndToEndSimulation.run_serial` and pinned by a
regression test); with ``num_edge_servers > 1`` the same workloads shard
across a fleet and the report additionally carries per-tier utilisation,
queue depths and latency percentiles in ``DeploymentReport.fleet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.cloud import CloudServer
from ..cluster.costmodel import CostModel
from ..cluster.edge import EdgeServer
from ..cluster.fleet import (CameraJob, FleetOrchestrator, FleetReport,
                             PlacementPolicy)
from ..cluster.node import default_cloud_node, default_edge_node
from ..config import SystemConfig
from ..codec.encoder import VideoEncoder
from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..datasets.generator import DatasetInstance
from ..errors import PipelineError
from ..jpeg_sizing import resized_frame_bytes  # noqa: F401  (re-exported helper)
from ..logging_utils import get_logger
from ..codec.scenecut import FrameActivity
from ..net.link import NetworkLink
from ..perf import section as perf_section
from ..video.events import EventTimeline
from ..video.frame import Resolution
from ..vision.mse import MseChangeDetector
from ..vision.similarity import ThresholdSampler, score_video
from .deployment import ALL_DEPLOYMENT_MODES, DeploymentMode
from .metrics import evaluate_sampling
from .tuner import SemanticEncoderTuner, TuningGrid

_LOGGER = get_logger(__name__)

#: Compression-efficiency correction applied when scaling this codec's
#: encoded sizes to the datasets' nominal resolutions.  The teaching codec
#: lacks H.264's intra prediction, CABAC and RD optimisation, so at equal
#: quality its bitstreams are roughly 4x larger than x264's for the same
#: surveillance content; the paper's transfer volumes (12.26 GB for 20 hours
#: of mixed-resolution footage) correspond to x264-class bitrates, so encoded
#: byte counts are corrected by this factor before entering the simulation.
H264_EFFICIENCY_FACTOR = 0.25


@dataclass
class VideoWorkload:
    """Everything a deployment simulation needs to know about one video.

    Attributes:
        name: Video / dataset name.
        num_frames: Total frames.
        nominal_resolution: Resolution used for cost and size accounting.
        semantic_bytes: Encoded size under the tuned semantic parameters,
            scaled to the nominal resolution.
        default_bytes: Encoded size under the default parameters, scaled to
            the nominal resolution.
        semantic_iframe_bytes: Total size of the semantic encoding's I-frame
            payloads (scaled), i.e. what the edge would ship before resizing.
        semantic_samples: Frame indices of the semantic encoding's I-frames.
        mse_samples: Frame indices selected by the tuned MSE filter.
        uniform_samples: Frame indices selected by uniform sampling (matched
            in count to the semantic I-frames).
        resized_frame_bytes: Size of one frame after resizing to the NN input
            resolution, as shipped to the cloud.
        timeline: Ground-truth timeline (``None`` for unlabelled datasets).
    """

    name: str
    num_frames: int
    nominal_resolution: Resolution
    semantic_bytes: int
    default_bytes: int
    semantic_iframe_bytes: int
    semantic_samples: List[int]
    mse_samples: List[int]
    uniform_samples: List[int]
    resized_frame_bytes: int
    timeline: Optional[EventTimeline] = None

    @property
    def num_semantic_iframes(self) -> int:
        """Number of I-frames in the semantic encoding."""
        return len(self.semantic_samples)

    def samples_for(self, mode: DeploymentMode) -> List[int]:
        """The frames that undergo NN inference under ``mode``."""
        if mode.uses_semantic_encoding:
            return self.semantic_samples
        if mode is DeploymentMode.UNIFORM_EDGE_CLOUD_NN:
            return self.uniform_samples
        if mode is DeploymentMode.MSE_EDGE_CLOUD_NN:
            return self.mse_samples
        raise PipelineError(f"unknown deployment mode {mode!r}")


@dataclass
class DeploymentReport:
    """Simulation result of one deployment mode over a set of workloads.

    Attributes:
        mode: The simulated deployment.
        total_frames: Frames across all videos (I and P).
        edge_seconds: Simulated edge compute time.
        cloud_seconds: Simulated cloud compute time.
        transfer_seconds: Simulated edge->cloud transfer time.
        camera_edge_bytes: Bytes moved camera -> edge.
        edge_cloud_bytes: Bytes moved edge -> cloud.
        frames_for_inference: Frames that underwent NN inference.
        accuracy: Mean per-frame label accuracy over the labelled videos
            (``None`` when no ground truth was available).
        per_video: Per-video breakdown of the same quantities.
        fleet: The underlying fleet-simulation report (utilisation, queue
            depths, latency percentiles); ``None`` on the legacy serial path.
    """

    mode: DeploymentMode
    total_frames: int = 0
    edge_seconds: float = 0.0
    cloud_seconds: float = 0.0
    transfer_seconds: float = 0.0
    camera_edge_bytes: int = 0
    edge_cloud_bytes: int = 0
    frames_for_inference: int = 0
    accuracy: Optional[float] = None
    per_video: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fleet: Optional[FleetReport] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end processing time (compute + transfer, serial model)."""
        return self.edge_seconds + self.cloud_seconds + self.transfer_seconds

    @property
    def throughput_fps(self) -> float:
        """Frames per second over the whole corpus (Figure 4's metric)."""
        if self.total_seconds <= 0:
            return float("inf")
        return self.total_frames / self.total_seconds

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view (used by the benchmark tables)."""
        return {
            "mode": self.mode.label,
            "total_frames": float(self.total_frames),
            "throughput_fps": self.throughput_fps,
            "edge_seconds": self.edge_seconds,
            "cloud_seconds": self.cloud_seconds,
            "transfer_seconds": self.transfer_seconds,
            "camera_edge_gb": self.camera_edge_bytes / 1e9,
            "edge_cloud_gb": self.edge_cloud_bytes / 1e9,
            "frames_for_inference": float(self.frames_for_inference),
            "accuracy": self.accuracy if self.accuracy is not None else float("nan"),
        }


def build_workload(instance: DatasetInstance,
                   semantic_parameters: Optional[EncoderParameters] = None,
                   config: Optional[SystemConfig] = None,
                   default_parameters: EncoderParameters = DEFAULT_PARAMETERS,
                   target_f1: float = 0.95,
                   unlabelled_sample_period_seconds: float = 5.0,
                   activities: Optional[List[FrameActivity]] = None
                   ) -> VideoWorkload:
    """Prepare one video for the end-to-end simulation.

    Follows the paper's protocol: the semantic parameters and the MSE
    threshold are the ones achieving (closest to) an F1 score of
    ``target_f1`` on labelled footage; for the unlabelled datasets both
    approaches are pinned to one sampled frame per
    ``unlabelled_sample_period_seconds`` seconds.

    Args:
        instance: The dataset clip (with ground truth when available).
        semantic_parameters: Tuned encoder parameters; when ``None`` and the
            dataset is labelled they are obtained by running the offline
            tuner on the clip itself.
        config: System configuration (NN input resolution, seed, and the
            numeric ``precision`` the analysis/tuning/encode stages run
            under).
        default_parameters: The non-semantic encoder configuration.
        target_f1: F1 target used to select the MSE threshold.
        unlabelled_sample_period_seconds: Sampling period used when no ground
            truth exists.
        activities: Optional precomputed analysis pass of the clip (e.g. from
            a cached :class:`~repro.experiments.PreparedDataset`), saving the
            lookahead re-run.

    Returns:
        The condensed :class:`VideoWorkload`.
    """
    config = config or SystemConfig()
    precision = config.precision
    video = instance.video
    timeline = instance.timeline
    spec = instance.spec
    num_frames = video.metadata.num_frames
    fps = video.metadata.fps
    size_scale = (spec.size_scale_to_nominal(video.metadata.resolution)
                  * H264_EFFICIENCY_FACTOR)

    # --- analysis pass + semantic parameters ------------------------------
    with perf_section("pipeline.analyze"):
        if activities is None:
            activities = VideoEncoder(default_parameters,
                                      precision).analyze(video)
    if semantic_parameters is None:
        if timeline is not None:
            with perf_section("pipeline.tune"):
                tuner = SemanticEncoderTuner(TuningGrid(), default_parameters,
                                             precision)
                semantic_parameters = tuner.tune_from_activities(
                    activities, timeline, spec.name).best_parameters
        else:
            # Unlabelled feed: pin the I-frame rate to one per N seconds.
            gop = max(int(round(unlabelled_sample_period_seconds * fps)), 1)
            semantic_parameters = default_parameters.with_(
                gop_size=gop, scenecut_threshold=0.0)

    # --- encode under both configurations (size-only) ---------------------
    with perf_section("pipeline.encode"):
        semantic_encoded = VideoEncoder(semantic_parameters, precision).encode(
            video, activities=activities)
        default_encoded = VideoEncoder(default_parameters, precision).encode(
            video, activities=activities)
    semantic_samples = semantic_encoded.keyframe_indices

    # --- MSE baseline threshold -------------------------------------------
    with perf_section("pipeline.mse_baseline"):
        mse_scores = score_video(MseChangeDetector(), video)
        if timeline is not None:
            mse_samples = _mse_samples_for_f1(mse_scores, timeline, target_f1)
        else:
            period = max(int(round(unlabelled_sample_period_seconds * fps)), 1)
            mse_samples = list(range(0, num_frames, period))

    # --- uniform sampling matched to the semantic I-frame count -----------
    interval = max(num_frames // max(len(semantic_samples), 1), 1)
    uniform_samples = list(range(0, num_frames, interval))

    width, height = config.nn_input_resolution
    resized_bytes = resized_frame_bytes(width, height)
    return VideoWorkload(
        name=spec.name,
        num_frames=num_frames,
        nominal_resolution=spec.nominal_resolution,
        semantic_bytes=int(semantic_encoded.total_size_bytes * size_scale),
        default_bytes=int(default_encoded.total_size_bytes * size_scale),
        semantic_iframe_bytes=int(semantic_encoded.keyframe_size_bytes * size_scale),
        semantic_samples=list(semantic_samples),
        mse_samples=list(mse_samples),
        uniform_samples=uniform_samples,
        resized_frame_bytes=resized_bytes,
        timeline=timeline,
    )


def _mse_samples_for_f1(scores: Sequence[float], timeline: EventTimeline,
                        target_f1: float) -> List[int]:
    """Pick the MSE threshold whose F1 score is closest to ``target_f1``."""
    finite = sorted({float(score) for score in scores if score != float("inf")})
    candidates = finite[:: max(len(finite) // 64, 1)] + [float("inf")]
    best_samples: List[int] = [0]
    best_gap = float("inf")
    for threshold in candidates:
        samples = ThresholdSampler(threshold).sample(scores)
        score = evaluate_sampling(timeline, samples)
        gap = abs(score.f1 - target_f1)
        if gap < best_gap:
            best_gap = gap
            best_samples = samples
    return best_samples


def plan_camera_job(workload: VideoWorkload, mode: DeploymentMode,
                    cost_model: Optional[CostModel] = None,
                    camera: Optional[str] = None,
                    edge_speed_factor: Optional[float] = None,
                    cloud_speed_factor: Optional[float] = None) -> CameraJob:
    """Plan one workload's per-tier costs under a deployment mode.

    The arithmetic is charge-for-charge identical to the seed simulation's
    serial replay (:meth:`EndToEndSimulation._run_one`); the result is a
    side-effect-free :class:`~repro.cluster.fleet.CameraJob` that the fleet
    scheduler can place on any edge server.

    Args:
        workload: The prepared video workload.
        mode: Deployment mode to plan for.
        cost_model: Calibrated cost model (defaults to the paper's).
        camera: Camera name (defaults to the workload name).
        edge_speed_factor: Edge CPU speed (defaults to the paper's edge
            desktop, 1.0).
        cloud_speed_factor: Cloud CPU speed (defaults to the paper's cloud
            server, 2.2).

    Returns:
        The planned camera job.

    Raises:
        PipelineError: If ``mode`` is not a known deployment mode.
    """
    cost_model = cost_model or CostModel()
    edge_speed = (edge_speed_factor if edge_speed_factor is not None
                  else default_edge_node().speed_factor)
    cloud_speed = (cloud_speed_factor if cloud_speed_factor is not None
                   else default_cloud_node().speed_factor)
    samples = workload.samples_for(mode)
    num_samples = len(samples)
    resolution = workload.nominal_resolution
    num_frames = workload.num_frames
    camera_edge_bytes = (workload.semantic_bytes if mode.uses_semantic_encoding
                         else workload.default_bytes)
    edge_seconds = 0.0
    cloud_seconds = 0.0

    if mode is DeploymentMode.IFRAME_EDGE_CLOUD_NN:
        edge_seconds += cost_model.seek_seconds(num_frames, resolution, edge_speed)
        edge_seconds += cost_model.jpeg_decode_seconds(num_samples, resolution,
                                                       edge_speed)
        edge_seconds += cost_model.resize_seconds(num_samples, edge_speed)
        edge_cloud_bytes = num_samples * workload.resized_frame_bytes
        description = f"iframes:{workload.name}"
        cloud_seconds += cost_model.nn_seconds(num_samples, device="cloud")
    elif mode is DeploymentMode.IFRAME_CLOUD_CLOUD_NN:
        edge_cloud_bytes = workload.semantic_bytes
        description = f"full-video:{workload.name}"
        cloud_seconds += cost_model.seek_seconds(num_frames, resolution,
                                                 cloud_speed)
        cloud_seconds += cost_model.jpeg_decode_seconds(num_samples, resolution,
                                                        cloud_speed)
        cloud_seconds += cost_model.resize_seconds(num_samples, cloud_speed)
        cloud_seconds += cost_model.nn_seconds(num_samples, device="cloud")
    elif mode is DeploymentMode.IFRAME_EDGE_EDGE_NN:
        edge_seconds += cost_model.seek_seconds(num_frames, resolution, edge_speed)
        edge_seconds += cost_model.jpeg_decode_seconds(num_samples, resolution,
                                                       edge_speed)
        edge_seconds += cost_model.resize_seconds(num_samples, edge_speed)
        edge_seconds += cost_model.nn_seconds(num_samples, device="edge")
        # Only the detection results travel to the cloud.
        edge_cloud_bytes = num_samples * 128
        description = f"results:{workload.name}"
    elif mode is DeploymentMode.UNIFORM_EDGE_CLOUD_NN:
        edge_seconds += cost_model.decode_seconds(num_frames, resolution,
                                                  edge_speed)
        edge_seconds += cost_model.resize_seconds(num_samples, edge_speed)
        edge_cloud_bytes = num_samples * workload.resized_frame_bytes
        description = f"uniform:{workload.name}"
        cloud_seconds += cost_model.nn_seconds(num_samples, device="cloud")
    elif mode is DeploymentMode.MSE_EDGE_CLOUD_NN:
        edge_seconds += cost_model.decode_seconds(num_frames, resolution,
                                                  edge_speed)
        edge_seconds += cost_model.mse_seconds(num_frames, resolution, edge_speed)
        edge_seconds += cost_model.resize_seconds(num_samples, edge_speed)
        edge_cloud_bytes = num_samples * workload.resized_frame_bytes
        description = f"mse:{workload.name}"
        cloud_seconds += cost_model.nn_seconds(num_samples, device="cloud")
    else:  # pragma: no cover - exhaustive over the enum.
        raise PipelineError(f"unhandled deployment mode {mode!r}")

    accuracy = float("nan")
    if workload.timeline is not None:
        accuracy = evaluate_sampling(workload.timeline, samples).accuracy
    return CameraJob(
        camera=camera or workload.name,
        video=workload.name,
        num_frames=num_frames,
        frames_for_inference=num_samples,
        edge_seconds=edge_seconds,
        cloud_seconds=cloud_seconds,
        camera_edge_bytes=int(camera_edge_bytes),
        edge_cloud_bytes=int(edge_cloud_bytes),
        transfer_description=description,
        accuracy=accuracy,
    )


class EndToEndSimulation:
    """Replays the five deployment modes over a set of prepared workloads.

    The replay runs on the discrete-event fleet scheduler: each workload is
    planned into a :class:`~repro.cluster.fleet.CameraJob` and executed by a
    :class:`~repro.cluster.fleet.FleetOrchestrator`.  With the default
    single edge server the reported totals match the seed's serial
    accounting to within floating-point reassociation (~1e-12 relative); the
    exact legacy path remains available as :meth:`run_serial`.

    Args:
        workloads: Prepared video workloads.
        config: System configuration (bandwidths, calibration).
        num_edge_servers: Edge servers to shard the cameras across.
        placement: Camera placement policy for multi-edge fleets.
    """

    def __init__(self, workloads: Sequence[VideoWorkload],
                 config: Optional[SystemConfig] = None,
                 num_edge_servers: int = 1,
                 placement: "PlacementPolicy | str" = PlacementPolicy.ROUND_ROBIN
                 ) -> None:
        if not workloads:
            raise PipelineError("the simulation needs at least one workload")
        if num_edge_servers < 1:
            raise PipelineError("num_edge_servers must be >= 1")
        self.workloads = list(workloads)
        self.config = config or SystemConfig()
        self.cost_model = CostModel(self.config.hardware)
        self.num_edge_servers = int(num_edge_servers)
        self.placement = PlacementPolicy.from_name(placement)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan_jobs(self, mode: DeploymentMode) -> List[CameraJob]:
        """Plan one camera job per workload for ``mode``."""
        return [
            plan_camera_job(workload, mode, self.cost_model,
                            camera=f"cam-{index:03d}:{workload.name}")
            for index, workload in enumerate(self.workloads)
        ]

    # ------------------------------------------------------------------ #
    # Single-mode simulation
    # ------------------------------------------------------------------ #
    def run(self, mode: DeploymentMode) -> DeploymentReport:
        """Simulate one deployment mode over every workload.

        The jobs execute on the shared virtual clock; the report's totals
        come from the fleet's per-tier accounting and its ``fleet`` field
        carries utilisation, queue depths and latency percentiles.
        """
        jobs = self.plan_jobs(mode)
        orchestrator = FleetOrchestrator(
            jobs, num_edge_servers=self.num_edge_servers, config=self.config,
            policy=self.placement)
        fleet = orchestrator.run()
        report = DeploymentReport(mode=mode, fleet=fleet)
        accuracies: List[float] = []
        wan = NetworkLink("wan-formula", self.config.edge_cloud_bandwidth_mbps,
                          self.config.edge_cloud_latency_ms)
        for workload, job in zip(self.workloads, jobs):
            report.per_video[workload.name] = {
                "frames": float(job.num_frames),
                "frames_for_inference": float(job.frames_for_inference),
                "edge_seconds": job.edge_seconds,
                "cloud_seconds": job.cloud_seconds,
                "transfer_seconds": wan.transfer_seconds(job.edge_cloud_bytes),
                "camera_edge_bytes": float(job.camera_edge_bytes),
                "edge_cloud_bytes": float(job.edge_cloud_bytes),
                "accuracy": job.accuracy,
            }
            report.total_frames += job.num_frames
            report.frames_for_inference += job.frames_for_inference
            report.camera_edge_bytes += job.camera_edge_bytes
            report.edge_cloud_bytes += job.edge_cloud_bytes
            if workload.timeline is not None:
                accuracies.append(job.accuracy)
        report.edge_seconds = fleet.edge_busy_seconds
        report.cloud_seconds = fleet.cloud_busy_seconds
        report.transfer_seconds = fleet.wan_transfer_seconds
        report.accuracy = (sum(accuracies) / len(accuracies)) if accuracies else None
        _LOGGER.debug("%s: %.1f fps, %.2f GB edge->cloud", mode.label,
                      report.throughput_fps, report.edge_cloud_bytes / 1e9)
        return report

    def run_serial(self, mode: DeploymentMode) -> DeploymentReport:
        """The seed's serial replay (kept as the regression reference).

        Charges every stage to one edge server, one cloud server and one
        uncontended WAN link in workload order, exactly as the pre-scheduler
        implementation did.
        """
        report = DeploymentReport(mode=mode)
        edge = EdgeServer(cost_model=self.cost_model)
        cloud = CloudServer(cost_model=self.cost_model)
        wan = NetworkLink("edge-cloud", self.config.edge_cloud_bandwidth_mbps,
                          self.config.edge_cloud_latency_ms)
        accuracies: List[float] = []
        for workload in self.workloads:
            breakdown = self._run_one(workload, mode, edge, cloud, wan)
            report.per_video[workload.name] = breakdown
            report.total_frames += workload.num_frames
            report.frames_for_inference += int(breakdown["frames_for_inference"])
            report.camera_edge_bytes += int(breakdown["camera_edge_bytes"])
            report.edge_cloud_bytes += int(breakdown["edge_cloud_bytes"])
            if workload.timeline is not None:
                accuracies.append(breakdown["accuracy"])
        report.edge_seconds = edge.node.busy_seconds
        report.cloud_seconds = cloud.node.busy_seconds
        report.transfer_seconds = wan.total_seconds
        report.accuracy = (sum(accuracies) / len(accuracies)) if accuracies else None
        _LOGGER.debug("%s: %.1f fps, %.2f GB edge->cloud", mode.label,
                      report.throughput_fps, report.edge_cloud_bytes / 1e9)
        return report

    def _run_one(self, workload: VideoWorkload, mode: DeploymentMode,
                 edge: EdgeServer, cloud: CloudServer,
                 wan: NetworkLink) -> Dict[str, float]:
        samples = workload.samples_for(mode)
        num_samples = len(samples)
        resolution = workload.nominal_resolution
        num_frames = workload.num_frames
        edge_before = edge.node.busy_seconds
        cloud_before = cloud.node.busy_seconds
        transfer_before = wan.total_seconds
        camera_edge_bytes = (workload.semantic_bytes if mode.uses_semantic_encoding
                             else workload.default_bytes)
        edge_cloud_bytes = 0

        if mode is DeploymentMode.IFRAME_EDGE_CLOUD_NN:
            edge.node.charge(self.cost_model.seek_seconds(
                num_frames, resolution, edge.node.speed_factor))
            edge.decode_keyframes(num_samples, resolution)
            edge.resize_frames(num_samples)
            edge_cloud_bytes = num_samples * workload.resized_frame_bytes
            wan.transfer(edge_cloud_bytes, f"iframes:{workload.name}")
            cloud.run_cloud_nn(num_samples)
        elif mode is DeploymentMode.IFRAME_CLOUD_CLOUD_NN:
            edge_cloud_bytes = workload.semantic_bytes
            wan.transfer(edge_cloud_bytes, f"full-video:{workload.name}")
            cloud.node.charge(self.cost_model.seek_seconds(
                num_frames, resolution, cloud.node.speed_factor))
            cloud.decode_keyframes(num_samples, resolution)
            cloud.node.charge(self.cost_model.resize_seconds(
                num_samples, cloud.node.speed_factor))
            cloud.run_cloud_nn(num_samples)
        elif mode is DeploymentMode.IFRAME_EDGE_EDGE_NN:
            edge.node.charge(self.cost_model.seek_seconds(
                num_frames, resolution, edge.node.speed_factor))
            edge.decode_keyframes(num_samples, resolution)
            edge.resize_frames(num_samples)
            edge.run_edge_nn(num_samples)
            # Only the detection results travel to the cloud.
            edge_cloud_bytes = num_samples * 128
            wan.transfer(edge_cloud_bytes, f"results:{workload.name}")
        elif mode is DeploymentMode.UNIFORM_EDGE_CLOUD_NN:
            edge.node.charge(self.cost_model.decode_seconds(
                num_frames, resolution, edge.node.speed_factor))
            edge.resize_frames(num_samples)
            edge_cloud_bytes = num_samples * workload.resized_frame_bytes
            wan.transfer(edge_cloud_bytes, f"uniform:{workload.name}")
            cloud.run_cloud_nn(num_samples)
        elif mode is DeploymentMode.MSE_EDGE_CLOUD_NN:
            edge.node.charge(self.cost_model.decode_seconds(
                num_frames, resolution, edge.node.speed_factor))
            edge.run_mse_filter(num_frames, resolution)
            edge.resize_frames(num_samples)
            edge_cloud_bytes = num_samples * workload.resized_frame_bytes
            wan.transfer(edge_cloud_bytes, f"mse:{workload.name}")
            cloud.run_cloud_nn(num_samples)
        else:  # pragma: no cover - exhaustive over the enum.
            raise PipelineError(f"unhandled deployment mode {mode!r}")

        accuracy = float("nan")
        if workload.timeline is not None:
            accuracy = evaluate_sampling(workload.timeline, samples).accuracy
        return {
            "frames": float(num_frames),
            "frames_for_inference": float(num_samples),
            "edge_seconds": edge.node.busy_seconds - edge_before,
            "cloud_seconds": cloud.node.busy_seconds - cloud_before,
            "transfer_seconds": wan.total_seconds - transfer_before,
            "camera_edge_bytes": float(camera_edge_bytes),
            "edge_cloud_bytes": float(edge_cloud_bytes),
            "accuracy": accuracy,
        }

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def run_all(self, modes: Sequence[DeploymentMode] = ALL_DEPLOYMENT_MODES
                ) -> Dict[DeploymentMode, DeploymentReport]:
        """Simulate every requested mode."""
        return {mode: self.run(mode) for mode in modes}

    def throughput_vs_corpus_size(self, mode: DeploymentMode,
                                  video_counts: Sequence[int]
                                  ) -> Dict[int, DeploymentReport]:
        """Throughput when only the first ``n`` videos are processed.

        Reproduces the x-axis of Figure 4 (1 video, 3 videos, 5 videos).
        """
        reports = {}
        for count in video_counts:
            if not 1 <= count <= len(self.workloads):
                raise PipelineError(
                    f"video count {count} out of range [1, {len(self.workloads)}]")
            subset = EndToEndSimulation(self.workloads[:count], self.config,
                                        num_edge_servers=self.num_edge_servers,
                                        placement=self.placement)
            reports[count] = subset.run(mode)
        return reports
