"""High-level SiEVE facade.

:class:`Sieve` ties the pieces together the way an operator would use the
system (Figure 1): tune each camera offline, store the winning parameters in
the lookup table, configure the cameras, and then analyse footage — either
just answering "which frames changed and what is in them" for one video, or
simulating a full multi-camera edge/cloud deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cluster.resultdb import ResultDatabase
from ..codec.encoder import VideoEncoder
from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..codec.iframe_seeker import IFrameSeeker, select_events_from_keyframes
from ..config import SystemConfig
from ..datasets.generator import DatasetInstance
from ..errors import PipelineError
from ..nn.oracle import ObjectDetector, OracleDetector
from ..video.events import EventTimeline
from ..video.raw_video import VideoSource
from .deployment import DeploymentMode
from .metrics import DetectionScore, evaluate_sampling
from .pipeline import DeploymentReport, EndToEndSimulation, build_workload
from .tuner import (ParameterLookupTable, SemanticEncoderTuner, TuningGrid,
                    TuningResult)


@dataclass
class VideoAnalysisResult:
    """Per-video outcome of :meth:`Sieve.analyze_video`.

    Attributes:
        video_name: Analysed video.
        keyframe_indices: Frames selected by the I-frame seeker.
        frame_labels: Per-frame object labels after label propagation.
        score: Accuracy/F1 against ground truth when available.
        parameters: Encoder parameters used.
    """

    video_name: str
    keyframe_indices: List[int]
    frame_labels: List[frozenset]
    score: Optional[DetectionScore]
    parameters: EncoderParameters

    @property
    def num_events_detected(self) -> int:
        """Number of segments induced by the selected I-frames."""
        return len(self.keyframe_indices)


class Sieve:
    """The SiEVE system facade.

    Args:
        config: System configuration (bandwidths, hardware calibration, and
            the numeric ``precision`` the tuning/encode paths run under —
            ``"fast"`` selects the float32 kernels bounded by
            :data:`repro.contracts.FAST_CONTRACT`).
        tuning_grid: Grid explored when tuning cameras.
        base_parameters: Non-tuned encoder parameters.
    """

    def __init__(self, config: Optional[SystemConfig] = None,
                 tuning_grid: Optional[TuningGrid] = None,
                 base_parameters: EncoderParameters = DEFAULT_PARAMETERS) -> None:
        self.config = config or SystemConfig()
        self.tuning_grid = tuning_grid or TuningGrid()
        self.base_parameters = base_parameters
        self.lookup_table = ParameterLookupTable()
        self.results = ResultDatabase()

    # ------------------------------------------------------------------ #
    # Offline stage
    # ------------------------------------------------------------------ #
    def tune_camera(self, camera_name: str, footage: VideoSource,
                    timeline: Optional[EventTimeline] = None) -> TuningResult:
        """Tune a camera's encoder on labelled footage and remember the result."""
        tuner = SemanticEncoderTuner(self.tuning_grid, self.base_parameters,
                                     self.config.precision)
        result = tuner.tune(footage, timeline, camera_name)
        self.lookup_table.store(camera_name, result.best_parameters)
        return result

    def parameters_for(self, camera_name: str) -> EncoderParameters:
        """Tuned parameters of a camera (defaults when it was never tuned)."""
        if camera_name in self.lookup_table:
            return self.lookup_table.lookup(camera_name)
        return self.base_parameters

    # ------------------------------------------------------------------ #
    # Online stage: single-video analysis
    # ------------------------------------------------------------------ #
    def analyze_video(self, video: VideoSource,
                      camera_name: Optional[str] = None,
                      detector: Optional[ObjectDetector] = None,
                      parameters: Optional[EncoderParameters] = None,
                      detector_batch_size: Optional[int] = None
                      ) -> VideoAnalysisResult:
        """Run the SiEVE path over one video and label every frame.

        The video is (re-)encoded with the camera's tuned parameters, the
        I-frame seeker selects the key frames, the detector labels them
        (through its batched path, ``detector_batch_size`` frames per call —
        defaulting to the system config's ``nn_batch_size``), and every other
        frame inherits the labels of its segment's leading I-frame.  Results
        are also written to the result database.
        """
        if detector_batch_size is None:
            detector_batch_size = self.config.nn_batch_size
        if detector_batch_size < 1:
            raise PipelineError(
                f"detector_batch_size must be >= 1, got {detector_batch_size}")
        name = camera_name or video.metadata.name
        parameters = parameters or self.parameters_for(name)
        timeline = getattr(video, "timeline", None)
        if detector is None:
            if timeline is None:
                raise PipelineError(
                    "analyze_video needs a detector when the video has no ground truth")
            detector = OracleDetector(timeline)
        encoded = VideoEncoder(parameters, self.config.precision).encode(video)
        keyframes = IFrameSeeker().keyframe_indices(encoded)
        segments = select_events_from_keyframes(keyframes, encoded.num_frames)
        starts = [start for start, _ in segments]
        segment_labels: List[frozenset] = []
        for chunk_start in range(0, len(starts), detector_batch_size):
            chunk = starts[chunk_start:chunk_start + detector_batch_size]
            segment_labels.extend(detector.detect_batch(chunk))
        frame_labels: List[frozenset] = [frozenset()] * encoded.num_frames
        for (start, stop), labels in zip(segments, segment_labels):
            self.results.record(name, start, labels)
            for index in range(start, stop):
                frame_labels[index] = labels
        score = evaluate_sampling(timeline, keyframes) if timeline is not None else None
        return VideoAnalysisResult(video_name=name, keyframe_indices=keyframes,
                                   frame_labels=frame_labels, score=score,
                                   parameters=parameters)

    # ------------------------------------------------------------------ #
    # Online stage: multi-camera deployment simulation
    # ------------------------------------------------------------------ #
    def simulate_deployment(self, instances: Sequence[DatasetInstance],
                            mode: DeploymentMode = DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                            tune: bool = True) -> DeploymentReport:
        """Simulate an end-to-end deployment over several camera feeds.

        Args:
            instances: Dataset clips (one per camera).
            mode: Deployment mode to simulate.
            tune: Tune labelled cameras before building their workloads
                (unlabelled cameras always fall back to the fixed-rate rule).

        Returns:
            The deployment report (throughput, transfer, accuracy).
        """
        if not instances:
            raise PipelineError("simulate_deployment needs at least one camera feed")
        workloads = []
        for instance in instances:
            parameters = None
            if tune and instance.timeline is not None:
                if instance.name not in self.lookup_table:
                    self.tune_camera(instance.name, instance.video, instance.timeline)
                parameters = self.lookup_table.lookup(instance.name)
            workloads.append(build_workload(instance, parameters, self.config,
                                            self.base_parameters))
        return EndToEndSimulation(workloads, self.config).run(mode)
