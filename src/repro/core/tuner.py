"""Offline tuning of the semantic video encoder (Section IV, Figure 2).

The tuner reproduces the three-step offline procedure of the paper:

1. re-encode historical, labelled footage of a camera under every
   configuration of a ``k x l`` grid of (GOP size, scenecut threshold)
   values;
2. score every configuration by the event-detection accuracy ``acc_i`` and
   the filtering rate ``fr_i`` of its I-frame placement, combined into the
   F1 score ``2*acc*fr/(acc+fr)``;
3. keep the configuration with the highest F1 score; it is stored in a
   lookup table and used to encode the camera's live feed from then on.

Re-encoding the footage k*l times is unnecessary with this codec: I-frame
placement is a pure function of the parameter pair and the per-frame
scene-cut analysis, which is parameter independent.  The tuner therefore
runs the analysis pass once and replays the placement for every
configuration, which is what makes the grid search cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters, KeyframePlacer
from ..codec.scenecut import FrameActivity
from ..errors import TuningError
from ..logging_utils import get_logger
from ..video.events import EventTimeline
from ..video.raw_video import VideoSource
from .metrics import DetectionScore, evaluate_sampling

_LOGGER = get_logger(__name__)

#: The grid explored by the paper: k = 5 GOP sizes and l = 5 scenecut values.
DEFAULT_GOP_GRID: Tuple[int, ...] = (100, 250, 500, 1000, 5000)
DEFAULT_SCENECUT_GRID: Tuple[float, ...] = (20.0, 40.0, 100.0, 200.0, 250.0)


@dataclass(frozen=True)
class TuningGrid:
    """The configuration grid explored by the offline tuner.

    Attributes:
        gop_sizes: Candidate GOP sizes (the paper's ``k`` values).
        scenecut_thresholds: Candidate scenecut thresholds (``l`` values).
    """

    gop_sizes: Tuple[int, ...] = DEFAULT_GOP_GRID
    scenecut_thresholds: Tuple[float, ...] = DEFAULT_SCENECUT_GRID

    def __post_init__(self) -> None:
        if not self.gop_sizes or not self.scenecut_thresholds:
            raise TuningError("the tuning grid must not be empty")

    @property
    def num_configurations(self) -> int:
        """Total number of configurations (k * l)."""
        return len(self.gop_sizes) * len(self.scenecut_thresholds)

    def configurations(self, base: Optional[EncoderParameters] = None
                       ) -> List[EncoderParameters]:
        """Materialise every (GOP, scenecut) configuration of the grid."""
        base = base or EncoderParameters()
        return [base.with_(gop_size=gop, scenecut_threshold=scenecut)
                for gop in self.gop_sizes
                for scenecut in self.scenecut_thresholds]


@dataclass(frozen=True)
class ConfigurationResult:
    """Score of one configuration of the grid.

    Attributes:
        parameters: The evaluated encoder configuration.
        score: Its event-detection score on the tuning footage.
        keyframe_indices: The I-frame placement it produced.
    """

    parameters: EncoderParameters
    score: DetectionScore
    keyframe_indices: Tuple[int, ...] = field(default=(), repr=False)


@dataclass
class TuningResult:
    """Outcome of a full grid search.

    Attributes:
        best: The configuration with the highest F1 score.
        results: Every configuration's result, in grid order.
        camera_name: Name of the tuned camera/dataset.
    """

    best: ConfigurationResult
    results: List[ConfigurationResult]
    camera_name: str = ""

    @property
    def best_parameters(self) -> EncoderParameters:
        """The tuned encoder parameters."""
        return self.best.parameters

    def leaderboard(self, top: int = 5) -> List[ConfigurationResult]:
        """The ``top`` configurations ordered by descending F1 score."""
        ranked = sorted(self.results, key=lambda result: result.score.f1, reverse=True)
        return ranked[:top]

    def as_table(self) -> List[Dict[str, float]]:
        """Tabular view of the grid (used by the tuning example)."""
        return [{
            "gop_size": result.parameters.gop_size,
            "scenecut": result.parameters.scenecut_threshold,
            "accuracy": result.score.accuracy,
            "sampling_fraction": result.score.sampling_fraction,
            "f1": result.score.f1,
        } for result in self.results]


class SemanticEncoderTuner:
    """Grid-search tuner for the semantic video encoder.

    Args:
        grid: The (GOP, scenecut) grid to explore.
        base_parameters: Template providing the non-tuned parameters
            (quality, block size, motion-search radius).
        precision: Numeric mode of the analysis pass (``"exact"`` default;
            ``"fast"`` selects the float32 motion search).
    """

    def __init__(self, grid: Optional[TuningGrid] = None,
                 base_parameters: Optional[EncoderParameters] = None,
                 precision: str = "exact") -> None:
        self.grid = grid or TuningGrid()
        self.base_parameters = base_parameters or EncoderParameters()
        from ..contracts import validate_precision
        self.precision = validate_precision(precision)

    # ------------------------------------------------------------------ #
    # Grid search
    # ------------------------------------------------------------------ #
    def analyze(self, video: VideoSource) -> List[FrameActivity]:
        """Run the parameter-independent analysis pass over the footage."""
        return VideoEncoder(self.base_parameters, self.precision).analyze(video)

    def tune_from_activities(self, activities: Sequence[FrameActivity],
                             timeline: EventTimeline,
                             camera_name: str = "") -> TuningResult:
        """Grid-search using a precomputed analysis pass.

        Args:
            activities: Per-frame analysis of the tuning footage.
            timeline: Ground-truth event timeline of the same footage.
            camera_name: Name recorded in the result.

        Returns:
            The :class:`TuningResult`.

        Raises:
            TuningError: If the analysis pass and timeline disagree in length.
        """
        if len(activities) != timeline.num_frames:
            raise TuningError(
                f"analysis pass covers {len(activities)} frames but the timeline "
                f"has {timeline.num_frames}")
        results: List[ConfigurationResult] = []
        for parameters in self.grid.configurations(self.base_parameters):
            keyframes = KeyframePlacer(parameters).keyframe_indices(activities)
            score = evaluate_sampling(timeline, keyframes)
            results.append(ConfigurationResult(parameters=parameters, score=score,
                                               keyframe_indices=tuple(keyframes)))
        best = max(results, key=lambda result: result.score.f1)
        _LOGGER.debug("tuned %s: best %s (F1=%.3f, acc=%.3f, SS=%.4f)",
                      camera_name or "camera", best.parameters.describe(),
                      best.score.f1, best.score.accuracy,
                      best.score.sampling_fraction)
        return TuningResult(best=best, results=results, camera_name=camera_name)

    def tune(self, video: VideoSource, timeline: Optional[EventTimeline] = None,
             camera_name: str = "") -> TuningResult:
        """Analyse the footage and grid-search the best configuration.

        Args:
            video: Labelled tuning footage.
            timeline: Ground truth; defaults to the video's own ``timeline``.
            camera_name: Name recorded in the result (defaults to the video
                name).

        Returns:
            The :class:`TuningResult`.
        """
        timeline = timeline if timeline is not None else getattr(video, "timeline", None)
        if timeline is None:
            raise TuningError("tuning requires a ground-truth event timeline")
        activities = self.analyze(video)
        return self.tune_from_activities(activities, timeline,
                                         camera_name or video.metadata.name)


class ParameterLookupTable:
    """The per-camera lookup table of tuned parameters (Section IV).

    The operator tunes each camera offline and stores the winning parameters
    here; the online path reads them back when configuring the camera.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, EncoderParameters] = {}

    def store(self, camera_name: str, parameters: EncoderParameters) -> None:
        """Record the tuned parameters of a camera."""
        self._entries[camera_name] = parameters

    def lookup(self, camera_name: str) -> EncoderParameters:
        """Fetch the tuned parameters of a camera."""
        try:
            return self._entries[camera_name]
        except KeyError as exc:
            raise TuningError(f"no tuned parameters stored for {camera_name!r}") from exc

    def __contains__(self, camera_name: str) -> bool:
        return camera_name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> Dict[str, EncoderParameters]:
        """A copy of the underlying mapping."""
        return dict(self._entries)
