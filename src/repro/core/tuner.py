"""Offline tuning of the semantic video encoder (Section IV, Figure 2).

The tuner reproduces the three-step offline procedure of the paper:

1. re-encode historical, labelled footage of a camera under every
   configuration of a ``k x l`` grid of (GOP size, scenecut threshold)
   values;
2. score every configuration by the event-detection accuracy ``acc_i`` and
   the filtering rate ``fr_i`` of its I-frame placement, combined into the
   F1 score ``2*acc*fr/(acc+fr)``;
3. keep the configuration with the highest F1 score; it is stored in a
   lookup table and used to encode the camera's live feed from then on.

Re-encoding the footage k*l times is unnecessary with this codec: I-frame
placement is a pure function of the parameter pair and the per-frame
scene-cut analysis, which is parameter independent.  The tuner therefore
runs the analysis pass once and replays the placement for every
configuration, which is what makes the grid search cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters, KeyframePlacer
from ..codec.scenecut import FrameActivity
from ..errors import TuningError
from ..logging_utils import get_logger
from ..video.events import EventTimeline
from ..video.raw_video import VideoSource
from .metrics import DetectionScore, evaluate_sampling

_LOGGER = get_logger(__name__)

#: The grid explored by the paper: k = 5 GOP sizes and l = 5 scenecut values.
DEFAULT_GOP_GRID: Tuple[int, ...] = (100, 250, 500, 1000, 5000)
DEFAULT_SCENECUT_GRID: Tuple[float, ...] = (20.0, 40.0, 100.0, 200.0, 250.0)


@dataclass(frozen=True)
class TuningGrid:
    """The configuration grid explored by the offline tuner.

    Attributes:
        gop_sizes: Candidate GOP sizes (the paper's ``k`` values).
        scenecut_thresholds: Candidate scenecut thresholds (``l`` values).
    """

    gop_sizes: Tuple[int, ...] = DEFAULT_GOP_GRID
    scenecut_thresholds: Tuple[float, ...] = DEFAULT_SCENECUT_GRID

    def __post_init__(self) -> None:
        if not self.gop_sizes or not self.scenecut_thresholds:
            raise TuningError("the tuning grid must not be empty")

    @property
    def num_configurations(self) -> int:
        """Total number of configurations (k * l)."""
        return len(self.gop_sizes) * len(self.scenecut_thresholds)

    def configurations(self, base: Optional[EncoderParameters] = None
                       ) -> List[EncoderParameters]:
        """Materialise every (GOP, scenecut) configuration of the grid."""
        base = base or EncoderParameters()
        return [base.with_(gop_size=gop, scenecut_threshold=scenecut)
                for gop in self.gop_sizes
                for scenecut in self.scenecut_thresholds]


@dataclass(frozen=True)
class ConfigurationResult:
    """Score of one configuration of the grid.

    Attributes:
        parameters: The evaluated encoder configuration.
        score: Its event-detection score on the tuning footage.
        keyframe_indices: The I-frame placement it produced.
    """

    parameters: EncoderParameters
    score: DetectionScore
    keyframe_indices: Tuple[int, ...] = field(default=(), repr=False)


@dataclass
class TuningResult:
    """Outcome of a full grid search.

    Tie-break contract: configurations with exactly equal F1 scores rank
    in **grid order** — the order :meth:`TuningGrid.configurations`
    yields them (GOP-major, scenecut-minor).  ``best`` is the *first*
    configuration in grid order among the F1 maxima (``max`` keeps the
    first maximum) and :meth:`leaderboard` preserves grid order within
    every tied group (``sorted`` is stable).  This is deliberate and
    pinned by tests: a deterministic tie-break is what lets the online
    retune controller recognise a tie-equal "winner" and skip the retune
    instead of churning sessions.

    Attributes:
        best: The configuration with the highest F1 score (first in grid
            order on ties).
        results: Every configuration's result, in grid order.
        camera_name: Name of the tuned camera/dataset.
    """

    best: ConfigurationResult
    results: List[ConfigurationResult]
    camera_name: str = ""

    @property
    def best_parameters(self) -> EncoderParameters:
        """The tuned encoder parameters."""
        return self.best.parameters

    def leaderboard(self, top: int = 5) -> List[ConfigurationResult]:
        """The ``top`` configurations by descending F1 score.

        Ties keep grid order (stable sort) — see the class docstring.
        """
        ranked = sorted(self.results, key=lambda result: result.score.f1, reverse=True)
        return ranked[:top]

    def score_of(self, parameters: EncoderParameters
                 ) -> Optional[ConfigurationResult]:
        """The result of one grid configuration (``None`` if not in it)."""
        for result in self.results:
            if result.parameters == parameters:
                return result
        return None

    def as_table(self) -> List[Dict[str, float]]:
        """Tabular view of the grid (used by the tuning example)."""
        return [{
            "gop_size": result.parameters.gop_size,
            "scenecut": result.parameters.scenecut_threshold,
            "accuracy": result.score.accuracy,
            "sampling_fraction": result.score.sampling_fraction,
            "f1": result.score.f1,
        } for result in self.results]


class SemanticEncoderTuner:
    """Grid-search tuner for the semantic video encoder.

    Args:
        grid: The (GOP, scenecut) grid to explore.
        base_parameters: Template providing the non-tuned parameters
            (quality, block size, motion-search radius).
        precision: Numeric mode of the analysis pass (``"exact"`` default;
            ``"fast"`` selects the float32 motion search).
    """

    def __init__(self, grid: Optional[TuningGrid] = None,
                 base_parameters: Optional[EncoderParameters] = None,
                 precision: str = "exact") -> None:
        self.grid = grid or TuningGrid()
        self.base_parameters = base_parameters or EncoderParameters()
        from ..contracts import validate_precision
        self.precision = validate_precision(precision)

    # ------------------------------------------------------------------ #
    # Grid search
    # ------------------------------------------------------------------ #
    def analyze(self, video: VideoSource) -> List[FrameActivity]:
        """Run the parameter-independent analysis pass over the footage."""
        return VideoEncoder(self.base_parameters, self.precision).analyze(video)

    def tune_from_activities(self, activities: Sequence[FrameActivity],
                             timeline: EventTimeline,
                             camera_name: str = "") -> TuningResult:
        """Grid-search using a precomputed analysis pass.

        Args:
            activities: Per-frame analysis of the tuning footage.
            timeline: Ground-truth event timeline of the same footage.
            camera_name: Name recorded in the result.

        Returns:
            The :class:`TuningResult`.

        Raises:
            TuningError: If the analysis pass and timeline disagree in length.
        """
        if len(activities) != timeline.num_frames:
            raise TuningError(
                f"analysis pass covers {len(activities)} frames but the timeline "
                f"has {timeline.num_frames}")
        results: List[ConfigurationResult] = []
        for parameters in self.grid.configurations(self.base_parameters):
            keyframes = KeyframePlacer(parameters).keyframe_indices(activities)
            score = evaluate_sampling(timeline, keyframes)
            results.append(ConfigurationResult(parameters=parameters, score=score,
                                               keyframe_indices=tuple(keyframes)))
        # `max` keeps the first maximum, so F1 ties resolve to the first
        # configuration in grid order — the documented tie-break contract
        # (see TuningResult).
        best = max(results, key=lambda result: result.score.f1)
        _LOGGER.debug("tuned %s: best %s (F1=%.3f, acc=%.3f, SS=%.4f)",
                      camera_name or "camera", best.parameters.describe(),
                      best.score.f1, best.score.accuracy,
                      best.score.sampling_fraction)
        return TuningResult(best=best, results=results, camera_name=camera_name)

    def tune(self, video: VideoSource, timeline: Optional[EventTimeline] = None,
             camera_name: str = "") -> TuningResult:
        """Analyse the footage and grid-search the best configuration.

        Args:
            video: Labelled tuning footage.
            timeline: Ground truth; defaults to the video's own ``timeline``.
            camera_name: Name recorded in the result (defaults to the video
                name).

        Returns:
            The :class:`TuningResult`.
        """
        timeline = timeline if timeline is not None else getattr(video, "timeline", None)
        if timeline is None:
            raise TuningError("tuning requires a ground-truth event timeline")
        activities = self.analyze(video)
        return self.tune_from_activities(activities, timeline,
                                         camera_name or video.metadata.name)


@dataclass(frozen=True)
class RetuneRecord:
    """One auditable version of a camera's tuned parameters.

    Every :meth:`ParameterLookupTable.store` appends one of these, so the
    table is not just "current parameters per camera" but the full
    re-tune history the online controller, ``ServiceStatus`` and the
    recovery traces surface.

    Attributes:
        version: 1-based version number within the camera's history.
        time: Virtual time of the store (``0.0`` for offline tunes).
        trigger: Why the parameters changed (``"store"`` for a plain
            offline store; the controller uses its drift trigger string).
        old: Parameters replaced (``None`` for the first version).
        new: Parameters now in force.
        score: F1 score the new parameters achieved on the tuning window
            (``nan`` when not scored).
    """

    version: int
    time: float
    trigger: str
    old: Optional[EncoderParameters]
    new: EncoderParameters
    score: float = float("nan")

    def line(self) -> str:
        """Deterministic one-line rendering (diffable across reruns)."""
        old = self.old.describe() if self.old is not None else "none"
        score = "nan" if self.score != self.score else f"{self.score:.6f}"
        return (f"t={self.time:.6f} v{self.version} trigger={self.trigger} "
                f"old=[{old}] new=[{self.new.describe()}] f1={score}")


class ParameterLookupTable:
    """The per-camera lookup table of tuned parameters (Section IV).

    The operator tunes each camera offline and stores the winning parameters
    here; the online path reads them back when configuring the camera.

    The table is *versioned*: every store appends a :class:`RetuneRecord`
    ``(time, trigger, old, new, score)`` to the camera's history, so an
    online re-tune is auditable after the fact (:meth:`history`,
    :meth:`history_lines`).  Plain offline usage is unchanged — the extra
    metadata defaults keep old call sites valid.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, EncoderParameters] = {}
        self._history: Dict[str, List[RetuneRecord]] = {}

    def store(self, camera_name: str, parameters: EncoderParameters, *,
              time: float = 0.0, trigger: str = "store",
              score: float = float("nan")) -> RetuneRecord:
        """Record the tuned parameters of a camera (appends a version)."""
        records = self._history.setdefault(camera_name, [])
        record = RetuneRecord(
            version=len(records) + 1, time=float(time), trigger=str(trigger),
            old=self._entries.get(camera_name), new=parameters, score=score)
        records.append(record)
        self._entries[camera_name] = parameters
        return record

    def lookup(self, camera_name: str) -> EncoderParameters:
        """Fetch the tuned parameters of a camera."""
        try:
            return self._entries[camera_name]
        except KeyError as exc:
            raise TuningError(f"no tuned parameters stored for {camera_name!r}") from exc

    def history(self, camera_name: str) -> Tuple[RetuneRecord, ...]:
        """The camera's full version history (empty if never stored)."""
        return tuple(self._history.get(camera_name, ()))

    def version(self, camera_name: str) -> int:
        """Current version number of a camera (``0`` if never stored)."""
        return len(self._history.get(camera_name, ()))

    def history_lines(self) -> List[str]:
        """All cameras' histories as deterministic one-line records.

        Cameras sort lexicographically; records stay in version order.
        The chaos/drift soaks diff this output verbatim across reruns.
        """
        return [f"camera={name} {record.line()}"
                for name in sorted(self._history)
                for record in self._history[name]]

    def __contains__(self, camera_name: str) -> bool:
        return camera_name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> Dict[str, EncoderParameters]:
        """A copy of the underlying mapping."""
        return dict(self._entries)
