"""NiFi-like dataflow engine and Echo-like orchestration."""

from .builtin_ops import (DecodeKeyframeOperator, DetectObjectsOperator, FrameTask,
                          ResizeOperator, ResultWriterOperator,
                          frame_tasks_from_encoded)
from .engine import DataflowEngine
from .operator import (FilterOperator, FunctionOperator, Operator, OperatorResult,
                       SinkOperator, SourceOperator)
from .orchestrator import Orchestrator, StageResult
from .scheduler import (BatchingPolicy, EventScheduler, ScheduledEngine,
                        ServiceStation, StationStats, run_engine, run_engines)

__all__ = [
    "DecodeKeyframeOperator", "DetectObjectsOperator", "FrameTask",
    "ResizeOperator", "ResultWriterOperator", "frame_tasks_from_encoded",
    "DataflowEngine",
    "FilterOperator", "FunctionOperator", "Operator", "OperatorResult",
    "SinkOperator", "SourceOperator",
    "Orchestrator", "StageResult",
    "BatchingPolicy", "EventScheduler", "ScheduledEngine", "ServiceStation",
    "StationStats", "run_engine", "run_engines",
]
