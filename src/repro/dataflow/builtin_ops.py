"""Ready-made operators for video-analytics dataflows.

These are the processors the SiEVE prototype composes inside its NiFi
engines: decoding I-frames, resizing them to the NN input resolution,
running the object detector, and writing results.  Each operator performs
the real computation on the frame payloads it receives *and* reports a
simulated cost from the cluster's calibration, so the same graph serves both
the functional integration tests and the throughput evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..codec.bitstream import EncodedFrame
from ..codec.decoder import VideoDecoder
from ..errors import DataflowError
from ..nn.oracle import ObjectDetector
from ..video.events import LabelSet
from ..vision.imageops import resize
from .operator import Operator, OperatorResult


@dataclass
class FrameTask:
    """Work item flowing through the analytics dataflow.

    Attributes:
        video_name: Source video.
        frame_index: Index of the frame in its video.
        encoded: The encoded frame (present until decoding).
        pixels: Decoded (and possibly resized) pixel data.
        labels: Object labels, filled in by the detector.
        size_bytes: Current serialised size of the item (used for transfer
            accounting when the item crosses the edge -> cloud channel).
    """

    video_name: str
    frame_index: int
    encoded: Optional[EncodedFrame] = None
    pixels: Optional[np.ndarray] = None
    labels: Optional[LabelSet] = None
    size_bytes: int = 0


class DecodeKeyframeOperator(Operator):
    """Decode an I-frame payload into pixels (still-image decode).

    Args:
        name: Operator name.
        cost_per_frame_seconds: Simulated decode cost charged per frame.
        functional: When ``True`` the payload is really decoded; when
            ``False`` (size-only encodings) the operator only does the cost
            accounting and leaves ``pixels`` empty.
    """

    def __init__(self, name: str, cost_per_frame_seconds: float = 0.0,
                 functional: bool = True) -> None:
        super().__init__(name)
        self.cost_per_frame_seconds = float(cost_per_frame_seconds)
        self.functional = functional
        self._decoder = VideoDecoder()

    def process(self, item: FrameTask) -> OperatorResult:
        if not isinstance(item, FrameTask):
            raise DataflowError(f"{self.name} expects FrameTask items")
        if self.functional and item.encoded is not None and item.encoded.has_payload:
            item.pixels = self._decoder.decode_keyframe(item.encoded)
            item.size_bytes = int(item.pixels.size)
        return self._account(OperatorResult(outputs=[item],
                                            cost_seconds=self.cost_per_frame_seconds))


class ResizeOperator(Operator):
    """Resize decoded frames to the NN input resolution.

    Args:
        name: Operator name.
        target: ``(width, height)`` target resolution.
        cost_per_frame_seconds: Simulated resize cost per frame.
        compressed_size_fn: Callable estimating the size of the resized frame
            as shipped over the network (defaults to one byte per pixel,
            approximating a JPEG of the thumbnail).
    """

    def __init__(self, name: str, target: Tuple[int, int],
                 cost_per_frame_seconds: float = 0.0,
                 compressed_size_fn: Optional[Callable[[np.ndarray], int]] = None
                 ) -> None:
        super().__init__(name)
        self.target = target
        self.cost_per_frame_seconds = float(cost_per_frame_seconds)
        self._compressed_size_fn = compressed_size_fn

    def process(self, item: FrameTask) -> OperatorResult:
        if not isinstance(item, FrameTask):
            raise DataflowError(f"{self.name} expects FrameTask items")
        if item.pixels is not None:
            item.pixels = resize(item.pixels, self.target)
            if self._compressed_size_fn is not None:
                item.size_bytes = int(self._compressed_size_fn(item.pixels))
            else:
                item.size_bytes = int(item.pixels.size)
        return self._account(OperatorResult(outputs=[item],
                                            cost_seconds=self.cost_per_frame_seconds))


class DetectObjectsOperator(Operator):
    """Run the object detector on frame tasks, batching NN inference.

    With ``batch_size > 1`` the operator buffers incoming tasks and labels
    them through :meth:`~repro.nn.oracle.ObjectDetector.detect_batch` in one
    call per chunk — NN-backed detectors run a genuinely batched forward
    pass, amortising the per-layer dispatch overhead.  Buffered items are
    emitted together when the chunk fills (and on the end-of-stream flush),
    carrying the summed per-frame cost, so total simulated cost is unchanged.

    Args:
        name: Operator name.
        detector: Per-frame object detector (oracle or NN-backed).
        cost_per_frame_seconds: Simulated NN inference cost per frame.
        batch_size: Frames labelled per ``detect_batch`` call; ``1``
            reproduces the original one-item-per-event behaviour.
    """

    def __init__(self, name: str, detector: ObjectDetector,
                 cost_per_frame_seconds: float = 0.0,
                 batch_size: int = 1) -> None:
        super().__init__(name)
        if batch_size < 1:
            raise DataflowError(f"batch_size must be >= 1, got {batch_size}")
        self.detector = detector
        self.cost_per_frame_seconds = float(cost_per_frame_seconds)
        self.batch_size = int(batch_size)
        self._buffer: List[FrameTask] = []

    def _flush(self) -> OperatorResult:
        batch, self._buffer = self._buffer, []
        labels = self.detector.detect_batch(
            [task.frame_index for task in batch],
            [task.pixels for task in batch])
        for task, label_set in zip(batch, labels):
            task.labels = label_set
        return OperatorResult(outputs=list(batch),
                              cost_seconds=self.cost_per_frame_seconds * len(batch))

    def process(self, item: FrameTask) -> OperatorResult:
        if not isinstance(item, FrameTask):
            raise DataflowError(f"{self.name} expects FrameTask items")
        if self.batch_size == 1:
            item.labels = self.detector.detect(item.frame_index, item.pixels)
            return self._account(OperatorResult(
                outputs=[item], cost_seconds=self.cost_per_frame_seconds))
        self._buffer.append(item)
        if len(self._buffer) >= self.batch_size:
            return self._account(self._flush())
        return self._account(OperatorResult())

    def on_finish(self) -> OperatorResult:
        if not self._buffer:
            return OperatorResult()
        result = self._flush()
        self.emitted_items += len(result.outputs)
        self.total_cost_seconds += result.cost_seconds
        return result

    def reset_stats(self) -> None:
        super().reset_stats()
        self._buffer.clear()


class ResultWriterOperator(Operator):
    """Write ``(frame_id, labels)`` tuples into a result store.

    Args:
        name: Operator name.
        store: Mutable mapping-like object with a ``record`` method (the
            cloud's result database) or a plain dict.
    """

    def __init__(self, name: str, store) -> None:
        super().__init__(name)
        self.store = store

    def process(self, item: FrameTask) -> OperatorResult:
        if not isinstance(item, FrameTask):
            raise DataflowError(f"{self.name} expects FrameTask items")
        labels = item.labels if item.labels is not None else frozenset()
        if hasattr(self.store, "record"):
            self.store.record(item.video_name, item.frame_index, labels)
        else:
            self.store[(item.video_name, item.frame_index)] = labels
        return self._account(OperatorResult(outputs=[item]))


def frame_tasks_from_encoded(video_name: str,
                             frames: List[EncodedFrame]) -> List[FrameTask]:
    """Wrap encoded frames into dataflow work items."""
    return [FrameTask(video_name=video_name, frame_index=frame.index, encoded=frame,
                      size_bytes=frame.size_bytes)
            for frame in frames]
