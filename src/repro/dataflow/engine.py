"""Single-node dataflow engine (the NiFi stand-in).

The engine holds a directed acyclic graph of operators connected by FIFO
queues and executes it to completion: sources are drained first, then items
are propagated operator by operator in topological order.  Every operator
reports a simulated processing cost; the engine accumulates these into a
per-engine busy time, which is what the end-to-end throughput evaluation
(Figure 4) consumes.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from typing import Any, Dict, List, Optional

from ..errors import DataflowError
from .operator import Operator, OperatorResult, SinkOperator, SourceOperator


class DataflowEngine:
    """A local dataflow engine executing a DAG of operators.

    Args:
        name: Engine name (e.g. ``"edge-nifi"``, ``"cloud-nifi"``).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._operators: Dict[str, Operator] = {}
        self._edges: Dict[str, List[str]] = defaultdict(list)
        self._reverse_edges: Dict[str, List[str]] = defaultdict(list)
        self.busy_seconds = 0.0
        #: Real (wall-clock) seconds spent inside each operator during the
        #: last :meth:`run` — the measured counterpart of the simulated
        #: ``cost_seconds``, used by the perf instrumentation.
        self.wall_seconds: Dict[str, float] = {}
        #: Wall-clock duration of the last :meth:`run` call.
        self.last_run_wall_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def add_operator(self, operator: Operator) -> Operator:
        """Register an operator; names must be unique within the engine."""
        if operator.name in self._operators:
            raise DataflowError(
                f"operator {operator.name!r} already exists in engine {self.name!r}")
        self._operators[operator.name] = operator
        return operator

    def connect(self, upstream: str, downstream: str) -> None:
        """Connect two registered operators by name."""
        for name in (upstream, downstream):
            if name not in self._operators:
                raise DataflowError(f"unknown operator {name!r} in engine {self.name!r}")
        if downstream in self._edges[upstream]:
            raise DataflowError(
                f"connection {upstream!r} -> {downstream!r} already exists")
        self._edges[upstream].append(downstream)
        self._reverse_edges[downstream].append(upstream)
        try:
            self._check_acyclic()
        except DataflowError:
            # Roll the edge back so a rejected connect leaves the graph usable.
            self._edges[upstream].remove(downstream)
            self._reverse_edges[downstream].remove(upstream)
            raise

    def operator(self, name: str) -> Operator:
        """Look up a registered operator by name."""
        try:
            return self._operators[name]
        except KeyError as exc:
            raise DataflowError(
                f"unknown operator {name!r} in engine {self.name!r}") from exc

    @property
    def operators(self) -> List[Operator]:
        """All registered operators."""
        return list(self._operators.values())

    def has_operator(self, name: str) -> bool:
        """Whether an operator named ``name`` is registered."""
        return name in self._operators

    def upstreams(self, name: str) -> List[str]:
        """Names of the operators feeding into ``name``."""
        self.operator(name)
        return list(self._reverse_edges.get(name, []))

    def downstreams(self, name: str) -> List[str]:
        """Names of the operators ``name`` feeds into."""
        self.operator(name)
        return list(self._edges.get(name, []))

    def topological_order(self, strict: bool = False) -> List[str]:
        """Operator names in a topological order of the graph.

        Args:
            strict: Raise :class:`~repro.errors.DataflowError` when the graph
                contains a cycle (the returned order would be partial).
        """
        order = self._topological_order()
        if strict and len(order) != len(self._operators):
            raise DataflowError(f"engine {self.name!r} contains a cycle")
        return order

    def _check_acyclic(self) -> None:
        order = self._topological_order()
        if len(order) != len(self._operators):
            raise DataflowError(f"engine {self.name!r} contains a cycle")

    def _topological_order(self) -> List[str]:
        in_degree = {name: 0 for name in self._operators}
        for upstream, downstreams in self._edges.items():
            for downstream in downstreams:
                in_degree[downstream] += 1
        queue = deque(sorted(name for name, degree in in_degree.items() if degree == 0))
        order: List[str] = []
        while queue:
            name = queue.popleft()
            order.append(name)
            for downstream in self._edges.get(name, []):
                in_degree[downstream] -= 1
                if in_degree[downstream] == 0:
                    queue.append(downstream)
        return order

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear all operator statistics and the engine busy time."""
        for operator in self._operators.values():
            operator.reset_stats()
            if isinstance(operator, SinkOperator):
                operator.items.clear()
        self.busy_seconds = 0.0
        self.wall_seconds = {}
        self.last_run_wall_seconds = 0.0

    def run(self, external_inputs: Optional[Dict[str, List[Any]]] = None
            ) -> Dict[str, List[Any]]:
        """Execute the graph to completion.

        Args:
            external_inputs: Optional mapping ``operator name -> items`` to
                feed into non-source operators (used by the orchestrator to
                deliver items that arrived over the network).

        Returns:
            Mapping from sink operator name to the items it collected.

        Raises:
            DataflowError: If the graph is malformed.
        """
        if not self._operators:
            raise DataflowError(f"engine {self.name!r} has no operators")
        run_start = time.perf_counter()
        order = self._topological_order()
        pending: Dict[str, deque] = {name: deque() for name in self._operators}
        self.wall_seconds = {name: 0.0 for name in self._operators}
        if external_inputs:
            for name, items in external_inputs.items():
                if name not in self._operators:
                    raise DataflowError(f"unknown external input target {name!r}")
                if isinstance(self._operators[name], SourceOperator):
                    raise DataflowError(
                        f"cannot feed external inputs into source operator {name!r}")
                pending[name].extend(items)
        # Drain the sources first.
        for name in order:
            operator = self._operators[name]
            if isinstance(operator, SourceOperator):
                stage_start = time.perf_counter()
                result = operator.drain()
                self.wall_seconds[name] += time.perf_counter() - stage_start
                self._dispatch(name, result, pending)
        # Propagate items in topological order; within one operator items are
        # processed in FIFO order, which matches NiFi's queue semantics.
        for name in order:
            operator = self._operators[name]
            if isinstance(operator, SourceOperator):
                continue
            queue = pending[name]
            stage_start = time.perf_counter()
            while queue:
                item = queue.popleft()
                result = operator.process(item)
                self._dispatch(name, result, pending)
            flush = operator.on_finish()
            self.wall_seconds[name] += time.perf_counter() - stage_start
            if flush.outputs or flush.cost_seconds:
                self._dispatch(name, flush, pending)
        self.last_run_wall_seconds = time.perf_counter() - run_start
        return {name: list(operator.items)
                for name, operator in self._operators.items()
                if isinstance(operator, SinkOperator)}

    def _dispatch(self, name: str, result: OperatorResult,
                  pending: Dict[str, deque]) -> None:
        self.busy_seconds += result.cost_seconds
        for downstream in self._edges.get(name, []):
            pending[downstream].extend(result.outputs)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-operator processing statistics (simulated, deterministic).

        Measured wall-clock timings live in :meth:`wall_stats` so this view
        stays comparable across runs.
        """
        return {
            name: {
                "processed": float(operator.processed_items),
                "emitted": float(operator.emitted_items),
                "cost_seconds": operator.total_cost_seconds,
            }
            for name, operator in self._operators.items()
        }

    def wall_stats(self) -> Dict[str, float]:
        """Measured wall-clock seconds per operator for the last :meth:`run`.

        The real-time counterpart of the simulated ``cost_seconds`` in
        :meth:`stats`; empty before any run.
        """
        return dict(self.wall_seconds)
