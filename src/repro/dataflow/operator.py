"""Dataflow operators.

Apache NiFi (the engine the paper deploys on both the edge and the cloud)
executes user-defined *processors* connected by queues.  This module defines
the operator abstraction used by our engine: an operator consumes one item
at a time from its input queue, produces zero or more output items, and
reports a simulated processing cost so the cluster's clock can advance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

from ..errors import DataflowError


@dataclass
class OperatorResult:
    """What an operator produced for one input item.

    Attributes:
        outputs: Items forwarded to downstream operators.
        cost_seconds: Simulated processing time consumed by the item.
    """

    outputs: List[Any] = field(default_factory=list)
    cost_seconds: float = 0.0


class Operator:
    """Base class of dataflow operators.

    Subclasses implement :meth:`process`.  Operators are single-input,
    single-output-port; fan-out is expressed by connecting one operator to
    several downstream operators (each receives every output item).

    Args:
        name: Unique operator name within its engine.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise DataflowError("operator name must be non-empty")
        self.name = name
        self.processed_items = 0
        self.emitted_items = 0
        self.total_cost_seconds = 0.0

    def process(self, item: Any) -> OperatorResult:
        """Process one item and return the produced outputs and cost."""
        raise NotImplementedError

    def on_finish(self) -> OperatorResult:
        """Hook called once after the upstream is exhausted (flush buffers)."""
        return OperatorResult()

    def reset_stats(self) -> None:
        """Clear the processing counters."""
        self.processed_items = 0
        self.emitted_items = 0
        self.total_cost_seconds = 0.0

    def _account(self, result: OperatorResult) -> OperatorResult:
        self.processed_items += 1
        self.emitted_items += len(result.outputs)
        self.total_cost_seconds += result.cost_seconds
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionOperator(Operator):
    """Operator wrapping a plain function.

    Args:
        name: Operator name.
        function: Callable mapping an item to an output item, a list of
            output items, or ``None`` (drop).
        cost_fn: Optional callable mapping the input item to a simulated
            processing cost in seconds.
    """

    def __init__(self, name: str, function: Callable[[Any], Any],
                 cost_fn: Optional[Callable[[Any], float]] = None) -> None:
        super().__init__(name)
        self._function = function
        self._cost_fn = cost_fn

    def process(self, item: Any) -> OperatorResult:
        produced = self._function(item)
        if produced is None:
            outputs: List[Any] = []
        elif isinstance(produced, list):
            outputs = produced
        else:
            outputs = [produced]
        cost = float(self._cost_fn(item)) if self._cost_fn is not None else 0.0
        return self._account(OperatorResult(outputs=outputs, cost_seconds=cost))


class FilterOperator(Operator):
    """Operator that forwards only items matching a predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 cost_fn: Optional[Callable[[Any], float]] = None) -> None:
        super().__init__(name)
        self._predicate = predicate
        self._cost_fn = cost_fn

    def process(self, item: Any) -> OperatorResult:
        outputs = [item] if self._predicate(item) else []
        cost = float(self._cost_fn(item)) if self._cost_fn is not None else 0.0
        return self._account(OperatorResult(outputs=outputs, cost_seconds=cost))


class SinkOperator(Operator):
    """Terminal operator collecting every item it receives."""

    def __init__(self, name: str = "sink") -> None:
        super().__init__(name)
        self.items: List[Any] = []

    def process(self, item: Any) -> OperatorResult:
        self.items.append(item)
        return self._account(OperatorResult())


class SourceOperator(Operator):
    """Operator that injects a fixed sequence of items into the graph.

    Sources ignore their (non-existent) input; the engine drives them by
    calling :meth:`drain`.
    """

    def __init__(self, name: str, items: Iterable[Any],
                 cost_per_item_seconds: float = 0.0) -> None:
        super().__init__(name)
        self._items = list(items)
        self._cost_per_item = float(cost_per_item_seconds)

    def drain(self) -> OperatorResult:
        """Emit every source item at once."""
        result = OperatorResult(outputs=list(self._items),
                                cost_seconds=self._cost_per_item * len(self._items))
        return self._account(result)

    def process(self, item: Any) -> OperatorResult:  # pragma: no cover - defensive.
        raise DataflowError("source operators do not accept inputs")
