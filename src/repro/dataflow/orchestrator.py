"""Cross-engine orchestration (the Echo stand-in).

The paper uses the Echo framework to coordinate the two NiFi instances: the
edge engine's output is shipped over a secure connection and injected into
the cloud engine's input queue.  :class:`Orchestrator` reproduces that glue:
it runs an upstream engine, forwards the items collected by one of its sinks
over a :class:`~repro.net.channel.Channel` (charging their sizes to the
link), and feeds them into a named operator of the downstream engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import DataflowError
from ..net.channel import Channel
from .engine import DataflowEngine


@dataclass
class StageResult:
    """Outcome of one orchestrated stage.

    Attributes:
        engine_name: Engine that ran.
        busy_seconds: Simulated compute time consumed by the engine.
        sink_items: Items collected by each sink of the engine.
    """

    engine_name: str
    busy_seconds: float
    sink_items: Dict[str, List[Any]]


class Orchestrator:
    """Coordinates an edge engine and a cloud engine across a channel.

    Args:
        edge_engine: The engine running on the edge server.
        cloud_engine: The engine running on the cloud server.
        channel: Edge -> cloud message channel.
    """

    def __init__(self, edge_engine: DataflowEngine, cloud_engine: DataflowEngine,
                 channel: Channel) -> None:
        self.edge_engine = edge_engine
        self.cloud_engine = cloud_engine
        self.channel = channel
        self.stage_results: List[StageResult] = []

    def run(self, handoff_sink: str, cloud_entry: str,
            edge_inputs: Optional[Dict[str, List[Any]]] = None,
            item_size_fn=None) -> Dict[str, List[Any]]:
        """Run edge engine, ship one sink's items to the cloud engine, run it.

        Args:
            handoff_sink: Name of the edge sink whose items are shipped.
            cloud_entry: Name of the cloud operator that receives them.
            edge_inputs: Optional external inputs for the edge engine.
            item_size_fn: Callable mapping an item to its transfer size in
                bytes; defaults to the item's ``size_bytes`` attribute (0 when
                absent).

        Returns:
            The cloud engine's sink contents.
        """
        edge_sinks = self.edge_engine.run(edge_inputs)
        self.stage_results.append(StageResult(
            engine_name=self.edge_engine.name,
            busy_seconds=self.edge_engine.busy_seconds,
            sink_items=edge_sinks))
        if handoff_sink not in edge_sinks:
            raise DataflowError(
                f"edge engine has no sink named {handoff_sink!r}; "
                f"available: {sorted(edge_sinks)}")
        items = edge_sinks[handoff_sink]
        for item in items:
            if item_size_fn is not None:
                size = int(item_size_fn(item))
            else:
                size = int(getattr(item, "size_bytes", 0))
            self.channel.send(item, size)
        delivered = [message.payload for message in self.channel.receive_all()]
        cloud_sinks = self.cloud_engine.run({cloud_entry: delivered})
        self.stage_results.append(StageResult(
            engine_name=self.cloud_engine.name,
            busy_seconds=self.cloud_engine.busy_seconds,
            sink_items=cloud_sinks))
        return cloud_sinks

    @property
    def total_compute_seconds(self) -> float:
        """Total simulated compute time across both engines."""
        return sum(result.busy_seconds for result in self.stage_results)

    @property
    def total_transfer_seconds(self) -> float:
        """Total simulated transfer time over the channel's link."""
        return self.channel.link.total_seconds

    def summary(self) -> Dict[str, float]:
        """Aggregate timing summary of the orchestrated run."""
        return {
            "compute_seconds": self.total_compute_seconds,
            "transfer_seconds": self.total_transfer_seconds,
            "transferred_bytes": float(self.channel.link.total_bytes),
        }
