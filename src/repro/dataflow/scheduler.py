"""Discrete-event fleet scheduler.

The seed engine (:class:`~repro.dataflow.engine.DataflowEngine`) drains one
DAG to completion on one node, so its busy-time totals cannot capture
contention: two engines, or two operators of one engine, never compete for
time.  This module adds the missing substrate — a shared virtual-clock
scheduler in which *everything that takes simulated time is an event*:

* :class:`EventScheduler` — a heap-ordered virtual clock.  Events scheduled
  for the same instant fire in submission order, which makes every run
  bit-for-bit deterministic (see :mod:`repro.rng` for the seeding contract).
* :class:`ServiceStation` — a FIFO queue served by a fixed number of
  simulated workers.  Jobs wait, occupy a worker for their service time, then
  fire a completion callback.  The station records busy time, queue-depth
  peaks and completion counts, which is where per-tier utilisation and queue
  depth reporting come from.
* :class:`ScheduledEngine` — runs a :class:`DataflowEngine` *through* the
  scheduler: each operator becomes a single-worker station whose service
  times are the operator's reported costs, so multiple engines sharing one
  :class:`EventScheduler` interleave in virtual time exactly as NiFi
  processors sharing a host would.  Operator batching is configurable via
  :class:`BatchingPolicy`.

Single-engine equivalence: for any DAG, running one engine through
:func:`run_engine` charges the same operator costs and produces the same
sink multisets as ``engine.run()``; the run-to-completion path is simply the
degenerate schedule in which nothing ever waits.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..errors import DataflowError
from .engine import DataflowEngine
from .operator import SinkOperator, SourceOperator

Action = Callable[[], None]


class EventScheduler:
    """A shared virtual clock ordering simulated events.

    Events are ``(time, action)`` pairs kept in a heap; ties in time break by
    submission order, so runs are deterministic regardless of callback
    content.  All components of one simulation (engines, compute stations,
    links) must share a single scheduler — that is what makes their service
    times contend instead of merely accumulating.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._sequence = 0
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events not yet fired."""
        return len(self._heap)

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event (``None`` when idle).

        Clock drivers (:mod:`repro.service.clock`) peek at this to decide how
        long to pace before firing :meth:`step`.
        """
        return self._heap[0][0] if self._heap else None

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing any event.

        Used by horizon-bounded runs and real-time clock drivers to move the
        clock to a quiescent instant.  The target must not lie in the past or
        beyond the next pending event (that event would then appear to fire
        late).
        """
        if time < self._now:
            raise DataflowError(
                f"cannot advance to {time:.6f}s, clock is at {self._now:.6f}s")
        if self._heap and self._heap[0][0] < time:
            raise DataflowError(
                f"cannot advance to {time:.6f}s past the pending event at "
                f"{self._heap[0][0]:.6f}s")
        self._now = float(time)

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise DataflowError(
                f"cannot schedule at {time:.6f}s, clock is at {self._now:.6f}s")
        heapq.heappush(self._heap, (float(time), self._sequence, action))
        self._sequence += 1

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise DataflowError(f"event delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, action)

    def step(self) -> bool:
        """Fire the next event; returns ``False`` when none remain."""
        if not self._heap:
            return False
        time, _, action = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        action()
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Fire events until the heap is empty (or ``until`` is reached).

        Horizon semantics (relied on by the real-time clock drivers and
        pinned by ``tests/service/test_horizon_accounting.py``): an event
        scheduled *exactly at* ``until`` fires, strictly later events stay
        queued, the clock always advances to ``until``, and a subsequent
        ``run()`` resumes from the untouched heap.

        Returns:
            The number of events fired by this call.
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self.advance_to(until)
        return fired


@dataclass
class StationStats:
    """Accounting of one service station.

    Attributes:
        busy_seconds: Total service time consumed across all workers.
            Accrues when a job *finishes*, so a horizon-truncated run only
            counts completed service (in-flight pro-rating is available via
            :meth:`ServiceStation.busy_seconds_elapsed`).
        completed: Number of jobs (or batches) fully served.
        arrivals: Number of jobs submitted.
        max_queue_depth: Peak number of jobs waiting (excluding in service).
    """

    busy_seconds: float = 0.0
    completed: int = 0
    arrivals: int = 0
    max_queue_depth: int = 0


# eq=False: jobs are tracked by identity while in flight (payloads may be
# numpy arrays, whose ``==`` is elementwise and cannot back list removal).
@dataclass(eq=False)
class _StationJob:
    service_seconds: float
    on_complete: Optional[Callable[[Any], None]]
    payload: Any
    on_start: Optional[Callable[[Any], None]] = None
    started_at: float = 0.0
    on_fail: Optional[Callable[[Any, str], None]] = None
    # Set by fail_all on in-service jobs: their already-scheduled
    # completion events fire as no-ops.
    cancelled: bool = False


class ServiceStation:
    """A FIFO queue served by ``capacity`` simulated workers.

    Args:
        scheduler: The shared event scheduler.
        name: Station name (used in reports).
        capacity: Number of jobs that can be in service simultaneously.
    """

    def __init__(self, scheduler: EventScheduler, name: str,
                 capacity: int = 1) -> None:
        if capacity < 1:
            raise DataflowError(f"station capacity must be >= 1, got {capacity}")
        self.scheduler = scheduler
        self.name = name
        self.capacity = capacity
        self.stats = StationStats()
        self._queue: Deque[_StationJob] = deque()
        self._active: List[_StationJob] = []
        self._in_service = 0
        self._online = True

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (excluding those in service)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        """Jobs currently occupying a worker."""
        return self._in_service

    @property
    def online(self) -> bool:
        """Whether the station is dispatching (see :meth:`pause`)."""
        return self._online

    def submit(self, service_seconds: float,
               on_complete: Optional[Callable[[Any], None]] = None,
               payload: Any = None,
               on_start: Optional[Callable[[Any], None]] = None,
               on_fail: Optional[Callable[[Any, str], None]] = None) -> None:
        """Enqueue a job taking ``service_seconds`` of worker time.

        ``on_start(payload)`` fires the moment the job leaves the queue and
        occupies a worker (the same instant its completion event is
        scheduled) — which is the insertion-order key for simultaneous
        completions, used by the multiprocess decomposition to reproduce
        the single-scheduler tie-breaking.

        ``on_fail(payload, reason)`` fires only if the job is failed out
        by :meth:`fail_all` (the fault-injection plane); jobs submitted
        without it are silently dropped on failure.
        """
        if service_seconds < 0:
            raise DataflowError(
                f"service time must be >= 0, got {service_seconds}")
        self.stats.arrivals += 1
        self._queue.append(_StationJob(float(service_seconds), on_complete,
                                       payload, on_start, on_fail=on_fail))
        self._try_start()

    def pause(self) -> None:
        """Stop dispatching queued jobs (fault-injection hook).

        In-service jobs run to completion; new and queued jobs wait until
        :meth:`resume`.  Pausing an already-paused station is a no-op.
        """
        self._online = False

    def resume(self) -> None:
        """Resume dispatching after :meth:`pause`."""
        self._online = True
        self._try_start()

    def fail_all(self, reason: str = "fault") -> int:
        """Fail every queued and in-service job (fault-injection hook).

        In-service jobs are cancelled — their already-scheduled completion
        events fire as no-ops and their service time is *not* accrued (the
        work was lost, not done).  Each failed job's ``on_fail(payload,
        reason)`` then fires in deterministic order: in-service jobs in
        start order, then the queue in FIFO order.  A resubmitted job
        counts as a fresh arrival.

        Returns:
            The number of jobs failed.
        """
        failed: List[_StationJob] = []
        for job in self._active:
            job.cancelled = True
            failed.append(job)
        self._active.clear()
        self._in_service = 0
        failed.extend(self._queue)
        self._queue.clear()
        for job in failed:
            if job.on_fail is not None:
                job.on_fail(job.payload, reason)
        return len(failed)

    def _try_start(self) -> None:
        while self._online and self._queue and self._in_service < self.capacity:
            job = self._queue.popleft()
            self._in_service += 1
            job.started_at = self.scheduler.now
            self._active.append(job)
            if job.on_start is not None:
                job.on_start(job.payload)
            self.scheduler.schedule(job.service_seconds,
                                    lambda job=job: self._finish(job))
        # Only jobs still waiting after dispatch count toward the peak depth.
        self.stats.max_queue_depth = max(self.stats.max_queue_depth,
                                         len(self._queue))

    def _finish(self, job: _StationJob) -> None:
        if job.cancelled:
            # The worker serving this job was failed out from under it by
            # fail_all; its completion event is a husk.
            return
        self._in_service -= 1
        self._active.remove(job)
        # Busy time accrues at completion, never at dispatch: a run cut off
        # at a horizon must not count unfinished service as consumed (which
        # used to push utilisation past 1.0 on truncated runs).
        self.stats.busy_seconds += job.service_seconds
        self.stats.completed += 1
        if job.on_complete is not None:
            job.on_complete(job.payload)
        self._try_start()

    def busy_seconds_elapsed(self, now: Optional[float] = None) -> float:
        """Service time actually consumed by ``now``, in-flight pro-rated.

        Completed jobs contribute their full service time; jobs still in
        service contribute only the slice between their start and ``now``
        (default: the scheduler clock).  This is the quantity a live
        snapshot must report — it can never exceed ``capacity * now``.
        """
        if now is None:
            now = self.scheduler.now
        elapsed = self.stats.busy_seconds
        for job in self._active:
            elapsed += min(max(now - job.started_at, 0.0), job.service_seconds)
        return elapsed

    def utilisation(self, makespan_seconds: float,
                    now: Optional[float] = None) -> float:
        """Fraction of worker time spent busy over ``makespan_seconds``.

        With ``now`` given, jobs still in service are pro-rated to that
        snapshot instant, so mid-run utilisation is exact and bounded by
        1.0; without it only completed service counts (which is the whole
        story once the station has drained).
        """
        if makespan_seconds <= 0:
            return 0.0
        busy = (self.stats.busy_seconds if now is None
                else self.busy_seconds_elapsed(now))
        return busy / (self.capacity * makespan_seconds)


@dataclass(frozen=True)
class BatchingPolicy:
    """How many queued items an operator may serve in one event.

    A batch of ``k`` items is processed back to back in a single service
    event whose duration is the sum of the per-item costs — total busy time
    is unchanged, but the event count (and, under contention, the queueing
    pattern) shrinks, which is exactly the trade NiFi's *run duration*
    setting makes.

    Attributes:
        default_batch: Batch limit for operators without an override.
        per_operator: Operator-name -> batch-limit overrides.
    """

    default_batch: int = 1
    per_operator: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_batch < 1:
            raise DataflowError(
                f"default_batch must be >= 1, got {self.default_batch}")
        for name, batch in self.per_operator.items():
            if batch < 1:
                raise DataflowError(
                    f"batch for operator {name!r} must be >= 1, got {batch}")

    def batch_for(self, operator_name: str) -> int:
        """Batch limit applying to ``operator_name``."""
        return int(self.per_operator.get(operator_name, self.default_batch))


class _OperatorState:
    __slots__ = ("queue", "busy", "closed", "open_upstreams", "flushed")

    def __init__(self, open_upstreams: int) -> None:
        self.queue: Deque[Any] = deque()
        self.busy = False
        self.closed = False
        self.flushed = False
        self.open_upstreams = open_upstreams


class ScheduledEngine:
    """Executes one :class:`DataflowEngine` on a shared virtual clock.

    Every operator becomes a single-worker station: items wait in the
    operator's FIFO queue, are processed (in batches of up to the batching
    policy's limit) during a service event lasting the reported operator
    cost, and are delivered downstream when the event completes.  Several
    ``ScheduledEngine`` instances sharing one :class:`EventScheduler`
    interleave in virtual time.

    Args:
        scheduler: Shared event scheduler.
        engine: The engine to execute.  Its operators' statistics and
            ``busy_seconds`` are updated exactly as ``engine.run()`` would.
        batching: Operator batching policy (default: one item per event).
        start_time: Virtual time at which the engine's sources fire.
        external_inputs: Items fed into named non-source operators at start,
            mirroring ``engine.run(external_inputs=...)``.
    """

    def __init__(self, scheduler: EventScheduler, engine: DataflowEngine,
                 batching: Optional[BatchingPolicy] = None,
                 start_time: float = 0.0,
                 external_inputs: Optional[Dict[str, List[Any]]] = None) -> None:
        if not engine.operators:
            raise DataflowError(f"engine {engine.name!r} has no operators")
        self.scheduler = scheduler
        self.engine = engine
        self.batching = batching or BatchingPolicy()
        self.start_time = float(start_time)
        self.finish_time: Optional[float] = None
        self.sink_arrival_times: Dict[str, List[float]] = {}
        self.operator_stats: Dict[str, StationStats] = {}
        #: Measured wall-clock seconds spent inside each operator's real
        #: computation (as opposed to the simulated ``busy_seconds``).
        self.operator_wall_seconds: Dict[str, float] = {}
        self._external_inputs = dict(external_inputs or {})
        self._states: Dict[str, _OperatorState] = {}
        self._open_operators = 0
        self._started = False
        # Validates the graph (raises on cycles) before any event fires.
        engine.topological_order(strict=True)
        for name in self._external_inputs:
            if not engine.has_operator(name):
                raise DataflowError(f"unknown external input target {name!r}")
            if isinstance(engine.operator(name), SourceOperator):
                raise DataflowError(
                    f"cannot feed external inputs into source operator {name!r}")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ScheduledEngine":
        """Schedule the engine's bootstrap at ``start_time``."""
        if self._started:
            raise DataflowError(
                f"engine {self.engine.name!r} is already scheduled")
        self._started = True
        for operator in self.engine.operators:
            upstreams = self.engine.upstreams(operator.name)
            self._states[operator.name] = _OperatorState(len(upstreams))
            self.operator_stats[operator.name] = StationStats()
            self.operator_wall_seconds[operator.name] = 0.0
            if isinstance(operator, SinkOperator):
                self.sink_arrival_times[operator.name] = []
        self._open_operators = len(self._states)
        self.scheduler.schedule_at(self.start_time, self._bootstrap)
        return self

    def _bootstrap(self) -> None:
        for name, items in self._external_inputs.items():
            state = self._states[name]
            state.queue.extend(items)
            self.operator_stats[name].arrivals += len(items)
        for operator in self.engine.operators:
            if isinstance(operator, SourceOperator):
                self._start_source(operator)
        for operator in self.engine.operators:
            if not isinstance(operator, SourceOperator):
                self._try_start(operator.name)
                self._maybe_close(operator.name)

    def _start_source(self, operator: SourceOperator) -> None:
        state = self._states[operator.name]
        state.busy = True
        wall_start = time.perf_counter()
        result = operator.drain()
        self.operator_wall_seconds[operator.name] += \
            time.perf_counter() - wall_start
        self._charge(operator.name, result.cost_seconds)
        self.scheduler.schedule(
            result.cost_seconds,
            lambda: self._complete(operator.name, result.outputs))

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _charge(self, name: str, cost_seconds: float) -> None:
        self.engine.busy_seconds += cost_seconds
        self.operator_stats[name].busy_seconds += cost_seconds

    def _enqueue(self, name: str, items: Sequence[Any]) -> None:
        state = self._states[name]
        if state.closed:  # pragma: no cover - defensive; DAG order prevents it.
            raise DataflowError(
                f"operator {name!r} received items after closing")
        state.queue.extend(items)
        self.operator_stats[name].arrivals += len(items)
        self._try_start(name)

    def _try_start(self, name: str) -> None:
        state = self._states[name]
        stats = self.operator_stats[name]
        if not state.busy and not state.closed and state.queue:
            operator = self.engine.operator(name)
            batch = self.batching.batch_for(name)
            outputs: List[Any] = []
            cost = 0.0
            served = 0
            wall_start = time.perf_counter()
            while state.queue and served < batch:
                item = state.queue.popleft()
                result = operator.process(item)
                outputs.extend(result.outputs)
                cost += result.cost_seconds
                served += 1
            self.operator_wall_seconds[name] += time.perf_counter() - wall_start
            state.busy = True
            self._charge(name, cost)
            if isinstance(operator, SinkOperator):
                arrival = self.scheduler.now + cost
                self.sink_arrival_times[name].extend([arrival] * served)
            self.scheduler.schedule(cost, lambda: self._complete(name, outputs))
        # Only items still waiting after dispatch count toward the peak depth.
        stats.max_queue_depth = max(stats.max_queue_depth, len(state.queue))

    def _complete(self, name: str, outputs: Sequence[Any]) -> None:
        state = self._states[name]
        state.busy = False
        self.operator_stats[name].completed += 1
        for downstream in self.engine.downstreams(name):
            self._enqueue(downstream, outputs)
        self._try_start(name)
        self._maybe_close(name)

    def _maybe_close(self, name: str) -> None:
        state = self._states[name]
        if state.closed or state.busy or state.queue or state.open_upstreams:
            return
        operator = self.engine.operator(name)
        if not state.flushed and not isinstance(operator, SourceOperator):
            state.flushed = True
            wall_start = time.perf_counter()
            flush = operator.on_finish()
            self.operator_wall_seconds[name] += time.perf_counter() - wall_start
            if flush.outputs or flush.cost_seconds:
                state.busy = True
                self._charge(name, flush.cost_seconds)
                self.scheduler.schedule(
                    flush.cost_seconds,
                    lambda: self._complete(name, flush.outputs))
                return
        state.closed = True
        self._open_operators -= 1
        if self._open_operators == 0:
            self.finish_time = self.scheduler.now
        for downstream in self.engine.downstreams(name):
            downstream_state = self._states[downstream]
            downstream_state.open_upstreams -= 1
            self._maybe_close(downstream)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """Whether every operator has drained and closed."""
        return self._open_operators == 0 and self._started

    def sink_items(self) -> Dict[str, List[Any]]:
        """Items collected by each sink, like ``engine.run()``'s return."""
        return {operator.name: list(operator.items)
                for operator in self.engine.operators
                if isinstance(operator, SinkOperator)}

    def latencies(self) -> List[float]:
        """Per-item sink-arrival delays relative to the engine start."""
        delays: List[float] = []
        for arrivals in self.sink_arrival_times.values():
            delays.extend(arrival - self.start_time for arrival in arrivals)
        return sorted(delays)


def run_engine(engine: DataflowEngine,
               external_inputs: Optional[Dict[str, List[Any]]] = None,
               batching: Optional[BatchingPolicy] = None
               ) -> Dict[str, List[Any]]:
    """Run one engine through a fresh scheduler (single-engine mode).

    Drop-in equivalent of ``engine.run(external_inputs)``: same operator
    charges, same ``engine.busy_seconds``, same sink contents.
    """
    scheduler = EventScheduler()
    scheduled = ScheduledEngine(scheduler, engine, batching=batching,
                                external_inputs=external_inputs).start()
    scheduler.run()
    if not scheduled.finished:  # pragma: no cover - DAG execution always drains.
        raise DataflowError(f"engine {engine.name!r} did not drain")
    return scheduled.sink_items()


def run_engines(engines: Sequence[DataflowEngine],
                batching: Optional[BatchingPolicy] = None,
                external_inputs: Optional[Dict[str, Dict[str, List[Any]]]] = None
                ) -> Dict[str, Dict[str, List[Any]]]:
    """Interleave several engines on one shared virtual clock.

    Args:
        engines: Engines to execute concurrently (names must be unique).
        batching: Batching policy applied to every engine.
        external_inputs: Optional ``{engine name: {operator: items}}``.

    Returns:
        ``{engine name: {sink name: items}}``.
    """
    names = [engine.name for engine in engines]
    if len(set(names)) != len(names):
        raise DataflowError(f"engine names must be unique, got {names}")
    scheduler = EventScheduler()
    scheduled = [
        ScheduledEngine(scheduler, engine, batching=batching,
                        external_inputs=(external_inputs or {}).get(engine.name))
        .start()
        for engine in engines
    ]
    scheduler.run()
    return {run.engine.name: run.sink_items() for run in scheduled}
