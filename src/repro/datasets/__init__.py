"""Dataset registry (Table I) and synthetic dataset builders."""

from .generator import DatasetInstance, build_all, build_dataset, build_split
from .registry import (ALL_DATASETS, LABELLED_DATASETS, TABLE_I, DatasetSpec,
                       all_datasets, get_dataset, labelled_datasets)

__all__ = [
    "DatasetInstance", "build_all", "build_dataset", "build_split",
    "ALL_DATASETS", "LABELLED_DATASETS", "TABLE_I", "DatasetSpec",
    "all_datasets", "get_dataset", "labelled_datasets",
]
