"""Content-keyed on-disk artifact cache (``REPRO_CACHE_DIR``).

The in-process prepared-dataset cache introduced with the perf work makes
repeat preparations free *within* one Python session, but every new pytest
session, benchmark run or example still re-renders the synthetic footage
from scratch.  This module adds the persistent layer underneath: numpy
artifacts are written as ``.npz`` bundles under a content key, so any
process that computes the same inputs reads the finished arrays back
instead of recomputing them.

Design:

* **Content keys.**  :func:`content_key` hashes a JSON canonicalisation of
  every input that affects the artifact (dataset name, split, footage
  scale, encoder parameters, code schema version, ...).  Changing any
  ingredient — including :data:`CACHE_SCHEMA_VERSION` when the on-disk
  layout evolves — moves the artifact to a new key, so stale entries are
  never read, only orphaned.
* **Atomic write-then-rename.**  Writers dump the ``.npz`` bundle (and a
  human-readable ``.json`` manifest next to it) into a unique temporary
  file in the cache directory and ``os.replace`` it into place.  Two
  processes racing the same key therefore both succeed: the loser's rename
  simply overwrites the winner's identical bytes, and a reader never
  observes a half-written file.
* **Corruption safety.**  A load that fails for *any* reason — truncated
  file, wrong embedded key, schema mismatch, unpicklable garbage — is a
  cache miss: the bad entry is deleted best-effort and the caller
  recomputes.  The cache can always be deleted wholesale
  (:func:`clear_cache`); nothing in it is authoritative.

The authoritative manifest travels *inside* the ``.npz`` (as a JSON string
under :data:`MANIFEST_MEMBER`), so the bundle is self-validating even if
the sibling ``.json`` file is lost or mismatched.

On top of the content-keyed store sits a **size budget**: when
``REPRO_CACHE_MAX_BYTES`` is set, every :func:`store` triggers an LRU
:func:`sweep` that evicts the least-recently-used entries until the cache
fits the budget again.  Access time is carried by the sibling ``.json``
manifest's mtime (touched on every verified hit, restored when missing), so
the sweep never has to open a bundle; eviction reuses the atomic
:func:`evict` (unlink both files, best-effort), which makes concurrent
sweepers/writers safe — a racer at worst re-renders one entry.  Entries of
the *active* build are protected twice over: in-process through
:func:`pinned` (the experiment harnesses pin every key they are building),
and cross-process through LRU order itself (a just-written entry is by
definition the newest).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..logging_utils import get_logger

_LOGGER = get_logger(__name__)

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable holding the cache size budget in bytes.  Unset,
#: empty or non-positive means unlimited (no automatic sweeping).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Bump whenever the serialised layout (or the semantics of anything cached
#: under it) changes; every key embeds this, invalidating older entries.
CACHE_SCHEMA_VERSION = 1

#: Name of the JSON manifest member embedded in every ``.npz`` bundle.
MANIFEST_MEMBER = "__manifest__"


def default_cache_dir() -> str:
    """The cache directory used when ``REPRO_CACHE_DIR`` is unset."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-sieve")


def cache_dir() -> str:
    """The active cache directory (honours ``REPRO_CACHE_DIR``)."""
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    return configured if configured else default_cache_dir()


def cache_max_bytes() -> Optional[int]:
    """The configured size budget in bytes; ``None`` means unlimited.

    Never raises: the budget is first consulted deep inside a build (at
    the end of the first expensive render), where crashing on a typo'd
    value would violate the cache layer's never-fail contract.  An
    unparseable (or non-finite) value is warned about and treated as
    unlimited.
    """
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        budget = int(float(raw))
    except (ValueError, OverflowError):
        global _WARNED_BAD_BUDGET
        if raw != _WARNED_BAD_BUDGET:  # once per value, not once per store
            _WARNED_BAD_BUDGET = raw
            _LOGGER.warning(
                "ignoring unparseable %s=%r; the cache size is unlimited",
                CACHE_MAX_BYTES_ENV, raw)
        return None
    return budget if budget > 0 else None


#: Last unparseable budget value already warned about (warn-once memo).
_WARNED_BAD_BUDGET: Optional[str] = None


@contextmanager
def temporary_cache_dir(directory: str) -> Iterator[str]:
    """Point ``REPRO_CACHE_DIR`` at ``directory`` for the enclosed block.

    Restores the previous value (or unset state) on exit.  The test and
    benchmark suites use this to stay hermetic — no reads from, or writes
    to, the user-level cache.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(directory)
    try:
        yield str(directory)
    finally:
        if previous is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous


def _canonical(value):
    """Reduce ``value`` to JSON-serialisable canonical form for hashing."""
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if hasattr(value, "__dataclass_fields__"):
        fields = value.__dataclass_fields__
        return {name: _canonical(getattr(value, name)) for name in sorted(fields)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # No repr() fallback: a default repr embeds a memory address, which
    # would silently produce a different key in every process and turn the
    # cross-session cache into a write-only store.
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} into a cache key; "
        "pass primitives, containers or dataclasses")


def content_key(*parts) -> str:
    """Hash ``parts`` (plus the schema version) into a stable hex key.

    Dataclasses are keyed by their field values, containers recursively;
    the digest is stable across processes and Python versions.
    """
    payload = json.dumps(_canonical([CACHE_SCHEMA_VERSION, *parts]),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def artifact_path(kind: str, key: str, directory: Optional[str] = None) -> str:
    """Path of the ``.npz`` bundle for ``(kind, key)``."""
    return os.path.join(directory or cache_dir(), kind, f"{key}.npz")


def _sibling_json(npz_path: str) -> str:
    """Path of the human-readable manifest next to an ``.npz`` bundle."""
    return npz_path[:-len(".npz")] + ".json"


# --------------------------------------------------------------------------- #
# Pinning: entries of the active build that the LRU sweep must not evict
# --------------------------------------------------------------------------- #
#: Reference counts of pinned ``(kind, key)`` pairs.  Pins are in-process
#: (the experiment harnesses pin every artifact of the build in flight);
#: cross-process protection comes from LRU order — fresh entries are the
#: last candidates for eviction.
_PIN_COUNTS: Dict[Tuple[str, str], int] = {}


@contextmanager
def pinned(entries: Iterable[Tuple[str, str]]) -> Iterator[None]:
    """Protect ``(kind, key)`` pairs from :func:`sweep` for the block.

    Pins nest (reference counted) and cost nothing when no size budget is
    configured.  The sweep keeps pinned entries even when that leaves the
    cache above budget — an active build must never lose its own artifacts.
    """
    held = [(str(kind), str(key)) for kind, key in entries]
    for entry in held:
        _PIN_COUNTS[entry] = _PIN_COUNTS.get(entry, 0) + 1
    try:
        yield
    finally:
        for entry in held:
            remaining = _PIN_COUNTS.get(entry, 0) - 1
            if remaining <= 0:
                _PIN_COUNTS.pop(entry, None)
            else:
                _PIN_COUNTS[entry] = remaining


def pinned_entries() -> Set[Tuple[str, str]]:
    """The ``(kind, key)`` pairs currently pinned in this process."""
    return set(_PIN_COUNTS)


def touch(kind: str, key: str, directory: Optional[str] = None) -> None:
    """Refresh the access time of ``(kind, key)`` (best-effort).

    The LRU clock of an entry is its sibling ``.json`` manifest's mtime;
    when the sibling has gone missing the bundle's own mtime stands in, so
    touching falls back to the ``.npz``.  Races with eviction are benign —
    a vanished file is simply not touched.
    """
    path = artifact_path(kind, key, directory)
    for victim in (_sibling_json(path), path):
        try:
            os.utime(victim)
            return
        except OSError:
            continue


def _atomic_write(path: str, write_fn) -> None:
    """Write via ``write_fn(handle)`` into a temp file, then rename."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            write_fn(handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def store(kind: str, key: str, arrays: Dict[str, np.ndarray],
          manifest: Optional[Dict[str, object]] = None,
          directory: Optional[str] = None) -> str:
    """Persist ``arrays`` under ``(kind, key)``; returns the bundle path.

    The manifest (augmented with the kind/key/schema version) is embedded
    in the bundle and mirrored to a sibling ``.json`` for inspection (and
    as the entry's LRU access-time carrier).  Failures to write (read-only
    filesystem, disk full) are the caller's to handle; the cache never
    half-writes thanks to the rename.  When ``REPRO_CACHE_MAX_BYTES`` is
    configured, a successful store triggers an LRU :func:`sweep` with the
    just-written entry pinned.
    """
    if MANIFEST_MEMBER in arrays:
        raise ValueError(f"array name {MANIFEST_MEMBER!r} is reserved")
    path = artifact_path(kind, key, directory)
    full_manifest = dict(manifest or {})
    full_manifest.update({
        "kind": kind,
        "key": key,
        "schema_version": CACHE_SCHEMA_VERSION,
    })
    manifest_json = json.dumps(full_manifest, sort_keys=True, default=repr)
    payload = dict(arrays)
    payload[MANIFEST_MEMBER] = np.frombuffer(
        manifest_json.encode("utf-8"), dtype=np.uint8)

    _atomic_write(path, lambda handle: np.savez_compressed(handle, **payload))
    _atomic_write(_sibling_json(path),
                  lambda handle: handle.write(manifest_json.encode("utf-8")))
    budget = cache_max_bytes()
    if budget is not None:
        sweep(max_bytes=budget, directory=directory,
              extra_pinned=((kind, key),))
    return path


def load(kind: str, key: str, directory: Optional[str] = None
         ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, object]]]:
    """Read the bundle for ``(kind, key)``; ``None`` on miss or corruption.

    Returns:
        ``(arrays, manifest)`` on a verified hit.  Any load failure —
        missing file, truncated archive, key/schema mismatch — deletes the
        entry best-effort and reports a miss.

    Both orders of partial deletion are handled: a bundle whose sibling
    ``.json`` is gone still hits (the authoritative manifest is embedded)
    and the sibling is rewritten so the entry regains its LRU clock; a
    lingering ``.json`` whose bundle is gone is a miss and the orphan is
    cleaned up rather than left to age in the cache directory forever.
    """
    path = artifact_path(kind, key, directory)
    if not os.path.exists(path):
        # The bundle is gone; a surviving sibling manifest is an orphan
        # (e.g. the other half of a crashed eviction) — remove it.  Only
        # the sibling: unlinking the bundle path here would race a writer
        # whose rename landed after the exists() check and destroy its
        # freshly completed entry (a lost sibling is restored on hit).
        try:
            os.unlink(_sibling_json(path))
        except OSError:
            pass
        return None
    try:
        with np.load(path, allow_pickle=False) as bundle:
            manifest_bytes = bytes(bundle[MANIFEST_MEMBER])
            manifest = json.loads(manifest_bytes.decode("utf-8"))
            if (manifest.get("kind") != kind or manifest.get("key") != key
                    or manifest.get("schema_version") != CACHE_SCHEMA_VERSION):
                raise ValueError("manifest does not match the requested key")
            arrays = {name: bundle[name] for name in bundle.files
                      if name != MANIFEST_MEMBER}
    except Exception:
        evict(kind, key, directory)
        return None
    sibling = _sibling_json(path)
    if not os.path.exists(sibling):
        # Restore the lost sibling from the embedded manifest so the entry
        # is inspectable again and regains its LRU access-time carrier.
        try:
            _atomic_write(sibling, lambda handle: handle.write(manifest_bytes))
        except OSError:
            pass
    else:
        touch(kind, key, directory)
    return arrays, manifest


def evict(kind: str, key: str, directory: Optional[str] = None) -> bool:
    """Delete the entry for ``(kind, key)`` (best-effort); True if removed."""
    path = artifact_path(kind, key, directory)
    removed = False
    for victim in (path, _sibling_json(path)):
        try:
            os.unlink(victim)
            removed = True
        except OSError:
            pass
    return removed


# --------------------------------------------------------------------------- #
# Size budget: scan + LRU sweep
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CacheEntryInfo:
    """One cache entry as seen by :func:`scan_entries`.

    Attributes:
        kind: Artifact kind (directory name).
        key: Content key.
        size_bytes: Bundle plus sibling-manifest size.
        atime: LRU clock — the sibling ``.json`` mtime when present, the
            bundle's own mtime otherwise.
    """

    kind: str
    key: str
    size_bytes: int
    atime: float


@dataclass
class SweepResult:
    """What one :func:`sweep` did.

    Attributes:
        total_bytes_before: Cache size when the sweep started.
        total_bytes_after: Cache size after evictions (as accounted by the
            sweep; concurrent writers may change it immediately).
        evicted: ``(kind, key)`` pairs removed, oldest first.
        kept_pinned: Entries that would have been evicted but were pinned.
        orphans_removed: Stray sibling ``.json`` files cleaned up.
        evict_failures: Entries that should have been evicted but could
            not be unlinked (their size stays in ``total_bytes_after``).
    """

    total_bytes_before: int = 0
    total_bytes_after: int = 0
    evicted: List[Tuple[str, str]] = field(default_factory=list)
    kept_pinned: int = 0
    orphans_removed: int = 0
    evict_failures: int = 0


def _scan(directory: Optional[str]
          ) -> Tuple[List[CacheEntryInfo], List[str]]:
    """One walk of the cache tree: ``(entries oldest-first, orphan paths)``.

    Orphans are sibling ``.json`` files whose ``.npz`` bundle is gone.
    Files vanishing mid-scan (concurrent evictions) are skipped; sizes and
    access times are therefore a snapshot, good enough for LRU ordering.
    """
    root = directory or cache_dir()
    entries: List[CacheEntryInfo] = []
    orphans: List[str] = []
    try:
        kinds = sorted(entry for entry in os.listdir(root)
                       if os.path.isdir(os.path.join(root, entry)))
    except OSError:
        return [], []
    for kind in kinds:
        kind_dir = os.path.join(root, kind)
        try:
            names = os.listdir(kind_dir)
        except OSError:
            continue
        present = set(names)
        for name in sorted(names):
            if (name.endswith(".json")
                    and name[:-len(".json")] + ".npz" not in present):
                orphans.append(os.path.join(kind_dir, name))
                continue
            if not name.endswith(".npz"):
                continue
            key = name[:-len(".npz")]
            path = os.path.join(kind_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # evicted between listing and stat
            size = stat.st_size
            atime = stat.st_mtime
            try:
                sibling_stat = os.stat(_sibling_json(path))
                size += sibling_stat.st_size
                atime = sibling_stat.st_mtime
            except OSError:
                pass  # missing sibling: the bundle's own mtime stands in
            entries.append(CacheEntryInfo(kind=kind, key=key,
                                          size_bytes=size, atime=atime))
    entries.sort(key=lambda entry: (entry.atime, entry.kind, entry.key))
    return entries, orphans


def scan_entries(directory: Optional[str] = None) -> List[CacheEntryInfo]:
    """Every entry in the cache, across kinds, oldest access first."""
    return _scan(directory)[0]


def cache_total_bytes(directory: Optional[str] = None) -> int:
    """Current cache size (bundles plus sibling manifests)."""
    return sum(entry.size_bytes for entry in scan_entries(directory))


def tree_digest(directory: Optional[str] = None) -> Dict[str, str]:
    """``{relative path: sha256 hex}`` of every file under ``directory``.

    Verification helper for the byte-identity contract of parallel builds:
    two cache directories produced from the same inputs must compare equal
    (asserted by the workload-builder tests and ``bench_figure4``).
    """
    root = directory or cache_dir()
    digests: Dict[str, str] = {}
    for dirpath, _, names in os.walk(root):
        for name in names:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                digests[os.path.relpath(path, root)] = hashlib.sha256(
                    handle.read()).hexdigest()
    return digests


def sweep(max_bytes: Optional[int] = None, directory: Optional[str] = None,
          extra_pinned: Iterable[Tuple[str, str]] = ()) -> SweepResult:
    """Evict least-recently-used entries until the cache fits ``max_bytes``.

    Args:
        max_bytes: Size budget; defaults to ``REPRO_CACHE_MAX_BYTES``.
            ``None`` (unset) only cleans up orphaned sibling manifests.
        directory: Cache directory (defaults to the active one).
        extra_pinned: Additional ``(kind, key)`` pairs to protect beyond
            the process-wide :func:`pinned` set.

    Eviction is the atomic best-effort :func:`evict`, so sweeps racing
    writers (or each other) are safe: an entry evicted underneath a reader
    is a plain cache miss, and an entry re-stored underneath the sweep is
    a fresh file the next sweep accounts for.  Pinned entries are never
    evicted, even when keeping them leaves the cache above budget.
    """
    if max_bytes is None:
        max_bytes = cache_max_bytes()
    result = SweepResult()
    entries, orphans = _scan(directory)
    for orphan in orphans:
        try:
            os.unlink(orphan)
            result.orphans_removed += 1
        except OSError:
            pass
    total = sum(entry.size_bytes for entry in entries)
    result.total_bytes_before = total
    result.total_bytes_after = total
    if max_bytes is None:
        return result
    protected = pinned_entries()
    protected.update((str(kind), str(key)) for kind, key in extra_pinned)
    for entry in entries:  # oldest access first
        if total <= max_bytes:
            break
        if (entry.kind, entry.key) in protected:
            result.kept_pinned += 1
            continue
        evict(entry.kind, entry.key, directory)
        # Success is "the bundle is actually gone", not evict()'s return
        # (which is true on any partial unlink): an entry this process
        # cannot remove (permissions, shared cache) must not be booked as
        # freed space — keep looking for evictable ones rather than
        # pretending the budget was met.  A lingering sibling after a
        # removed bundle skews the accounting by only its few bytes.
        if os.path.exists(artifact_path(entry.kind, entry.key, directory)):
            result.evict_failures += 1
        else:
            total -= entry.size_bytes
            result.evicted.append((entry.kind, entry.key))
    result.total_bytes_after = max(total, 0)
    return result


def list_keys(kind: str, directory: Optional[str] = None) -> Iterable[str]:
    """Keys currently stored under ``kind`` (unverified, newest last)."""
    root = os.path.join(directory or cache_dir(), kind)
    try:
        names = sorted(
            entry for entry in os.listdir(root) if entry.endswith(".npz"))
    except OSError:
        return []
    return [name[:-len(".npz")] for name in names]


def clear_cache(kind: Optional[str] = None,
                directory: Optional[str] = None) -> int:
    """Remove every cached bundle (of ``kind``, or all kinds); returns count."""
    root = directory or cache_dir()
    kinds = [kind] if kind else []
    if not kinds:
        try:
            kinds = [entry for entry in os.listdir(root)
                     if os.path.isdir(os.path.join(root, entry))]
        except OSError:
            return 0
    removed = 0
    for one_kind in kinds:
        for key in list_keys(one_kind, root):
            if evict(one_kind, key, root):
                removed += 1
    return removed
