"""Content-keyed on-disk artifact cache (``REPRO_CACHE_DIR``).

The in-process prepared-dataset cache introduced with the perf work makes
repeat preparations free *within* one Python session, but every new pytest
session, benchmark run or example still re-renders the synthetic footage
from scratch.  This module adds the persistent layer underneath: numpy
artifacts are written as ``.npz`` bundles under a content key, so any
process that computes the same inputs reads the finished arrays back
instead of recomputing them.

Design:

* **Content keys.**  :func:`content_key` hashes a JSON canonicalisation of
  every input that affects the artifact (dataset name, split, footage
  scale, encoder parameters, code schema version, ...).  Changing any
  ingredient — including :data:`CACHE_SCHEMA_VERSION` when the on-disk
  layout evolves — moves the artifact to a new key, so stale entries are
  never read, only orphaned.
* **Atomic write-then-rename.**  Writers dump the ``.npz`` bundle (and a
  human-readable ``.json`` manifest next to it) into a unique temporary
  file in the cache directory and ``os.replace`` it into place.  Two
  processes racing the same key therefore both succeed: the loser's rename
  simply overwrites the winner's identical bytes, and a reader never
  observes a half-written file.
* **Corruption safety.**  A load that fails for *any* reason — truncated
  file, wrong embedded key, schema mismatch, unpicklable garbage — is a
  cache miss: the bad entry is deleted best-effort and the caller
  recomputes.  The cache can always be deleted wholesale
  (:func:`clear_cache`); nothing in it is authoritative.

The authoritative manifest travels *inside* the ``.npz`` (as a JSON string
under :data:`MANIFEST_MEMBER`), so the bundle is self-validating even if
the sibling ``.json`` file is lost or mismatched.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump whenever the serialised layout (or the semantics of anything cached
#: under it) changes; every key embeds this, invalidating older entries.
CACHE_SCHEMA_VERSION = 1

#: Name of the JSON manifest member embedded in every ``.npz`` bundle.
MANIFEST_MEMBER = "__manifest__"


def default_cache_dir() -> str:
    """The cache directory used when ``REPRO_CACHE_DIR`` is unset."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-sieve")


def cache_dir() -> str:
    """The active cache directory (honours ``REPRO_CACHE_DIR``)."""
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    return configured if configured else default_cache_dir()


@contextmanager
def temporary_cache_dir(directory: str) -> Iterator[str]:
    """Point ``REPRO_CACHE_DIR`` at ``directory`` for the enclosed block.

    Restores the previous value (or unset state) on exit.  The test and
    benchmark suites use this to stay hermetic — no reads from, or writes
    to, the user-level cache.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(directory)
    try:
        yield str(directory)
    finally:
        if previous is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous


def _canonical(value):
    """Reduce ``value`` to JSON-serialisable canonical form for hashing."""
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if hasattr(value, "__dataclass_fields__"):
        fields = value.__dataclass_fields__
        return {name: _canonical(getattr(value, name)) for name in sorted(fields)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # No repr() fallback: a default repr embeds a memory address, which
    # would silently produce a different key in every process and turn the
    # cross-session cache into a write-only store.
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} into a cache key; "
        "pass primitives, containers or dataclasses")


def content_key(*parts) -> str:
    """Hash ``parts`` (plus the schema version) into a stable hex key.

    Dataclasses are keyed by their field values, containers recursively;
    the digest is stable across processes and Python versions.
    """
    payload = json.dumps(_canonical([CACHE_SCHEMA_VERSION, *parts]),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def artifact_path(kind: str, key: str, directory: Optional[str] = None) -> str:
    """Path of the ``.npz`` bundle for ``(kind, key)``."""
    return os.path.join(directory or cache_dir(), kind, f"{key}.npz")


def _atomic_write(path: str, write_fn) -> None:
    """Write via ``write_fn(handle)`` into a temp file, then rename."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            write_fn(handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def store(kind: str, key: str, arrays: Dict[str, np.ndarray],
          manifest: Optional[Dict[str, object]] = None,
          directory: Optional[str] = None) -> str:
    """Persist ``arrays`` under ``(kind, key)``; returns the bundle path.

    The manifest (augmented with the kind/key/schema version) is embedded
    in the bundle and mirrored to a sibling ``.json`` for inspection.
    Failures to write (read-only filesystem, disk full) are the caller's to
    handle; the cache never half-writes thanks to the rename.
    """
    if MANIFEST_MEMBER in arrays:
        raise ValueError(f"array name {MANIFEST_MEMBER!r} is reserved")
    path = artifact_path(kind, key, directory)
    full_manifest = dict(manifest or {})
    full_manifest.update({
        "kind": kind,
        "key": key,
        "schema_version": CACHE_SCHEMA_VERSION,
    })
    manifest_json = json.dumps(full_manifest, sort_keys=True, default=repr)
    payload = dict(arrays)
    payload[MANIFEST_MEMBER] = np.frombuffer(
        manifest_json.encode("utf-8"), dtype=np.uint8)

    _atomic_write(path, lambda handle: np.savez_compressed(handle, **payload))
    _atomic_write(path[:-len(".npz")] + ".json",
                  lambda handle: handle.write(manifest_json.encode("utf-8")))
    return path


def load(kind: str, key: str, directory: Optional[str] = None
         ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, object]]]:
    """Read the bundle for ``(kind, key)``; ``None`` on miss or corruption.

    Returns:
        ``(arrays, manifest)`` on a verified hit.  Any load failure —
        missing file, truncated archive, key/schema mismatch — deletes the
        entry best-effort and reports a miss.
    """
    path = artifact_path(kind, key, directory)
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as bundle:
            manifest_bytes = bytes(bundle[MANIFEST_MEMBER])
            manifest = json.loads(manifest_bytes.decode("utf-8"))
            if (manifest.get("kind") != kind or manifest.get("key") != key
                    or manifest.get("schema_version") != CACHE_SCHEMA_VERSION):
                raise ValueError("manifest does not match the requested key")
            arrays = {name: bundle[name] for name in bundle.files
                      if name != MANIFEST_MEMBER}
        return arrays, manifest
    except Exception:
        evict(kind, key, directory)
        return None


def evict(kind: str, key: str, directory: Optional[str] = None) -> bool:
    """Delete the entry for ``(kind, key)`` (best-effort); True if removed."""
    path = artifact_path(kind, key, directory)
    removed = False
    for victim in (path, path[:-len(".npz")] + ".json"):
        try:
            os.unlink(victim)
            removed = True
        except OSError:
            pass
    return removed


def list_keys(kind: str, directory: Optional[str] = None) -> Iterable[str]:
    """Keys currently stored under ``kind`` (unverified, newest last)."""
    root = os.path.join(directory or cache_dir(), kind)
    try:
        names = sorted(
            entry for entry in os.listdir(root) if entry.endswith(".npz"))
    except OSError:
        return []
    return [name[:-len(".npz")] for name in names]


def clear_cache(kind: Optional[str] = None,
                directory: Optional[str] = None) -> int:
    """Remove every cached bundle (of ``kind``, or all kinds); returns count."""
    root = directory or cache_dir()
    kinds = [kind] if kind else []
    if not kinds:
        try:
            kinds = [entry for entry in os.listdir(root)
                     if os.path.isdir(os.path.join(root, entry))]
        except OSError:
            return 0
    removed = 0
    for one_kind in kinds:
        for key in list_keys(one_kind, root):
            if evict(one_kind, key, root):
                removed += 1
    return removed
