"""Dataset instantiation helpers: train/test splits and cached builds.

The paper uses the first half of every labelled feed to tune encoder
parameters (and the baselines' thresholds) and the second half for
evaluation.  :func:`build_split` reproduces that protocol for the synthetic
stand-ins: the train and test clips come from the same scene profile but
with different schedule seeds, i.e. the same camera on different days.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import DatasetError
from ..rng import derive_seed
from ..video.raw_video import VideoSource
from ..video.scenarios import DEFAULT_RENDER_SCALE
from ..video.synthetic import SceneProfile, SyntheticScene
from .registry import DatasetSpec, get_dataset


@dataclass
class DatasetInstance:
    """A rendered dataset clip plus its provenance.

    Attributes:
        spec: The Table I dataset this clip stands in for.
        profile: The scene profile actually rendered.
        video: The generated video (its ``timeline`` carries ground truth).
        split: ``"train"``, ``"test"`` or ``"full"``.
    """

    spec: DatasetSpec
    profile: SceneProfile
    video: VideoSource
    split: str = "full"

    @property
    def timeline(self):
        """Ground-truth event timeline of the clip."""
        return self.video.timeline

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name


def build_dataset(name: str, duration_seconds: float = 120.0,
                  render_scale: float = DEFAULT_RENDER_SCALE,
                  seed: Optional[int] = None, split: str = "full") -> DatasetInstance:
    """Build one synthetic clip standing in for a Table I dataset.

    Args:
        name: Dataset name.
        duration_seconds: Clip length.
        render_scale: Resolution scale applied to the nominal resolution.
        seed: Scene schedule seed (defaults to a split-specific derivation).
        split: Label recorded on the instance (``"train"``/``"test"``/``"full"``).

    Returns:
        The built :class:`DatasetInstance`.
    """
    spec = get_dataset(name)
    if seed is None:
        seed = derive_seed(1000, name, split)
    profile = spec.build_profile(duration_seconds=duration_seconds,
                                 render_scale=render_scale, seed=seed)
    video = SyntheticScene(profile).video()
    return DatasetInstance(spec=spec, profile=profile, video=video, split=split)


def build_split(name: str, duration_seconds: float = 120.0,
                render_scale: float = DEFAULT_RENDER_SCALE
                ) -> Tuple[DatasetInstance, DatasetInstance]:
    """Build the train/test pair for a dataset (same camera, different days)."""
    train = build_dataset(name, duration_seconds, render_scale, split="train")
    test = build_dataset(name, duration_seconds, render_scale, split="test")
    return train, test


def build_all(names, duration_seconds: float = 120.0,
              render_scale: float = DEFAULT_RENDER_SCALE,
              split: str = "full") -> Dict[str, DatasetInstance]:
    """Build several datasets at once."""
    instances = {}
    for name in names:
        instances[name] = build_dataset(name, duration_seconds, render_scale,
                                        split=split)
    if not instances:
        raise DatasetError("no dataset names given")
    return instances
