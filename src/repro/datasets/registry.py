"""Dataset registry mirroring Table I of the paper.

Each :class:`DatasetSpec` records the paper's nominal properties of a dataset
(objects, resolution, fps, duration, whether ground-truth labels exist) and
knows how to build the synthetic stand-in video at an experiment-friendly
duration and render scale.  The nominal resolution is what the simulated
cost model and the data-transfer accounting use, so the reproduced tables
keep realistic magnitudes even though the rendered pixel planes are smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import DatasetError
from ..video.frame import (RESOLUTION_1080P, RESOLUTION_400P, RESOLUTION_720P,
                           Resolution)
from ..video.scenarios import (DEFAULT_DURATION_SECONDS, DEFAULT_RENDER_SCALE,
                               make_scenario)
from ..video.synthetic import SceneProfile


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table I.

    Attributes:
        name: Dataset name (also the scenario name).
        objects: Object classes appearing in the feed.
        nominal_resolution: Resolution of the original footage.
        fps: Frame rate of the original footage.
        paper_duration_hours: Footage length used by the paper.
        description: Table I description.
        has_labels: Whether ground-truth object labels are available (the
            first three datasets).
    """

    name: str
    objects: Tuple[str, ...]
    nominal_resolution: Resolution
    fps: float
    paper_duration_hours: float
    description: str
    has_labels: bool

    def build_profile(self, duration_seconds: float = DEFAULT_DURATION_SECONDS,
                      render_scale: float = DEFAULT_RENDER_SCALE,
                      seed: Optional[int] = None) -> SceneProfile:
        """Build the synthetic scene profile standing in for this dataset."""
        return make_scenario(self.name, duration_seconds=duration_seconds,
                             render_scale=render_scale, seed=seed)

    def size_scale_to_nominal(self, rendered: Resolution) -> float:
        """Factor converting rendered-resolution byte counts to nominal ones."""
        if rendered.pixels <= 0:
            raise DatasetError("rendered resolution must be non-empty")
        return self.nominal_resolution.pixels / rendered.pixels

    @property
    def paper_num_frames(self) -> int:
        """Number of frames in the footage the paper used."""
        return int(self.paper_duration_hours * 3600 * self.fps)


#: The five datasets of Table I.
TABLE_I: Dict[str, DatasetSpec] = {
    "jackson_square": DatasetSpec(
        name="jackson_square", objects=("car", "bus", "truck"),
        nominal_resolution=RESOLUTION_400P, fps=30.0, paper_duration_hours=8.0,
        description="vehicles going back and forth in a public square",
        has_labels=True),
    "coral_reef": DatasetSpec(
        name="coral_reef", objects=("person",),
        nominal_resolution=RESOLUTION_720P, fps=30.0, paper_duration_hours=8.0,
        description="people watching coral reefs in an aquarium",
        has_labels=True),
    "venice": DatasetSpec(
        name="venice", objects=("boat",),
        nominal_resolution=RESOLUTION_1080P, fps=30.0, paper_duration_hours=8.0,
        description="boats moving in the lagoon",
        has_labels=True),
    "taipei": DatasetSpec(
        name="taipei", objects=("car", "person"),
        nominal_resolution=RESOLUTION_1080P, fps=30.0, paper_duration_hours=4.0,
        description="vehicles and people in a public square in Taipei",
        has_labels=False),
    "amsterdam": DatasetSpec(
        name="amsterdam", objects=("car", "person"),
        nominal_resolution=RESOLUTION_720P, fps=30.0, paper_duration_hours=4.0,
        description="road intersections in Amsterdam",
        has_labels=False),
}

#: Datasets with ground-truth labels (used by Figure 3 / Tables II-III).
LABELLED_DATASETS: Tuple[str, ...] = ("jackson_square", "coral_reef", "venice")

#: All dataset names in Table I order.
ALL_DATASETS: Tuple[str, ...] = tuple(TABLE_I)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return TABLE_I[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {sorted(TABLE_I)}") from exc


def labelled_datasets() -> List[DatasetSpec]:
    """Specs of the datasets with ground-truth labels."""
    return [TABLE_I[name] for name in LABELLED_DATASETS]


def all_datasets() -> List[DatasetSpec]:
    """Specs of all five datasets."""
    return [TABLE_I[name] for name in ALL_DATASETS]
