"""Exception hierarchy for the SiEVE reproduction.

Every error raised by the library derives from :class:`SieveError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class SieveError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(SieveError):
    """Raised when a component is constructed or used with invalid parameters."""


class CodecError(SieveError):
    """Base class for errors raised by the video codec substrate."""


class BitstreamError(CodecError):
    """Raised when a serialized bitstream is malformed or truncated."""


class DecodeError(CodecError):
    """Raised when a frame or video cannot be decoded."""


class EncodeError(CodecError):
    """Raised when a frame or video cannot be encoded."""


class DatasetError(SieveError):
    """Raised when a dataset specification is unknown or inconsistent."""


class ModelError(SieveError):
    """Raised by the neural-network substrate for invalid models or inputs."""


class DataflowError(SieveError):
    """Raised by the dataflow engine (bad graph, unknown operator, ...)."""


class NetworkError(SieveError):
    """Raised by the simulated network layer."""


class ClusterError(SieveError):
    """Raised by the simulated cluster (camera/edge/cloud) layer."""


class PipelineError(SieveError):
    """Raised by the end-to-end SiEVE pipeline."""


class TuningError(SieveError):
    """Raised by the offline encoder-parameter tuner."""


class ServiceError(SieveError):
    """Raised by the real-time streaming service layer."""


class FaultError(SieveError):
    """Raised by the fault-injection plane for invalid plans or misuse."""


class AdmissionError(ServiceError):
    """Raised when a new stream session is refused admission.

    Attributes:
        sheddable: Whether the refusal is a capacity overload that a
            degraded tenant tier could absorb (tenant quota exhausted),
            as opposed to a hard refusal (duplicate camera, unknown
            tenant, bad edge index, saturated WAN, service full).
    """

    def __init__(self, message: str, *, sheddable: bool = False) -> None:
        super().__init__(message)
        self.sheddable = sheddable


class BackpressureError(ServiceError):
    """Raised when a frame push exceeds a session's backpressure bounds."""
