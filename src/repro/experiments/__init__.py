"""Experiment harnesses regenerating every table and figure of the paper."""

from . import figure3, figure4, figure5, table1, table2, table3
from .common import (DATASET_CACHE_ENV, ExperimentConfig, PreparedDataset,
                     clear_prepared_cache, dataset_cache_enabled,
                     dataset_disk_key, format_table, prepare_dataset,
                     prepare_datasets, prepare_workload, workload_disk_key)

__all__ = [
    "figure3", "figure4", "figure5", "table1", "table2", "table3",
    "DATASET_CACHE_ENV", "ExperimentConfig", "PreparedDataset",
    "clear_prepared_cache", "dataset_cache_enabled", "dataset_disk_key",
    "format_table", "prepare_dataset", "prepare_datasets", "prepare_workload",
    "workload_disk_key",
]
