"""Experiment harnesses regenerating every table and figure of the paper."""

from . import figure3, figure4, figure5, table1, table2, table3
from .common import ExperimentConfig, PreparedDataset, format_table, prepare_dataset

__all__ = [
    "figure3", "figure4", "figure5", "table1", "table2", "table3",
    "ExperimentConfig", "PreparedDataset", "format_table", "prepare_dataset",
]
