"""Shared configuration and formatting helpers for the experiment harnesses.

Every table/figure module accepts an :class:`ExperimentConfig` controlling
the synthetic-footage scale.  The defaults regenerate the paper's result
*shapes* in a few minutes on a laptop CPU; ``ExperimentConfig.quick()`` is a
smaller setting used by the test suite, and longer/larger settings can be
passed for higher-fidelity runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters
from ..codec.scenecut import FrameActivity
from ..datasets.generator import DatasetInstance, build_dataset
from ..datasets.registry import LABELLED_DATASETS


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale of the synthetic footage used by an experiment run.

    Attributes:
        duration_seconds: Length of every rendered clip.
        render_scale: Resolution scale applied to the nominal resolutions.
        datasets: Dataset names included in the run.
    """

    duration_seconds: float = 60.0
    render_scale: float = 0.12
    datasets: Sequence[str] = LABELLED_DATASETS

    @classmethod
    def quick(cls, datasets: Sequence[str] = ("jackson_square",)) -> "ExperimentConfig":
        """A fast configuration used by unit/integration tests."""
        return cls(duration_seconds=20.0, render_scale=0.08, datasets=datasets)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a config honouring the ``REPRO_EXPERIMENT_*`` env overrides.

        ``REPRO_EXPERIMENT_DURATION`` (seconds) and ``REPRO_EXPERIMENT_SCALE``
        (resolution factor) allow longer, higher-fidelity benchmark runs
        without code changes.
        """
        duration = float(os.environ.get("REPRO_EXPERIMENT_DURATION", 60.0))
        scale = float(os.environ.get("REPRO_EXPERIMENT_SCALE", 0.12))
        return cls(duration_seconds=duration, render_scale=scale)


@dataclass
class PreparedDataset:
    """A dataset clip plus its (cached) codec analysis pass.

    Attributes:
        instance: The rendered clip and ground truth.
        activities: Per-frame scene-cut analysis (parameter independent).
    """

    instance: DatasetInstance
    activities: List[FrameActivity] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.instance.name

    @property
    def video(self):
        """The clip itself."""
        return self.instance.video

    @property
    def timeline(self):
        """Ground-truth timeline (``None`` for unlabelled datasets)."""
        return self.instance.timeline


def prepare_dataset(name: str, config: ExperimentConfig, split: str = "test",
                    base_parameters: EncoderParameters = EncoderParameters()
                    ) -> PreparedDataset:
    """Render one dataset clip and run the codec analysis pass over it."""
    instance = build_dataset(name, duration_seconds=config.duration_seconds,
                             render_scale=config.render_scale, split=split)
    activities = VideoEncoder(base_parameters).analyze(instance.video)
    return PreparedDataset(instance=instance, activities=activities)


def prepare_datasets(config: ExperimentConfig, split: str = "test"
                     ) -> Dict[str, PreparedDataset]:
    """Prepare every dataset named in ``config``."""
    return {name: prepare_dataset(name, config, split) for name in config.datasets}


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table (what the benchmarks print)."""
    rows = list(rows)
    header = " | ".join(f"{column:>18}" for column in columns)
    separator = "-+-".join("-" * 18 for _ in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(separator)
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
