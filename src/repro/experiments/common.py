"""Shared configuration and formatting helpers for the experiment harnesses.

Every table/figure module accepts an :class:`ExperimentConfig` controlling
the synthetic-footage scale.  The defaults regenerate the paper's result
*shapes* in a few minutes on a laptop CPU; ``ExperimentConfig.quick()`` is a
smaller setting used by the test suite, and longer/larger settings can be
passed for higher-fidelity runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters
from ..codec.scenecut import FrameActivity
from ..datasets.generator import DatasetInstance, build_dataset
from ..datasets.registry import LABELLED_DATASETS


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale of the synthetic footage used by an experiment run.

    Attributes:
        duration_seconds: Length of every rendered clip.
        render_scale: Resolution scale applied to the nominal resolutions.
        datasets: Dataset names included in the run.
    """

    duration_seconds: float = 60.0
    render_scale: float = 0.12
    datasets: Sequence[str] = LABELLED_DATASETS

    @classmethod
    def quick(cls, datasets: Sequence[str] = ("jackson_square",)) -> "ExperimentConfig":
        """A fast configuration used by unit/integration tests."""
        return cls(duration_seconds=20.0, render_scale=0.08, datasets=datasets)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a config honouring the ``REPRO_EXPERIMENT_*`` env overrides.

        ``REPRO_EXPERIMENT_DURATION`` (seconds) and ``REPRO_EXPERIMENT_SCALE``
        (resolution factor) allow longer, higher-fidelity benchmark runs
        without code changes.
        """
        duration = float(os.environ.get("REPRO_EXPERIMENT_DURATION", 60.0))
        scale = float(os.environ.get("REPRO_EXPERIMENT_SCALE", 0.12))
        return cls(duration_seconds=duration, render_scale=scale)


@dataclass
class PreparedDataset:
    """A dataset clip plus its (cached) codec analysis pass.

    Attributes:
        instance: The rendered clip and ground truth.
        activities: Per-frame scene-cut analysis (parameter independent).
    """

    instance: DatasetInstance
    activities: List[FrameActivity] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.instance.name

    @property
    def video(self):
        """The clip itself."""
        return self.instance.video

    @property
    def timeline(self):
        """Ground-truth timeline (``None`` for unlabelled datasets)."""
        return self.instance.timeline


#: In-process cache of prepared datasets, keyed by everything that affects
#: the result (see :func:`_cache_key`).  Rendering a clip and running the
#: analysis pass dominate harness start-up, yet Figures 3-5, Tables 1-3 and
#: the examples all prepare the same clips — the cache makes every repeat
#: preparation free.  Disable with ``REPRO_DATASET_CACHE=0``.
_PREPARED_CACHE: Dict[tuple, PreparedDataset] = {}

#: Environment variable that disables the prepared-dataset cache when set to
#: ``0`` / ``false`` / ``off`` / ``no``.
DATASET_CACHE_ENV = "REPRO_DATASET_CACHE"


def dataset_cache_enabled() -> bool:
    """Whether the prepared-dataset cache is active (honours the env var)."""
    value = os.environ.get(DATASET_CACHE_ENV, "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def clear_prepared_cache() -> int:
    """Drop every cached prepared dataset; returns how many were dropped."""
    dropped = len(_PREPARED_CACHE)
    _PREPARED_CACHE.clear()
    return dropped


def _cache_key(name: str, config: ExperimentConfig, split: str,
               base_parameters: EncoderParameters) -> tuple:
    """Content key of one prepared dataset.

    Covers the rendered footage (dataset, split, duration, render scale) and
    the analysis pass configuration (the encoder parameters), i.e. every
    input :func:`prepare_dataset` derives its output from.
    """
    return (name, split, float(config.duration_seconds),
            float(config.render_scale), base_parameters)


def prepare_dataset(name: str, config: ExperimentConfig, split: str = "test",
                    base_parameters: EncoderParameters = EncoderParameters()
                    ) -> PreparedDataset:
    """Render one dataset clip and run the codec analysis pass over it.

    Results are cached in-process under a content key (dataset name, split,
    duration, render scale, encoder parameters) and shared across every
    harness; set ``REPRO_DATASET_CACHE=0`` to opt out.  Callers receive the
    shared instance and must not mutate it.
    """
    if not dataset_cache_enabled():
        return _prepare_dataset_uncached(name, config, split, base_parameters)
    key = _cache_key(name, config, split, base_parameters)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        prepared = _prepare_dataset_uncached(name, config, split, base_parameters)
        _PREPARED_CACHE[key] = prepared
    return prepared


#: Clips whose raw frames would exceed this stay lazily generated; at the
#: default scales a dataset is a few tens of megabytes, but the env-driven
#: high-fidelity scales (full resolution, minutes of footage) would run to
#: gigabytes per dataset if materialised.
MATERIALISE_LIMIT_BYTES = 256 * 1024 * 1024


def _prepare_dataset_uncached(name: str, config: ExperimentConfig, split: str,
                              base_parameters: EncoderParameters
                              ) -> PreparedDataset:
    instance = build_dataset(name, duration_seconds=config.duration_seconds,
                             render_scale=config.render_scale, split=split)
    # Materialise the synthetic clip when it fits comfortably in memory: the
    # harnesses stream a prepared video several times (analysis, two
    # encodes, the MSE baseline), and lazily generated frames would be
    # re-rendered on every pass.
    video = instance.video
    if hasattr(video, "materialise"):
        frame_bytes = video.frame(0).data.nbytes
        if frame_bytes * video.metadata.num_frames <= MATERIALISE_LIMIT_BYTES:
            instance.video = video.materialise()
    activities = VideoEncoder(base_parameters).analyze(instance.video)
    return PreparedDataset(instance=instance, activities=activities)


def prepare_datasets(config: ExperimentConfig, split: str = "test"
                     ) -> Dict[str, PreparedDataset]:
    """Prepare every dataset named in ``config`` (through the cache)."""
    return {name: prepare_dataset(name, config, split) for name in config.datasets}


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table (what the benchmarks print)."""
    rows = list(rows)
    header = " | ".join(f"{column:>18}" for column in columns)
    separator = "-+-".join("-" * 18 for _ in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(separator)
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
