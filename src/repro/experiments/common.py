"""Shared configuration, caching and formatting for the experiment harnesses.

Every table/figure module accepts an :class:`ExperimentConfig` controlling
the synthetic-footage scale.  The defaults regenerate the paper's result
*shapes* in a few minutes on a laptop CPU; ``ExperimentConfig.quick()`` is a
smaller setting used by the test suite, and longer/larger settings can be
passed for higher-fidelity runs.

This module also owns the two-level artifact cache the harnesses share:

* **Prepared datasets** (rendered clip + codec analysis pass) are cached
  in-process *and* persisted through :mod:`repro.datasets.diskcache`, so a
  second Python session with a warm ``REPRO_CACHE_DIR`` skips the render
  and the analysis lookahead entirely.
* **Workloads** (the condensed per-video simulation inputs: tuned
  parameters' encode sizes, per-method sample sets) are cached the same
  way under a key extending the dataset key, so warm runs also skip the
  offline tuning and both size-only encodes.

Cache activity is observable through :mod:`repro.perf` stage sections
(``dataset.render`` / ``dataset.analyze`` / ``dataset.disk_hit`` and
``workload.build`` / ``workload.disk_hit`` / ``workload.parallel_warm``) —
the warm-session acceptance test asserts that a warm run records no
``dataset.render`` section.  Set ``REPRO_DATASET_CACHE=0`` to disable every
layer.

Builds can fan out across processes: the experiment harnesses accept a
``build_workers`` count (default ``SystemConfig.build_workers``) and route
through :class:`repro.parallel.WorkloadBuilder`, which warms the disk cache
from worker processes and assembles identical results here.  While a build
is in flight its cache keys are pinned (:func:`repro.datasets.diskcache.pinned`)
so the ``REPRO_CACHE_MAX_BYTES`` LRU sweep cannot evict them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..codec.encoder import VideoEncoder
from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..codec.scenecut import FrameActivity
from ..config import SystemConfig
from ..contracts import PRECISION_EXACT, validate_precision
from ..datasets import diskcache
from ..datasets.generator import DatasetInstance, build_dataset
from ..datasets.registry import LABELLED_DATASETS, get_dataset
from ..perf import section as perf_section
from ..video.events import Event, EventTimeline
from ..video.frame import Frame
from ..video.raw_video import RawVideo, VideoMetadata


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale of the synthetic footage used by an experiment run.

    Attributes:
        duration_seconds: Length of every rendered clip.
        render_scale: Resolution scale applied to the nominal resolutions.
        datasets: Dataset names included in the run.
    """

    duration_seconds: float = 60.0
    render_scale: float = 0.12
    datasets: Sequence[str] = LABELLED_DATASETS

    @classmethod
    def quick(cls, datasets: Sequence[str] = ("jackson_square",)) -> "ExperimentConfig":
        """A fast configuration used by unit/integration tests."""
        return cls(duration_seconds=20.0, render_scale=0.08, datasets=datasets)

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a config honouring the ``REPRO_EXPERIMENT_*`` env overrides.

        ``REPRO_EXPERIMENT_DURATION`` (seconds) and ``REPRO_EXPERIMENT_SCALE``
        (resolution factor) allow longer, higher-fidelity benchmark runs
        without code changes.
        """
        duration = float(os.environ.get("REPRO_EXPERIMENT_DURATION", 60.0))
        scale = float(os.environ.get("REPRO_EXPERIMENT_SCALE", 0.12))
        return cls(duration_seconds=duration, render_scale=scale)


@dataclass
class PreparedDataset:
    """A dataset clip plus its (cached) codec analysis pass.

    Attributes:
        instance: The rendered clip and ground truth.
        activities: Per-frame scene-cut analysis (parameter independent).
    """

    instance: DatasetInstance
    activities: List[FrameActivity] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.instance.name

    @property
    def video(self):
        """The clip itself."""
        return self.instance.video

    @property
    def timeline(self):
        """Ground-truth timeline (``None`` for unlabelled datasets)."""
        return self.instance.timeline


#: In-process (L1) cache of prepared datasets, keyed by everything that
#: affects the result (see :func:`_cache_key`).  Rendering a clip and running
#: the analysis pass dominate harness start-up, yet Figures 3-5, Tables 1-3
#: and the examples all prepare the same clips — the cache makes every repeat
#: preparation free.  The persistent (L2) layer lives in
#: :mod:`repro.datasets.diskcache`.  Disable with ``REPRO_DATASET_CACHE=0``.
_PREPARED_CACHE: Dict[tuple, PreparedDataset] = {}

#: In-process (L1) cache of built workloads (see :func:`prepare_workload`),
#: mapping key tuples to :class:`~repro.core.pipeline.VideoWorkload`.
_WORKLOAD_CACHE: Dict[tuple, object] = {}

#: Environment variable that disables the prepared-dataset and workload
#: caches (both in-process and on-disk) when set to ``0`` / ``false`` /
#: ``off`` / ``no``.
DATASET_CACHE_ENV = "REPRO_DATASET_CACHE"

#: Disk-cache artifact kinds (directory names under ``REPRO_CACHE_DIR``).
DATASET_CACHE_KIND = "prepared-dataset"
WORKLOAD_CACHE_KIND = "workload"


def dataset_cache_enabled() -> bool:
    """Whether the prepared-dataset cache is active (honours the env var)."""
    value = os.environ.get(DATASET_CACHE_ENV, "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def clear_prepared_cache() -> int:
    """Drop every in-process cached artifact; returns how many were dropped.

    Only the in-process layer is cleared — on-disk entries persist (use
    :func:`repro.datasets.diskcache.clear_cache` for those), which is what
    lets a fresh session reuse a warm ``REPRO_CACHE_DIR``.
    """
    dropped = len(_PREPARED_CACHE) + len(_WORKLOAD_CACHE)
    _PREPARED_CACHE.clear()
    _WORKLOAD_CACHE.clear()
    return dropped


def _cache_key(name: str, config: ExperimentConfig, split: str,
               base_parameters: EncoderParameters, precision: str) -> tuple:
    """Content key of one prepared dataset.

    Covers the rendered footage (dataset, split, duration, render scale) and
    the analysis pass configuration (the encoder parameters and the numeric
    precision of the motion search), i.e. every input
    :func:`prepare_dataset` derives its output from.
    """
    return (name, split, float(config.duration_seconds),
            float(config.render_scale), base_parameters, precision)


def dataset_disk_key(name: str, config: ExperimentConfig, split: str,
                     base_parameters: EncoderParameters,
                     precision: str = PRECISION_EXACT) -> str:
    """Disk-cache key of one prepared dataset (same inputs as L1).

    Public so the parallel :class:`~repro.parallel.WorkloadBuilder` can pin
    the entries of an active build against the LRU sweep.
    """
    return diskcache.content_key(
        DATASET_CACHE_KIND, name, split, float(config.duration_seconds),
        float(config.render_scale), base_parameters, precision)


def prepare_dataset(name: str, config: ExperimentConfig, split: str = "test",
                    base_parameters: EncoderParameters = EncoderParameters(),
                    precision: str = PRECISION_EXACT) -> PreparedDataset:
    """Render one dataset clip and run the codec analysis pass over it.

    Results are cached in-process under a content key (dataset name, split,
    duration, render scale, encoder parameters, precision), persisted to the
    on-disk cache under ``REPRO_CACHE_DIR``, and shared across every
    harness; set ``REPRO_DATASET_CACHE=0`` to opt out of all caching.
    Callers receive the shared instance and must not mutate it.  Fast and
    exact sessions never share an artifact: the analysis pass depends on the
    numeric mode, so ``precision`` is part of both cache keys.
    """
    validate_precision(precision)
    if not dataset_cache_enabled():
        return _prepare_dataset_uncached(name, config, split, base_parameters,
                                         precision)
    key = _cache_key(name, config, split, base_parameters, precision)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        disk_key = dataset_disk_key(name, config, split, base_parameters,
                                    precision)
        # Pinned while in flight so a concurrent budget sweep (triggered by
        # another store in this process) cannot evict the entry mid-build.
        with diskcache.pinned([(DATASET_CACHE_KIND, disk_key)]):
            prepared = _load_prepared_from_disk(name, config, split, disk_key)
            if prepared is None:
                prepared = _prepare_dataset_uncached(name, config, split,
                                                     base_parameters, precision)
                _store_prepared_to_disk(disk_key, name, config, split, prepared)
        _PREPARED_CACHE[key] = prepared
    return prepared


#: Clips whose raw frames would exceed this stay lazily generated; at the
#: default scales a dataset is a few tens of megabytes, but the env-driven
#: high-fidelity scales (full resolution, minutes of footage) would run to
#: gigabytes per dataset if materialised.
MATERIALISE_LIMIT_BYTES = 256 * 1024 * 1024


def _prepare_dataset_uncached(name: str, config: ExperimentConfig, split: str,
                              base_parameters: EncoderParameters,
                              precision: str = PRECISION_EXACT
                              ) -> PreparedDataset:
    with perf_section("dataset.render"):
        instance = build_dataset(name, duration_seconds=config.duration_seconds,
                                 render_scale=config.render_scale, split=split)
        # Materialise the synthetic clip when it fits comfortably in memory:
        # the harnesses stream a prepared video several times (analysis, two
        # encodes, the MSE baseline), and lazily generated frames would be
        # re-rendered on every pass.
        video = instance.video
        if hasattr(video, "materialise"):
            frame_bytes = video.frame(0).data.nbytes
            if frame_bytes * video.metadata.num_frames <= MATERIALISE_LIMIT_BYTES:
                instance.video = video.materialise()
    with perf_section("dataset.analyze"):
        activities = VideoEncoder(base_parameters,
                                  precision).analyze(instance.video)
    return PreparedDataset(instance=instance, activities=activities)


def prepare_datasets(config: ExperimentConfig, split: str = "test",
                     precision: str = PRECISION_EXACT
                     ) -> Dict[str, PreparedDataset]:
    """Prepare every dataset named in ``config`` (through the cache)."""
    return {name: prepare_dataset(name, config, split, precision=precision)
            for name in config.datasets}


# --------------------------------------------------------------------------- #
# Prepared-dataset (de)serialisation for the on-disk cache
# --------------------------------------------------------------------------- #
def _timeline_to_payload(timeline: Optional[EventTimeline]):
    """Timeline -> (arrays, manifest fragment); ``(None, None)`` when absent."""
    if timeline is None:
        return {}, None
    starts = np.array([event.start_frame for event in timeline.events],
                      dtype=np.int64)
    ends = np.array([event.end_frame for event in timeline.events],
                    dtype=np.int64)
    labels = [sorted(event.labels) for event in timeline.events]
    return ({"timeline_starts": starts, "timeline_ends": ends},
            {"timeline_labels": labels})


def _timeline_from_payload(arrays, manifest) -> Optional[EventTimeline]:
    labels = manifest.get("timeline_labels")
    if labels is None:
        return None
    events = [Event(int(start), int(end), frozenset(event_labels))
              for start, end, event_labels in zip(
                  arrays["timeline_starts"], arrays["timeline_ends"], labels)]
    return EventTimeline(events)


def _activities_to_arrays(activities: List[FrameActivity]) -> Dict[str, np.ndarray]:
    return {
        "activity_frame_index": np.array(
            [a.frame_index for a in activities], dtype=np.int64),
        "activity_inter_cost": np.array(
            [a.inter_cost for a in activities], dtype=np.float64),
        "activity_intra_cost": np.array(
            [a.intra_cost for a in activities], dtype=np.float64),
        "activity_novel": np.array(
            [a.novel_block_fraction for a in activities], dtype=np.float64),
        "activity_moving": np.array(
            [a.moving_block_fraction for a in activities], dtype=np.float64),
        "activity_is_first": np.array(
            [a.is_first for a in activities], dtype=np.bool_),
    }


def _activities_from_arrays(arrays) -> List[FrameActivity]:
    return [
        FrameActivity(frame_index=int(index), inter_cost=float(inter),
                      intra_cost=float(intra), novel_block_fraction=float(novel),
                      moving_block_fraction=float(moving), is_first=bool(first))
        for index, inter, intra, novel, moving, first in zip(
            arrays["activity_frame_index"], arrays["activity_inter_cost"],
            arrays["activity_intra_cost"], arrays["activity_novel"],
            arrays["activity_moving"], arrays["activity_is_first"])
    ]


def _store_prepared_to_disk(disk_key: str, name: str, config: ExperimentConfig,
                            split: str, prepared: PreparedDataset) -> bool:
    """Persist a prepared dataset; returns whether it was written.

    Only materialised clips are persisted — a clip that stayed lazily
    generated (because it exceeded :data:`MATERIALISE_LIMIT_BYTES`) would be
    as expensive to serialise as to re-render.
    """
    video = prepared.instance.video
    if not isinstance(video, RawVideo):
        return False
    try:
        arrays: Dict[str, np.ndarray] = {
            "frames": np.stack(video.as_arrays()),
        }
        arrays.update(_activities_to_arrays(prepared.activities))
        timeline_arrays, timeline_manifest = _timeline_to_payload(video.timeline)
        arrays.update(timeline_arrays)
        manifest: Dict[str, object] = {
            "dataset": name,
            "split": split,
            "duration_seconds": float(config.duration_seconds),
            "render_scale": float(config.render_scale),
            "video_name": video.metadata.name,
            "fps": float(video.metadata.fps),
            "profile_seed": prepared.instance.profile.seed,
        }
        if timeline_manifest:
            manifest.update(timeline_manifest)
        diskcache.store(DATASET_CACHE_KIND, disk_key, arrays, manifest)
        return True
    except OSError:
        # A read-only or full cache directory must never fail a run.
        return False


def _load_prepared_from_disk(name: str, config: ExperimentConfig, split: str,
                             disk_key: str) -> Optional[PreparedDataset]:
    # The section is recorded only on an actual hit, but must cover the
    # whole hit cost — the np.load/decompress included — so it is timed
    # with a stopwatch and folded in at the end.
    from ..perf import Stopwatch, get_recorder
    watch = Stopwatch().start()
    loaded = diskcache.load(DATASET_CACHE_KIND, disk_key)
    if loaded is None:
        return None
    arrays, manifest = loaded
    try:
        spec = get_dataset(name)
        profile = spec.build_profile(
            duration_seconds=config.duration_seconds,
            render_scale=config.render_scale,
            seed=int(manifest["profile_seed"]))
        timeline = _timeline_from_payload(arrays, manifest)
        fps = float(manifest["fps"])
        stacked = arrays["frames"]
        frames = [Frame(index=index, data=stacked[index],
                        timestamp=index / fps)
                  for index in range(stacked.shape[0])]
        metadata = VideoMetadata(
            name=str(manifest["video_name"]),
            resolution=frames[0].resolution, fps=fps,
            num_frames=len(frames),
            extra={"synthetic": True, "seed": profile.seed})
        video = RawVideo(metadata, frames, timeline)
        instance = DatasetInstance(spec=spec, profile=profile, video=video,
                                   split=split)
        activities = _activities_from_arrays(arrays)
        prepared = PreparedDataset(instance=instance, activities=activities)
    except Exception:
        # Treat any malformed entry exactly like a miss.
        diskcache.evict(DATASET_CACHE_KIND, disk_key)
        return None
    get_recorder().add_section_time("dataset.disk_hit", watch.stop())
    return prepared


# --------------------------------------------------------------------------- #
# Workload-level cache
# --------------------------------------------------------------------------- #
def _workload_key_parts(name: str, config: ExperimentConfig, split: str,
                        base_parameters: EncoderParameters,
                        system_config: SystemConfig, target_f1: float,
                        unlabelled_sample_period_seconds: float) -> tuple:
    """Everything :func:`prepare_workload`'s output is derived from."""
    from ..core.pipeline import H264_EFFICIENCY_FACTOR
    return (WORKLOAD_CACHE_KIND, name, split, float(config.duration_seconds),
            float(config.render_scale), base_parameters,
            tuple(system_config.nn_input_resolution), float(target_f1),
            float(unlabelled_sample_period_seconds),
            float(H264_EFFICIENCY_FACTOR), system_config.precision)


def workload_disk_key(name: str, config: ExperimentConfig, split: str,
                      base_parameters: EncoderParameters,
                      system_config: SystemConfig, target_f1: float,
                      unlabelled_sample_period_seconds: float) -> str:
    """Disk-cache key of one condensed workload artifact.

    Public so the parallel :class:`~repro.parallel.WorkloadBuilder` can pin
    the entries of an active build against the LRU sweep.
    """
    return diskcache.content_key(*_workload_key_parts(
        name, config, split, base_parameters, system_config, target_f1,
        unlabelled_sample_period_seconds))


def prepare_workload(name: str, config: ExperimentConfig, split: str = "full",
                     system_config: Optional[SystemConfig] = None,
                     base_parameters: EncoderParameters = DEFAULT_PARAMETERS,
                     target_f1: float = 0.95,
                     unlabelled_sample_period_seconds: float = 5.0):
    """Build (or reuse) the end-to-end workload of one dataset.

    The heavy stages — offline tuning, the two size-only encodes, the MSE
    baseline fit — run only on a cold cache; a warm hit reconstructs the
    :class:`~repro.core.pipeline.VideoWorkload` from the on-disk artifact
    without touching the footage at all.  ``REPRO_DATASET_CACHE=0`` opts out.

    Returns:
        The prepared :class:`~repro.core.pipeline.VideoWorkload`.
    """
    from ..core.pipeline import build_workload
    system_config = system_config or SystemConfig()
    precision = system_config.precision
    if not dataset_cache_enabled():
        prepared = prepare_dataset(name, config, split, base_parameters,
                                   precision)
        with perf_section("workload.build"):
            return build_workload(prepared.instance, config=system_config,
                                  default_parameters=base_parameters,
                                  target_f1=target_f1,
                                  unlabelled_sample_period_seconds=(
                                      unlabelled_sample_period_seconds),
                                  activities=prepared.activities)
    key_parts = _workload_key_parts(name, config, split, base_parameters,
                                    system_config, target_f1,
                                    unlabelled_sample_period_seconds)
    workload = _WORKLOAD_CACHE.get(key_parts)
    if workload is not None:
        return workload
    disk_key = diskcache.content_key(*key_parts)
    # Pin both artifacts of the build in flight: the workload entry being
    # (re)built and the prepared dataset it reads, so an LRU sweep riding
    # on another store cannot evict either from underneath the build.
    pins = [(WORKLOAD_CACHE_KIND, disk_key),
            (DATASET_CACHE_KIND, dataset_disk_key(name, config, split,
                                                  base_parameters, precision))]
    with diskcache.pinned(pins):
        workload = _load_workload_from_disk(name, disk_key)
        if workload is None:
            prepared = prepare_dataset(name, config, split, base_parameters,
                                       precision)
            with perf_section("workload.build"):
                workload = build_workload(prepared.instance,
                                          config=system_config,
                                          default_parameters=base_parameters,
                                          target_f1=target_f1,
                                          unlabelled_sample_period_seconds=(
                                              unlabelled_sample_period_seconds),
                                          activities=prepared.activities)
            _store_workload_to_disk(disk_key, name, workload)
    _WORKLOAD_CACHE[key_parts] = workload
    return workload


def _store_workload_to_disk(disk_key: str, name: str, workload) -> bool:
    try:
        arrays: Dict[str, np.ndarray] = {
            "semantic_samples": np.asarray(workload.semantic_samples,
                                           dtype=np.int64),
            "mse_samples": np.asarray(workload.mse_samples, dtype=np.int64),
            "uniform_samples": np.asarray(workload.uniform_samples,
                                          dtype=np.int64),
        }
        timeline_arrays, timeline_manifest = _timeline_to_payload(
            workload.timeline)
        arrays.update(timeline_arrays)
        manifest: Dict[str, object] = {
            "dataset": name,
            "workload_name": workload.name,
            "num_frames": int(workload.num_frames),
            "nominal_width": int(workload.nominal_resolution.width),
            "nominal_height": int(workload.nominal_resolution.height),
            "semantic_bytes": int(workload.semantic_bytes),
            "default_bytes": int(workload.default_bytes),
            "semantic_iframe_bytes": int(workload.semantic_iframe_bytes),
            "resized_frame_bytes": int(workload.resized_frame_bytes),
        }
        if timeline_manifest:
            manifest.update(timeline_manifest)
        diskcache.store(WORKLOAD_CACHE_KIND, disk_key, arrays, manifest)
        return True
    except OSError:
        return False


def _load_workload_from_disk(name: str, disk_key: str):
    from ..core.pipeline import VideoWorkload
    from ..perf import Stopwatch, get_recorder
    from ..video.frame import Resolution
    watch = Stopwatch().start()
    loaded = diskcache.load(WORKLOAD_CACHE_KIND, disk_key)
    if loaded is None:
        return None
    arrays, manifest = loaded
    try:
        workload = VideoWorkload(
            name=str(manifest["workload_name"]),
            num_frames=int(manifest["num_frames"]),
            nominal_resolution=Resolution(int(manifest["nominal_width"]),
                                          int(manifest["nominal_height"])),
            semantic_bytes=int(manifest["semantic_bytes"]),
            default_bytes=int(manifest["default_bytes"]),
            semantic_iframe_bytes=int(manifest["semantic_iframe_bytes"]),
            semantic_samples=[int(i) for i in arrays["semantic_samples"]],
            mse_samples=[int(i) for i in arrays["mse_samples"]],
            uniform_samples=[int(i) for i in arrays["uniform_samples"]],
            resized_frame_bytes=int(manifest["resized_frame_bytes"]),
            timeline=_timeline_from_payload(arrays, manifest),
        )
    except Exception:
        diskcache.evict(WORKLOAD_CACHE_KIND, disk_key)
        return None
    get_recorder().add_section_time("workload.disk_hit", watch.stop())
    return workload


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table (what the benchmarks print)."""
    rows = list(rows)
    header = " | ".join(f"{column:>18}" for column in columns)
    separator = "-+-".join("-" * 18 for _ in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(separator)
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
