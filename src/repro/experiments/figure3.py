"""Figure 3: per-frame accuracy vs. percentage of sampled frames.

For every labelled dataset the paper sweeps the sampling budget from 0.5 % to
3.5 % of the frames and reports per-frame object-label accuracy for SiEVE,
SIFT matching and MSE differencing.  SiEVE's points come from different
(GOP, scenecut) configurations; the baselines' thresholds are tuned to match
each SiEVE sampling rate.

Expected shape (paper): SiEVE dominates both baselines at every sampling
rate and exceeds 95 % accuracy by ~3.5 %; MSE beats SIFT on the
small-object datasets (coral reef, venice) and loses on jackson square.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..codec.gop import EncoderParameters, KeyframePlacer
from ..core.metrics import evaluate_sampling
from ..parallel.workloads import WorkloadBuilder
from ..vision.mse import MseChangeDetector
from ..vision.sift import SiftChangeDetector
from ..vision.similarity import (ThresholdSampler, score_video,
                                 threshold_for_sampling_fraction)
from .common import ExperimentConfig, PreparedDataset, format_table

#: SiEVE configurations swept to cover the 0.5 %-3.5 % sampling range: a
#: fine scenecut sweep at a large GOP plus the pure-GOP (scenecut-off)
#: configurations that give the smallest sampling rates.
DEFAULT_SIEVE_SWEEP: Sequence[EncoderParameters] = tuple(
    [EncoderParameters(gop_size=gop, scenecut_threshold=0.0)
     for gop in (200, 100)]
    + [EncoderParameters(gop_size=1000, scenecut_threshold=scenecut)
       for scenecut in (100.0, 150.0, 200.0, 225.0, 250.0, 300.0)]
)


@dataclass
class Figure3Point:
    """One point of one curve of Figure 3.

    Attributes:
        dataset: Dataset name.
        method: ``"sieve"``, ``"mse"`` or ``"sift"``.
        sampling_fraction: Fraction of frames sampled.
        accuracy: Per-frame label accuracy.
    """

    dataset: str
    method: str
    sampling_fraction: float
    accuracy: float

    def as_dict(self) -> Dict[str, object]:
        """Dictionary view used by the table formatter."""
        return {
            "dataset": self.dataset,
            "method": self.method,
            "sampling_pct": 100.0 * self.sampling_fraction,
            "accuracy": self.accuracy,
        }


def run_dataset(prepared: PreparedDataset,
                sieve_sweep: Sequence[EncoderParameters] = DEFAULT_SIEVE_SWEEP,
                include_sift: bool = True) -> List[Figure3Point]:
    """Produce the Figure 3 curves for one prepared dataset."""
    video = prepared.video
    timeline = prepared.timeline
    points: List[Figure3Point] = []

    # --- SiEVE: one point per encoder configuration -----------------------
    sieve_fractions: List[float] = []
    for parameters in sieve_sweep:
        keyframes = KeyframePlacer(parameters).keyframe_indices(prepared.activities)
        score = evaluate_sampling(timeline, keyframes)
        sieve_fractions.append(score.sampling_fraction)
        points.append(Figure3Point(prepared.name, "sieve",
                                   score.sampling_fraction, score.accuracy))

    # --- Baselines: thresholds matched to SiEVE's sampling rates ----------
    detectors = {"mse": MseChangeDetector()}
    if include_sift:
        detectors["sift"] = SiftChangeDetector()
    for method, detector in detectors.items():
        scores = score_video(detector, video)
        for fraction in sieve_fractions:
            threshold = threshold_for_sampling_fraction(scores, fraction)
            samples = ThresholdSampler(threshold).sample(scores)
            score = evaluate_sampling(timeline, samples)
            points.append(Figure3Point(prepared.name, method,
                                       score.sampling_fraction, score.accuracy))
    return points


def run(config: ExperimentConfig = ExperimentConfig(),
        sieve_sweep: Sequence[EncoderParameters] = DEFAULT_SIEVE_SWEEP,
        include_sift: bool = True,
        prepared: Optional[Dict[str, PreparedDataset]] = None,
        build_workers: Optional[int] = None) -> List[Figure3Point]:
    """Run the Figure 3 sweep over every labelled dataset in ``config``.

    Dataset preparation (render + analysis pass) goes through the shared
    two-level cache via :class:`repro.parallel.WorkloadBuilder`; with
    ``build_workers > 1`` the per-dataset renders fan out across worker
    processes, producing identical prepared datasets.
    """
    builder = WorkloadBuilder(config, build_workers=build_workers)
    missing = [name for name in config.datasets
               if name not in (prepared or {})]
    built = builder.prepare_datasets(missing) if missing else {}
    points: List[Figure3Point] = []
    for name in config.datasets:
        dataset = (prepared or {}).get(name) or built[name]
        if dataset.timeline is None:
            continue
        points.extend(run_dataset(dataset, sieve_sweep, include_sift))
    return points


def summarize(points: Sequence[Figure3Point]) -> Dict[str, Dict[str, float]]:
    """Mean accuracy per (dataset, method) — the paper's "outperforms by X %"."""
    sums: Dict[tuple, List[float]] = {}
    for point in points:
        sums.setdefault((point.dataset, point.method), []).append(point.accuracy)
    summary: Dict[str, Dict[str, float]] = {}
    for (dataset, method), values in sums.items():
        summary.setdefault(dataset, {})[method] = sum(values) / len(values)
    return summary


def render(points: Sequence[Figure3Point]) -> str:
    """Format the Figure 3 points as a text table."""
    rows = [point.as_dict() for point in sorted(
        points, key=lambda p: (p.dataset, p.method, p.sampling_fraction))]
    return format_table(rows, ["dataset", "method", "sampling_pct", "accuracy"],
                        title="Figure 3: accuracy vs sampled frames")
