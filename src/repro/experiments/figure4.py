"""Figure 4: end-to-end throughput of the five deployment baselines.

The paper processes 20 hours of pre-recorded footage (5 videos) under five
deployments and reports frames per second as a function of how many videos
are processed (1, 3, 5).  This harness builds one workload per dataset
(semantic + default encodings, MSE threshold, uniform interval) and replays
the deployments through the calibrated 3-tier simulation.

Expected shape: the three semantic-encoding deployments beat uniform
sampling and MSE filtering; the 3-tier deployment (I-frame seeking on the
edge, NN in the cloud) is the fastest overall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..core.deployment import ALL_DEPLOYMENT_MODES, DeploymentMode
from ..core.pipeline import (DeploymentReport, EndToEndSimulation,
                             VideoWorkload)
from ..datasets.registry import ALL_DATASETS
from ..parallel.workloads import WorkloadBuilder
from .common import ExperimentConfig, format_table

#: The corpus sizes on Figure 4's x-axis.
DEFAULT_VIDEO_COUNTS: Sequence[int] = (1, 3, 5)


def build_workloads(config: ExperimentConfig = ExperimentConfig(),
                    dataset_names: Sequence[str] = ALL_DATASETS,
                    system_config: Optional[SystemConfig] = None,
                    build_workers: Optional[int] = None
                    ) -> List[VideoWorkload]:
    """Prepare the per-video workloads used by Figures 4 and 5.

    Workloads come from the shared two-level cache: rendered footage and
    the analysis pass are reused through the prepared-dataset cache, and the
    condensed workload itself (tuned parameters' encode sizes, per-method
    sample sets) is persisted under ``REPRO_CACHE_DIR`` — so warm repeat
    preparations (the Figure 5 harness, benchmark re-runs, a second pytest
    session) skip rendering, tuning and encoding entirely.

    With ``build_workers > 1`` (or ``system_config.build_workers > 1``)
    the per-dataset builds fan out across worker processes through
    :class:`repro.parallel.WorkloadBuilder`; the result (and every cache
    artifact) is identical to the serial build.
    """
    system_config = system_config or SystemConfig()
    builder = WorkloadBuilder(config, system_config,
                              build_workers=build_workers)
    return builder.build_workloads(dataset_names, split="full")


def run(workloads: Optional[List[VideoWorkload]] = None,
        config: ExperimentConfig = ExperimentConfig(),
        dataset_names: Sequence[str] = ALL_DATASETS,
        video_counts: Sequence[int] = DEFAULT_VIDEO_COUNTS,
        modes: Sequence[DeploymentMode] = ALL_DEPLOYMENT_MODES,
        system_config: Optional[SystemConfig] = None,
        num_edge_servers: int = 1,
        placement: str = "round-robin"
        ) -> Dict[DeploymentMode, Dict[int, DeploymentReport]]:
    """Run the Figure 4 sweep on the discrete-event fleet scheduler.

    The default single edge server reproduces the paper's testbed; larger
    ``num_edge_servers`` shard the corpus across a simulated fleet (the
    busy-time totals, and hence this figure's throughput metric, are
    schedule-invariant — the fleet effects show up in each report's
    ``fleet`` field).

    Returns:
        ``{mode: {num_videos: report}}``.
    """
    system_config = system_config or SystemConfig()
    if workloads is None:
        workloads = build_workloads(config, dataset_names, system_config)
    video_counts = [count for count in video_counts if count <= len(workloads)]
    simulation = EndToEndSimulation(workloads, system_config,
                                    num_edge_servers=num_edge_servers,
                                    placement=placement)
    results: Dict[DeploymentMode, Dict[int, DeploymentReport]] = {}
    for mode in modes:
        results[mode] = simulation.throughput_vs_corpus_size(mode, video_counts)
    return results


def as_rows(results: Dict[DeploymentMode, Dict[int, DeploymentReport]]
            ) -> List[Dict[str, object]]:
    """Flatten the Figure 4 results into table rows."""
    rows = []
    for mode, per_count in results.items():
        for count, report in sorted(per_count.items()):
            rows.append({
                "deployment": mode.label,
                "num_videos": count,
                "throughput_fps": report.throughput_fps,
                "frames": report.total_frames,
                "inference_frames": report.frames_for_inference,
            })
    return rows


def render(results: Dict[DeploymentMode, Dict[int, DeploymentReport]]) -> str:
    """Format the Figure 4 series as text."""
    return format_table(as_rows(results),
                        ["deployment", "num_videos", "throughput_fps", "frames",
                         "inference_frames"],
                        title="Figure 4: end-to-end throughput (fps)")
