"""Figure 5: data transferred camera->edge and edge->cloud.

For the same five deployments as Figure 4, the paper reports how many bytes
move from the cameras to the edge tier and from the edge to the cloud.  The
headline observations this harness reproduces:

* the semantically encoded video shipped camera->edge is slightly larger
  (~12 % in the paper) than the default encoding because it holds more
  I-frames;
* shipping only the resized I-frames cuts the edge->cloud volume by roughly
  an order of magnitude (7x in the paper) compared to shipping the full
  video;
* the MSE deployment ships noticeably more than the I-frame deployment
  (~2.5x in the paper) because its threshold passes more frames.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..core.deployment import ALL_DEPLOYMENT_MODES, DeploymentMode
from ..core.pipeline import DeploymentReport, EndToEndSimulation, VideoWorkload
from ..datasets.registry import ALL_DATASETS
from .common import ExperimentConfig, format_table
from .figure4 import build_workloads


def run(workloads: Optional[List[VideoWorkload]] = None,
        config: ExperimentConfig = ExperimentConfig(),
        dataset_names: Sequence[str] = ALL_DATASETS,
        modes: Sequence[DeploymentMode] = ALL_DEPLOYMENT_MODES,
        system_config: Optional[SystemConfig] = None,
        num_edge_servers: int = 1,
        placement: str = "round-robin",
        build_workers: Optional[int] = None
        ) -> Dict[DeploymentMode, DeploymentReport]:
    """Run the Figure 5 measurement (full corpus, every deployment).

    Runs on the discrete-event fleet scheduler; byte totals are placement-
    invariant, so this figure is unchanged by ``num_edge_servers``.
    Workload building honours ``build_workers`` (see
    :func:`repro.experiments.figure4.build_workloads`).
    """
    system_config = system_config or SystemConfig()
    if workloads is None:
        workloads = build_workloads(config, dataset_names, system_config,
                                    build_workers=build_workers)
    simulation = EndToEndSimulation(workloads, system_config,
                                    num_edge_servers=num_edge_servers,
                                    placement=placement)
    return {mode: simulation.run(mode) for mode in modes}


def as_rows(results: Dict[DeploymentMode, DeploymentReport]) -> List[Dict[str, object]]:
    """Flatten the Figure 5 results into table rows."""
    rows = []
    for mode, report in results.items():
        rows.append({
            "deployment": mode.label,
            "camera_edge_gb": report.camera_edge_bytes / 1e9,
            "edge_cloud_gb": report.edge_cloud_bytes / 1e9,
            "inference_frames": report.frames_for_inference,
        })
    return rows


def headline_ratios(results: Dict[DeploymentMode, DeploymentReport]) -> Dict[str, float]:
    """The three ratios the paper highlights in the Figure 5 discussion."""
    three_tier = results[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
    cloud_only = results[DeploymentMode.IFRAME_CLOUD_CLOUD_NN]
    mse = results[DeploymentMode.MSE_EDGE_CLOUD_NN]
    uniform = results[DeploymentMode.UNIFORM_EDGE_CLOUD_NN]
    ratios = {}
    if three_tier.edge_cloud_bytes > 0:
        ratios["full_video_over_iframes"] = (cloud_only.edge_cloud_bytes
                                             / three_tier.edge_cloud_bytes)
        ratios["mse_over_iframes"] = mse.edge_cloud_bytes / three_tier.edge_cloud_bytes
    if uniform.camera_edge_bytes > 0:
        ratios["semantic_over_default_camera_edge"] = (
            three_tier.camera_edge_bytes / uniform.camera_edge_bytes)
    return ratios


def render(results: Dict[DeploymentMode, DeploymentReport]) -> str:
    """Format the Figure 5 series as text."""
    table = format_table(as_rows(results),
                         ["deployment", "camera_edge_gb", "edge_cloud_gb",
                          "inference_frames"],
                         title="Figure 5: data transfer (GB)")
    ratios = headline_ratios(results)
    lines = [table, "", "Headline ratios:"]
    for key, value in sorted(ratios.items()):
        lines.append(f"  {key}: {value:.2f}x")
    return "\n".join(lines)
