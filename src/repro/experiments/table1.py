"""Table I: the dataset inventory.

This experiment does not measure anything; it regenerates the paper's dataset
table from the registry and verifies that the synthetic stand-ins expose the
same object classes and event structure the descriptions promise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datasets.registry import all_datasets
from ..parallel.workloads import WorkloadBuilder
from .common import ExperimentConfig, format_table


def run(config: ExperimentConfig = ExperimentConfig(),
        verify_synthetic: bool = False,
        build_workers: Optional[int] = None) -> List[Dict[str, object]]:
    """Regenerate Table I.

    Args:
        config: Footage scale used when ``verify_synthetic`` is on.
        verify_synthetic: Also render a short clip per dataset and report the
            labels its ground truth actually contains.  The clips come from
            the shared prepared-dataset cache (split ``"full"``, the same
            artifacts Figures 4/5 render), so a warm ``REPRO_CACHE_DIR``
            skips the renders; ``build_workers > 1`` fans cold renders out
            across worker processes.
        build_workers: Worker processes for the synthetic verification.

    Returns:
        One row per dataset with the paper's columns (plus synthetic-check
        columns when requested).
    """
    specs = list(all_datasets())
    prepared = {}
    if verify_synthetic:
        builder = WorkloadBuilder(config, build_workers=build_workers)
        prepared = builder.prepare_datasets([spec.name for spec in specs],
                                            split="full")
    rows: List[Dict[str, object]] = []
    for spec in specs:
        row: Dict[str, object] = {
            "dataset": spec.name,
            "objects": ", ".join(spec.objects),
            "resolution": str(spec.nominal_resolution),
            "fps": spec.fps,
            "duration_hours": spec.paper_duration_hours,
            "labels": "Yes" if spec.has_labels else "No",
            "description": spec.description,
        }
        if verify_synthetic:
            timeline = prepared[spec.name].timeline
            observed = sorted(timeline.object_labels)
            row["synthetic_labels"] = ", ".join(observed)
            row["synthetic_events"] = timeline.num_events
        rows.append(row)
    return rows


def render(rows: List[Dict[str, object]]) -> str:
    """Format the Table I rows as text."""
    columns = ["dataset", "objects", "resolution", "fps", "duration_hours", "labels"]
    if rows and "synthetic_events" in rows[0]:
        columns += ["synthetic_labels", "synthetic_events"]
    return format_table(rows, columns, title="Table I: datasets")
