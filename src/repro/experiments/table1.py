"""Table I: the dataset inventory.

This experiment does not measure anything; it regenerates the paper's dataset
table from the registry and verifies that the synthetic stand-ins expose the
same object classes and event structure the descriptions promise.
"""

from __future__ import annotations

from typing import Dict, List

from ..datasets.generator import build_dataset
from ..datasets.registry import all_datasets
from .common import ExperimentConfig, format_table


def run(config: ExperimentConfig = ExperimentConfig(),
        verify_synthetic: bool = False) -> List[Dict[str, object]]:
    """Regenerate Table I.

    Args:
        config: Footage scale used when ``verify_synthetic`` is on.
        verify_synthetic: Also render a short clip per dataset and report the
            labels its ground truth actually contains.

    Returns:
        One row per dataset with the paper's columns (plus synthetic-check
        columns when requested).
    """
    rows: List[Dict[str, object]] = []
    for spec in all_datasets():
        row: Dict[str, object] = {
            "dataset": spec.name,
            "objects": ", ".join(spec.objects),
            "resolution": str(spec.nominal_resolution),
            "fps": spec.fps,
            "duration_hours": spec.paper_duration_hours,
            "labels": "Yes" if spec.has_labels else "No",
            "description": spec.description,
        }
        if verify_synthetic:
            instance = build_dataset(spec.name,
                                     duration_seconds=config.duration_seconds,
                                     render_scale=config.render_scale)
            observed = sorted(instance.timeline.object_labels)
            row["synthetic_labels"] = ", ".join(observed)
            row["synthetic_events"] = instance.timeline.num_events
        rows.append(row)
    return rows


def render(rows: List[Dict[str, object]]) -> str:
    """Format the Table I rows as text."""
    columns = ["dataset", "objects", "resolution", "fps", "duration_hours", "labels"]
    if rows and "synthetic_events" in rows[0]:
        columns += ["synthetic_labels", "synthetic_events"]
    return format_table(rows, columns, title="Table I: datasets")
