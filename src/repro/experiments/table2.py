"""Table II: semantic vs. default encoder parameters.

For every labelled dataset the paper compares the tuned ("semantic") encoder
configuration against x264's defaults (GOP=250, scenecut=40) in terms of
per-frame accuracy, sample size (SS) and F1 score, with parameters tuned on
the first half of the footage and evaluated on the second half.

Expected shape: the semantic configuration reaches >95 % accuracy at a
1-3.5 % sample size and a higher F1 than the default configuration, whose
accuracy collapses because its I-frames land wherever the GOP boundary
happens to fall rather than at event starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters, KeyframePlacer
from ..core.metrics import evaluate_sampling
from ..core.tuner import SemanticEncoderTuner, TuningGrid
from ..parallel.workloads import WorkloadBuilder
from .common import ExperimentConfig, PreparedDataset, format_table


@dataclass
class Table2Row:
    """One dataset row of Table II.

    Attributes:
        dataset: Dataset name.
        semantic_parameters: The tuned configuration.
        semantic_accuracy: Accuracy of the tuned configuration on the test clip.
        semantic_sampling: Sample size (SS) of the tuned configuration.
        semantic_f1: F1 of the tuned configuration.
        default_accuracy: Accuracy of the default configuration.
        default_sampling: Sample size of the default configuration.
        default_f1: F1 of the default configuration.
    """

    dataset: str
    semantic_parameters: EncoderParameters
    semantic_accuracy: float
    semantic_sampling: float
    semantic_f1: float
    default_accuracy: float
    default_sampling: float
    default_f1: float

    def as_dict(self) -> Dict[str, object]:
        """Dictionary view used by the table formatter."""
        return {
            "dataset": self.dataset,
            "tuned_params": self.semantic_parameters.describe(),
            "sem_acc": self.semantic_accuracy,
            "sem_ss_pct": 100.0 * self.semantic_sampling,
            "sem_f1": self.semantic_f1,
            "def_acc": self.default_accuracy,
            "def_ss_pct": 100.0 * self.default_sampling,
            "def_f1": self.default_f1,
        }


def run_dataset(train: PreparedDataset, test: PreparedDataset,
                grid: Optional[TuningGrid] = None,
                default_parameters: EncoderParameters = DEFAULT_PARAMETERS
                ) -> Table2Row:
    """Produce one Table II row: tune on ``train``, evaluate on ``test``."""
    tuner = SemanticEncoderTuner(grid or TuningGrid())
    tuning = tuner.tune_from_activities(train.activities, train.timeline, train.name)
    semantic_parameters = tuning.best_parameters

    semantic_keyframes = KeyframePlacer(semantic_parameters).keyframe_indices(
        test.activities)
    default_keyframes = KeyframePlacer(default_parameters).keyframe_indices(
        test.activities)
    semantic_score = evaluate_sampling(test.timeline, semantic_keyframes)
    default_score = evaluate_sampling(test.timeline, default_keyframes)
    return Table2Row(
        dataset=test.name,
        semantic_parameters=semantic_parameters,
        semantic_accuracy=semantic_score.accuracy,
        semantic_sampling=semantic_score.sampling_fraction,
        semantic_f1=semantic_score.f1,
        default_accuracy=default_score.accuracy,
        default_sampling=default_score.sampling_fraction,
        default_f1=default_score.f1,
    )


def run(config: ExperimentConfig = ExperimentConfig(),
        grid: Optional[TuningGrid] = None,
        build_workers: Optional[int] = None) -> List[Table2Row]:
    """Run Table II over every labelled dataset in ``config``.

    The train/test clips of every dataset are independent cache entries,
    so with ``build_workers > 1`` the whole ``datasets x splits`` matrix
    renders concurrently through :class:`repro.parallel.WorkloadBuilder`.
    """
    builder = WorkloadBuilder(config, build_workers=build_workers)
    matrix = builder.prepare_dataset_splits(config.datasets,
                                            splits=("train", "test"))
    rows: List[Table2Row] = []
    for name in config.datasets:
        train = matrix[(name, "train")]
        test = matrix[(name, "test")]
        if train.timeline is None or test.timeline is None:
            continue
        rows.append(run_dataset(train, test, grid))
    return rows


def render(rows: List[Table2Row]) -> str:
    """Format Table II as text."""
    return format_table([row.as_dict() for row in rows],
                        ["dataset", "tuned_params", "sem_acc", "sem_ss_pct",
                         "sem_f1", "def_acc", "def_ss_pct", "def_f1"],
                        title="Table II: semantic vs default encoder parameters")
