"""Table III: speed of event detection (frames per second).

The paper measures how many frames per second each event-detection front end
sustains: SiEVE (I-frame seeking on metadata), MSE and SIFT (full decode of
every frame plus the similarity computation).  The measured hardware is not
available here, so the primary numbers come from the calibrated cost model
evaluated at each dataset's *nominal* resolution; the experiment also
measures the wall-clock throughput of this library's own implementations on
a short clip, which preserves the same ordering (seeking is orders of
magnitude cheaper than decode-based filtering).

Expected shape: SiEVE is ~100-170x faster than MSE and SIFT on every
dataset, with absolute fps decreasing as resolution grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.costmodel import CostModel
from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters
from ..codec.iframe_seeker import IFrameSeeker
from ..datasets.registry import get_dataset, labelled_datasets
from ..parallel.workloads import WorkloadBuilder
from ..vision.mse import MseChangeDetector
from ..vision.sift import SiftChangeDetector
from ..vision.similarity import score_video
from .common import ExperimentConfig, format_table, prepare_dataset


@dataclass
class Table3Row:
    """One dataset row of Table III.

    Attributes:
        dataset: Dataset name.
        sieve_fps: Simulated SiEVE (I-frame seeking) throughput.
        mse_fps: Simulated decode+MSE throughput.
        sift_fps: Simulated decode+SIFT throughput.
        sieve_speedup_vs_mse: Ratio of the two.
        sieve_speedup_vs_sift: Ratio of the two.
        measured_sieve_fps: Wall-clock seeking throughput of this library.
        measured_mse_fps: Wall-clock MSE throughput of this library.
        measured_sift_fps: Wall-clock SIFT throughput of this library.
    """

    dataset: str
    sieve_fps: float
    mse_fps: float
    sift_fps: float
    sieve_speedup_vs_mse: float
    sieve_speedup_vs_sift: float
    measured_sieve_fps: Optional[float] = None
    measured_mse_fps: Optional[float] = None
    measured_sift_fps: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Dictionary view used by the table formatter."""
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "sieve_fps": self.sieve_fps,
            "mse_fps": self.mse_fps,
            "sift_fps": self.sift_fps,
            "speedup_vs_mse": self.sieve_speedup_vs_mse,
            "speedup_vs_sift": self.sieve_speedup_vs_sift,
        }
        if self.measured_sieve_fps is not None:
            row.update({
                "measured_sieve_fps": self.measured_sieve_fps,
                "measured_mse_fps": self.measured_mse_fps,
                "measured_sift_fps": self.measured_sift_fps,
            })
        return row


def simulated_row(dataset_name: str, cost_model: Optional[CostModel] = None
                  ) -> Table3Row:
    """Build one Table III row from the calibrated cost model."""
    cost_model = cost_model or CostModel()
    spec = get_dataset(dataset_name)
    resolution = spec.nominal_resolution
    sieve = cost_model.event_detection_fps("sieve", resolution)
    mse = cost_model.event_detection_fps("mse", resolution)
    sift = cost_model.event_detection_fps("sift", resolution)
    return Table3Row(dataset=dataset_name, sieve_fps=sieve, mse_fps=mse,
                     sift_fps=sift, sieve_speedup_vs_mse=sieve / mse,
                     sieve_speedup_vs_sift=sieve / sift)


def measured_row(row: Table3Row, config: ExperimentConfig) -> Table3Row:
    """Augment a simulated row with wall-clock measurements of this library."""
    prepared = prepare_dataset(row.dataset, config)
    video = prepared.video
    num_frames = video.metadata.num_frames

    encoded = VideoEncoder(EncoderParameters()).encode(
        video, activities=prepared.activities, materialise_payload=False)
    serialized = encoded.serialize()
    seeker = IFrameSeeker()
    start = time.perf_counter()
    seeker.seek_serialized(serialized)
    seek_elapsed = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    score_video(MseChangeDetector(), video)
    mse_elapsed = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    score_video(SiftChangeDetector(), video)
    sift_elapsed = max(time.perf_counter() - start, 1e-9)

    row.measured_sieve_fps = num_frames / seek_elapsed
    row.measured_mse_fps = num_frames / mse_elapsed
    row.measured_sift_fps = num_frames / sift_elapsed
    return row


def run(config: ExperimentConfig = ExperimentConfig(),
        measure_wallclock: bool = False,
        build_workers: Optional[int] = None) -> List[Table3Row]:
    """Run Table III over the labelled datasets.

    The wall-clock measurements run on cached prepared clips; a cold cache
    renders them through :class:`repro.parallel.WorkloadBuilder`, fanning
    out across processes when ``build_workers > 1``.
    """
    rows = []
    names = list(config.datasets or
                 [spec.name for spec in labelled_datasets()])
    if measure_wallclock:
        # Warm the prepared-dataset cache for every measured clip up front
        # (in parallel when asked); measured_row then hits the cache.
        WorkloadBuilder(config,
                        build_workers=build_workers).prepare_datasets(names)
    for name in names:
        row = simulated_row(name)
        if measure_wallclock:
            row = measured_row(row, config)
        rows.append(row)
    return rows


def render(rows: List[Table3Row]) -> str:
    """Format Table III as text."""
    columns = ["dataset", "sieve_fps", "mse_fps", "sift_fps",
               "speedup_vs_mse", "speedup_vs_sift"]
    if rows and rows[0].measured_sieve_fps is not None:
        columns += ["measured_sieve_fps", "measured_mse_fps", "measured_sift_fps"]
    return format_table([row.as_dict() for row in rows], columns,
                        title="Table III: event-detection speed (fps)")
