"""Deterministic fault injection and self-healing.

The fault plane is strictly opt-in: nothing in this package runs unless
a :class:`FaultPlan` (or a :class:`ResilienceConfig`) is handed to the
service or the fleet orchestrator, and the injection hooks those
components expose are no-ops by default — the fault-free pipeline stays
bit-identical to the seed (the standing bitwise-stability contract).

Public surface:

* :class:`FaultPlan` and its specs (:class:`EdgeCrash`,
  :class:`WanDegradation`, :class:`StreamStall`, :class:`WorkerKill`,
  :class:`CacheCorruption`) — composable, seeded, replayable.
* :class:`RetryPolicy` — the one backoff/budget policy every retry
  loop shares.
* :class:`CircuitBreaker` / :class:`BreakerState` — per-edge load
  shedding.
* :class:`ResilienceConfig` — the service's self-healing knobs.
* :class:`FaultStats` / :class:`RecoveryTrace` — recovery accounting
  and the deterministic trace the chaos soak diffs.
"""

from .breaker import BreakerState, CircuitBreaker
from .injector import FleetFaultDriver, ResilienceConfig, ServiceFaultDriver
from .plan import (CACHE_CORRUPTION_MODES, CacheCorruption, EdgeCrash,
                   FaultPlan, FaultSpec, StreamStall, WanDegradation,
                   WorkerKill, apply_cache_corruption)
from .retry import RetryPolicy
from .stats import FaultStats, RecoveryTrace, TraceEvent

__all__ = [
    "BreakerState", "CircuitBreaker", "FleetFaultDriver",
    "ResilienceConfig", "ServiceFaultDriver", "CACHE_CORRUPTION_MODES",
    "CacheCorruption", "EdgeCrash", "FaultPlan", "FaultSpec",
    "StreamStall", "WanDegradation", "WorkerKill",
    "apply_cache_corruption", "RetryPolicy", "FaultStats",
    "RecoveryTrace", "TraceEvent",
]
