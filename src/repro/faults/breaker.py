"""Per-edge circuit breakers.

A :class:`CircuitBreaker` guards one edge server: after
``failure_threshold`` *consecutive* failures it opens and sheds load
(pushes bounce as backpressure instead of queueing onto a sick edge);
after ``cooldown_seconds`` it half-opens and admits exactly one probe.
A success closes it, a failure re-opens it and restarts the cooldown.

Time is whatever clock the caller passes in (virtual seconds here), so
breaker transitions are part of the deterministic event sequence and
show up identically in same-seed recovery traces.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..errors import FaultError


class BreakerState(enum.Enum):
    """The classic three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    Attributes:
        state: Current :class:`BreakerState`.
        consecutive_failures: Failures since the last success.
        opened_at: Time of the most recent open (``nan`` before any).
        opens: CLOSED/HALF_OPEN -> OPEN transitions seen.
    """

    def __init__(self, name: str = "", failure_threshold: int = 3,
                 cooldown_seconds: float = 5.0,
                 on_open: Optional[Callable[[], None]] = None) -> None:
        if failure_threshold < 1:
            raise FaultError("failure_threshold must be >= 1")
        if cooldown_seconds <= 0.0:
            raise FaultError("cooldown_seconds must be > 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("nan")
        self.opens = 0
        self._on_open = on_open
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """Whether a request may proceed at ``now``.

        An OPEN breaker past its cooldown half-opens and admits exactly
        one probe; further requests bounce until the probe settles.
        Callers must only invoke this when the request will actually be
        issued on ``True`` (the probe slot is claimed by this call).
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at < self.cooldown_seconds:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_in_flight = False
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self, now: float = 0.0) -> None:
        """A request succeeded: close and reset."""
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        """A request failed; may trip the breaker."""
        self.consecutive_failures += 1
        if (self.state is BreakerState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.trip(now)

    def trip(self, now: float) -> None:
        """Force the breaker open (e.g. the edge is known dead).

        Re-tripping an already-open breaker restarts its cooldown but
        does not count another open.
        """
        if self.state is not BreakerState.OPEN:
            self.opens += 1
            if self._on_open is not None:
                self._on_open()
        self.state = BreakerState.OPEN
        self.opened_at = now
        self._probe_in_flight = False
