"""Fault-plan drivers: inject faults, orchestrate recovery.

Two drivers replay a :class:`~repro.faults.plan.FaultPlan` through the
shared event scheduler and run the self-healing machinery around it:

* :class:`ServiceFaultDriver` rides on a live
  :class:`~repro.service.service.StreamingService`: edge crashes pause
  the edge's station and uplink and fail out its in-flight chunks,
  sessions are failed over to healthy edges, a per-edge
  :class:`~repro.faults.breaker.CircuitBreaker` sheds pushes while an
  edge is sick, and an optional stall watchdog closes sessions that
  stop making progress.
* :class:`FleetFaultDriver` does the batch equivalent for
  :class:`~repro.cluster.fleet.FleetOrchestrator`: unfinished
  :class:`CameraJob` pipelines are re-placed off a crashed edge and
  their failed stage submissions requeued, deterministically.

Neither driver exists on the fault-free path — services and
orchestrators built without a plan never construct one, so the default
pipeline stays bit-identical to the seed.  With a driver installed, all
injection and recovery happens as ordinary events on the one scheduler
heap, which is what makes recovery traces reproducible under any clock
driver (the chaos-soak contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import FaultError
from .breaker import CircuitBreaker
from .plan import EdgeCrash, FaultPlan, StreamStall, WanDegradation
from .stats import FaultStats, RecoveryTrace

if TYPE_CHECKING:  # pragma: no cover - typing only; see the import note below.
    from ..cluster.fleet import JobOutcome
    from ..service.service import StreamingService
    from ..service.session import StreamSession


def _closed(session) -> bool:
    """Whether a session is CLOSED.

    ``repro.service.service`` imports this module at its top level, so
    importing :class:`SessionState` here eagerly would deadlock the
    package initialisation; comparing the enum value is cycle-free.
    """
    return session.state.value == "closed"


@dataclass(frozen=True)
class ResilienceConfig:
    """Self-healing knobs of the streaming service.

    Attributes:
        breaker_failure_threshold: Consecutive failures that open an
            edge's circuit breaker.
        breaker_cooldown_seconds: OPEN -> HALF_OPEN cooldown.
        stall_timeout_seconds: A session making no progress (no accepted
            push, no completion) for longer than this is closed with
            reason ``"stalled"`` and requeued to the client.  ``None``
            (the default) disables the watchdog.  Must exceed the
            feeders' push cadence or healthy-but-slow streams get reaped.
        watchdog_period_seconds: How often the stall watchdog scans.
    """

    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 5.0
    stall_timeout_seconds: Optional[float] = None
    watchdog_period_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise FaultError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_seconds <= 0.0:
            raise FaultError("breaker_cooldown_seconds must be > 0")
        if (self.stall_timeout_seconds is not None
                and self.stall_timeout_seconds <= 0.0):
            raise FaultError("stall_timeout_seconds must be > 0 or None")
        if self.watchdog_period_seconds <= 0.0:
            raise FaultError("watchdog_period_seconds must be > 0")


class ServiceFaultDriver:
    """Injects a :class:`FaultPlan` into a live streaming service.

    Built by :class:`StreamingService` when ``faults`` or ``resilience``
    is passed; schedules every spec of the plan as control events in its
    constructor (the service clock is still at 0 then), and exposes the
    hooks the service pipeline calls back into.

    Attributes:
        stats: Fault/recovery counters (folded into reports).
        trace: The deterministic :class:`RecoveryTrace` CI diffs.
        edge_online: Per-edge liveness (permanent crashes clear it).
        breakers: Per-edge :class:`CircuitBreaker`.
    """

    def __init__(self, service: "StreamingService", plan: FaultPlan,
                 resilience: ResilienceConfig) -> None:
        plan.validate_for(service.num_edge_servers)
        self.service = service
        self.plan = plan
        self.resilience = resilience
        self.stats = FaultStats()
        self.trace = RecoveryTrace()
        self.edge_online: List[bool] = [True] * service.num_edge_servers
        self.breakers: Dict[int, CircuitBreaker] = {
            index: CircuitBreaker(
                name=f"edge:{index}",
                failure_threshold=resilience.breaker_failure_threshold,
                cooldown_seconds=resilience.breaker_cooldown_seconds,
                on_open=lambda index=index: self._breaker_opened(index))
            for index in range(service.num_edge_servers)}
        self._failover_counter = 0
        self._stalled: set = set()
        for crash in plan.edge_crashes:
            service.at(crash.at_seconds,
                       lambda spec=crash: self._crash(spec))
        for window in plan.wan_degradations:
            service.at(window.at_seconds,
                       lambda spec=window: self._wan_down(spec))
        for stall in plan.stream_stalls:
            service.at(stall.at_seconds,
                       lambda spec=stall: self._stall(spec))
        if resilience.stall_timeout_seconds is not None:
            service.after(resilience.watchdog_period_seconds,
                          self._watchdog_tick)

    # ------------------------------------------------------------------ #
    # Hooks the service pipeline calls
    # ------------------------------------------------------------------ #
    def push_refusal(self, edge_index: int) -> Optional[str]:
        """Why a push to ``edge_index`` must bounce (``None`` = admit).

        Consulted *last* in ``push_frames`` so that a granted half-open
        breaker probe is always followed by an actual submission.
        """
        if not self.edge_online[edge_index]:
            self.stats.breaker_rejections += 1
            return f"edge {edge_index} is offline"
        breaker = self.breakers[edge_index]
        if not breaker.allow(self.service.scheduler.now):
            self.stats.breaker_rejections += 1
            return f"edge {edge_index} breaker is {breaker.state.value}"
        return None

    def on_chunk_complete(self, run) -> None:
        """A chunk finished: its edge's breaker sees a success."""
        self.breakers[run.session.edge_index].record_success(
            self.service.scheduler.now)

    def on_chunk_failed(self, run, reason: str) -> None:
        """A stage submission was failed out; requeue it (or drop).

        Each stage entry re-reads ``session.edge_index``, so requeueing
        after a failover automatically lands on the session's new edge.
        The drop branch only triggers when no healthy edge remained —
        unreachable for plans that pass ``validate_for``, kept so a
        hand-built pathological plan degrades to accounting, not a hang.
        """
        now = self.service.scheduler.now
        session = run.session
        if not self.edge_online[session.edge_index]:
            self.stats.chunks_dropped += 1
            self.trace.record(now, "chunk-dropped",
                              f"camera={session.camera} stage={run.stage}")
            self.service.ingest.on_chunk_failed(session)
            return
        self.stats.chunks_failed_over += 1
        self.trace.record(
            now, "chunk-requeued",
            f"camera={session.camera} stage={run.stage} "
            f"edge={session.edge_index} reason={reason}")
        self.service._resubmit_stage(run)

    def on_session_degraded(self, session: "StreamSession") -> None:
        """An admission was shed to the degraded tenant tier."""
        self.trace.record(self.service.scheduler.now, "session-degraded",
                          f"camera={session.camera} tenant={session.tenant}")

    # ------------------------------------------------------------------ #
    # Injected events
    # ------------------------------------------------------------------ #
    def _breaker_opened(self, index: int) -> None:
        self.stats.breaker_opens += 1
        self.trace.record(self.service.scheduler.now, "breaker-open",
                          f"edge={index}")

    def _crash(self, spec: EdgeCrash) -> None:
        index = spec.edge_index
        if not self.edge_online[index]:
            return  # already permanently down; a second crash is moot
        now = self.service.scheduler.now
        self.stats.crashes_seen += 1
        mode = ("permanent" if spec.permanent
                else f"restart={spec.restart_after_seconds:.6f}")
        self.trace.record(now, "edge-crash", f"edge={index} {mode}")
        station = self.service.edge_stations[index]
        wan = self.service.wan_links[index]
        # Pause BEFORE failing: requeued work must not start on the dead
        # edge within the same event.
        station.pause()
        wan.pause()
        self.breakers[index].trip(now)
        if spec.permanent:
            self.edge_online[index] = False
            self._relocate_sessions(index)
        else:
            self.service.after(spec.restart_after_seconds,
                               lambda: self._restart(index))
        # on_fail hooks fire here: permanent crashes requeue onto the
        # failed-over edges, transient ones back onto the paused station
        # (they wait for the restart).
        station.fail_all("edge-crash")
        wan.fail_all("edge-crash")

    def _restart(self, index: int) -> None:
        if not self.edge_online[index]:
            return  # a permanent crash landed during the outage
        now = self.service.scheduler.now
        self.stats.edges_restarted += 1
        self.trace.record(now, "edge-restart", f"edge={index}")
        self.service.edge_stations[index].resume()
        self.service.wan_links[index].resume()

    def _relocate_sessions(self, dead: int) -> None:
        now = self.service.scheduler.now
        for session in self.service.ingest.sessions.values():
            if session.edge_index != dead or _closed(session):
                continue
            target = self._pick_healthy()
            if target is None:  # pragma: no cover - validate_for forbids it
                self.trace.record(now, "session-lost",
                                  f"camera={session.camera}")
                self.service.ingest.close_session(session.session_id,
                                                  reason="edge-lost")
                continue
            session.edge_index = target
            self.stats.sessions_relocated += 1
            self.trace.record(now, "session-failover",
                              f"camera={session.camera} "
                              f"edge={dead}->{target}")

    def _pick_healthy(self) -> Optional[int]:
        """Next failover target, round-robin over the healthy edges."""
        for _ in range(len(self.edge_online)):
            candidate = self._failover_counter % len(self.edge_online)
            self._failover_counter += 1
            if self.edge_online[candidate]:
                return candidate
        return None

    def _wan_down(self, spec: WanDegradation) -> None:
        now = self.service.scheduler.now
        index = spec.edge_index
        self.stats.wan_partitions += 1
        wan = self.service.wan_links[index]
        if spec.partition:
            self.trace.record(now, "wan-partition",
                              f"edge={index} "
                              f"duration={spec.duration_seconds:.6f}")
            wan.pause()
        else:
            self.trace.record(now, "wan-degraded",
                              f"edge={index} "
                              f"factor={spec.bandwidth_factor:.6f}")
            wan.set_slowdown(1.0 / spec.bandwidth_factor)
        self.service.after(spec.duration_seconds,
                           lambda: self._wan_up(spec))

    def _wan_up(self, spec: WanDegradation) -> None:
        now = self.service.scheduler.now
        index = spec.edge_index
        wan = self.service.wan_links[index]
        if not spec.partition:
            self.trace.record(now, "wan-restore", f"edge={index}")
            wan.set_slowdown(1.0)
            return
        # Don't lift a partition on an edge that is itself down — the
        # crash owns the uplink's pause (its restart resumes it).
        if self.edge_online[index] and self.service.edge_stations[index].online:
            self.trace.record(now, "wan-restore", f"edge={index}")
            wan.resume()
        else:
            self.trace.record(now, "wan-restore-skipped",
                              f"edge={index} edge-down")

    def _stall(self, spec: StreamStall) -> None:
        now = self.service.scheduler.now
        lan = self.service.lan_links.get(spec.camera)
        if lan is None:
            self.trace.record(now, "stream-stall-skipped",
                              f"camera={spec.camera} no-session")
            return
        self.stats.stream_stalls += 1
        self.trace.record(now, "stream-stall",
                          f"camera={spec.camera} "
                          f"duration={spec.duration_seconds:.6f}")
        lan.pause()
        self.service.after(spec.duration_seconds,
                           lambda: self._unstall(spec))

    def _unstall(self, spec: StreamStall) -> None:
        lan = self.service.lan_links.get(spec.camera)
        if lan is not None:
            self.trace.record(self.service.scheduler.now, "stream-resume",
                              f"camera={spec.camera}")
            lan.resume()

    # ------------------------------------------------------------------ #
    # Stall watchdog
    # ------------------------------------------------------------------ #
    def _watchdog_tick(self) -> None:
        """Close sessions that stopped making progress; rearm while any
        session is still live (so the watchdog dies with its sessions
        and a ``drain()`` can terminate)."""
        now = self.service.scheduler.now
        timeout = self.resilience.stall_timeout_seconds
        live = False
        for session in list(self.service.ingest.sessions.values()):
            if _closed(session):
                continue
            live = True
            if session.session_id in self._stalled:
                continue
            idle = now - session.last_progress()
            if idle > timeout:
                self._stalled.add(session.session_id)
                self.stats.sessions_stalled += 1
                self.trace.record(now, "session-stalled",
                                  f"camera={session.camera} "
                                  f"idle={idle:.6f}")
                self.service.ingest.close_session(session.session_id,
                                                  reason="stalled")
        if live:
            self.service.after(self.resilience.watchdog_period_seconds,
                               self._watchdog_tick)


class FleetFaultDriver:
    """Batch-fleet counterpart of :class:`ServiceFaultDriver`.

    Injects edge crashes and WAN degradation windows into a
    :class:`~repro.cluster.fleet.FleetOrchestrator` run and fails
    unfinished camera jobs over to healthy edges.  Stream stalls target
    live sessions and worker kills target the process pool, so both are
    ignored here (the service and parallel paths own them).
    """

    def __init__(self, scheduler, plan: FaultPlan, num_edge_servers: int,
                 lan_links, edge_stations, wan_links) -> None:
        plan.validate_for(num_edge_servers)
        self.scheduler = scheduler
        self.plan = plan
        self.stats = FaultStats()
        self.trace = RecoveryTrace()
        self.edge_online: List[bool] = [True] * num_edge_servers
        self.lan_links = lan_links
        self.edge_stations = edge_stations
        self.wan_links = wan_links
        self.runs: List[object] = []
        self._failover_counter = 0
        for crash in plan.edge_crashes:
            scheduler.schedule_at(crash.at_seconds,
                                  lambda spec=crash: self._crash(spec))
        for window in plan.wan_degradations:
            scheduler.schedule_at(window.at_seconds,
                                  lambda spec=window: self._wan_down(spec))

    def register(self, run) -> None:
        """Track a job run so crashes can re-place it."""
        self.runs.append(run)

    def on_job_failed(self, run, reason: str) -> None:
        """A stage submission was failed out; requeue it on the job's
        (already failed-over) edge."""
        outcome = run.outcome
        self.stats.chunks_failed_over += 1
        self.trace.record(
            self.scheduler.now, "job-requeued",
            f"camera={outcome.job.camera} stage={run.stage} "
            f"edge={outcome.edge_index} reason={reason}")
        run.reenter[run.stage](run)

    def _crash(self, spec: EdgeCrash) -> None:
        index = spec.edge_index
        if not self.edge_online[index]:
            return
        now = self.scheduler.now
        self.stats.crashes_seen += 1
        mode = ("permanent" if spec.permanent
                else f"restart={spec.restart_after_seconds:.6f}")
        self.trace.record(now, "edge-crash", f"edge={index} {mode}")
        lan = self.lan_links[index]
        station = self.edge_stations[index]
        wan = self.wan_links[index]
        for resource in (lan, station, wan):
            resource.pause()
        if spec.permanent:
            self.edge_online[index] = False
            # Re-place every unfinished job on the dead edge, including
            # ones whose ingest has not even fired yet: each stage entry
            # re-reads ``outcome.edge_index``, so pending events follow.
            for run in self.runs:
                outcome = run.outcome
                if (outcome.edge_index != index
                        or outcome.end_seconds == outcome.end_seconds):
                    continue
                target = self._pick_healthy()
                outcome.edge_index = target
                self.stats.jobs_failed_over += 1
                self.trace.record(now, "job-failover",
                                  f"camera={outcome.job.camera} "
                                  f"edge={index}->{target}")
        else:
            self.scheduler.schedule(spec.restart_after_seconds,
                                    lambda: self._restart(index))
        # In-flight work fails here and requeues via on_job_failed —
        # onto the failed-over edge (permanent) or back onto the paused
        # stations to wait for the restart (transient).
        for resource in (lan, station, wan):
            resource.fail_all("edge-crash")

    def _restart(self, index: int) -> None:
        if not self.edge_online[index]:
            return
        now = self.scheduler.now
        self.stats.edges_restarted += 1
        self.trace.record(now, "edge-restart", f"edge={index}")
        for resource in (self.lan_links[index], self.edge_stations[index],
                         self.wan_links[index]):
            resource.resume()

    def _pick_healthy(self) -> int:
        """Next failover target (``validate_for`` guarantees one)."""
        while True:
            candidate = self._failover_counter % len(self.edge_online)
            self._failover_counter += 1
            if self.edge_online[candidate]:
                return candidate

    def _wan_down(self, spec: WanDegradation) -> None:
        now = self.scheduler.now
        index = spec.edge_index
        self.stats.wan_partitions += 1
        wan = self.wan_links[index]
        if spec.partition:
            self.trace.record(now, "wan-partition",
                              f"edge={index} "
                              f"duration={spec.duration_seconds:.6f}")
            wan.pause()
        else:
            self.trace.record(now, "wan-degraded",
                              f"edge={index} "
                              f"factor={spec.bandwidth_factor:.6f}")
            wan.set_slowdown(1.0 / spec.bandwidth_factor)
        self.scheduler.schedule(spec.duration_seconds,
                                lambda: self._wan_up(spec))

    def _wan_up(self, spec: WanDegradation) -> None:
        now = self.scheduler.now
        index = spec.edge_index
        wan = self.wan_links[index]
        if not spec.partition:
            self.trace.record(now, "wan-restore", f"edge={index}")
            wan.set_slowdown(1.0)
            return
        if self.edge_online[index] and self.edge_stations[index].online:
            self.trace.record(now, "wan-restore", f"edge={index}")
            wan.resume()
        else:
            self.trace.record(now, "wan-restore-skipped",
                              f"edge={index} edge-down")
