"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a frozen bag of fault *specs* — edge crashes,
WAN degradation windows, per-camera stream stalls, pool-worker kills and
disk-cache corruptions — that the injection drivers (see
:mod:`repro.faults.injector`) replay through the discrete-event
scheduler.  Plans are plain data: the same plan produces the same fault
events in the same order on every run, under either clock driver, which
is what makes recovery traces diffable.

``FaultPlan.seeded`` draws a plan from the seeded RNG tree
(:mod:`repro.rng`), so chaos soaks are reproducible from a single root
seed.  An **empty plan is the default everywhere**: with no plan
installed the injection hooks are never scheduled and the fault-free
path stays bit-identical to the seed (the standing bitwise-stability
contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import FaultError
from ..rng import make_rng

#: Supported :class:`CacheCorruption` modes (see ``apply_cache_corruption``).
CACHE_CORRUPTION_MODES = ("torn-write", "truncate-bundle", "garbage-sibling")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultError(message)


@dataclass(frozen=True)
class EdgeCrash:
    """An edge server crashes at ``at_seconds``.

    With ``restart_after_seconds`` set the crash is a transient outage:
    the edge's compute station drops its in-flight work (requeued by the
    driver) and comes back after the delay.  With it ``None`` the crash
    is permanent — the edge goes offline for good and its unfinished
    work is failed over to healthy edges.
    """

    edge_index: int
    at_seconds: float
    restart_after_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.edge_index >= 0, "edge_index must be >= 0")
        _require(self.at_seconds >= 0.0, "at_seconds must be >= 0")
        if self.restart_after_seconds is not None:
            _require(self.restart_after_seconds > 0.0,
                     "restart_after_seconds must be > 0 when set")

    @property
    def permanent(self) -> bool:
        """Whether the edge never comes back."""
        return self.restart_after_seconds is None


@dataclass(frozen=True)
class WanDegradation:
    """The WAN uplink of one edge degrades for a window.

    ``bandwidth_factor`` is the fraction of bandwidth that survives:
    ``0.0`` is a full partition (the link pauses; queued transfers wait,
    nothing is lost), ``0 < factor < 1`` stretches transfer times by
    ``1 / factor`` for transfers *submitted* during the window.
    """

    edge_index: int
    at_seconds: float
    duration_seconds: float
    bandwidth_factor: float = 0.0

    def __post_init__(self) -> None:
        _require(self.edge_index >= 0, "edge_index must be >= 0")
        _require(self.at_seconds >= 0.0, "at_seconds must be >= 0")
        _require(self.duration_seconds > 0.0, "duration_seconds must be > 0")
        _require(0.0 <= self.bandwidth_factor < 1.0,
                 "bandwidth_factor must be in [0, 1)")

    @property
    def partition(self) -> bool:
        """Whether the window is a full partition (no bandwidth at all)."""
        return self.bandwidth_factor <= 0.0


@dataclass(frozen=True)
class StreamStall:
    """One camera's uplink stalls (drops out) for a window.

    The session's LAN link pauses: chunks pushed during the window queue
    behind the stall and flow again when it lifts.  Long stalls are what
    the session watchdog (``ResilienceConfig.stall_timeout_seconds``)
    exists to detect.
    """

    camera: str
    at_seconds: float
    duration_seconds: float

    def __post_init__(self) -> None:
        _require(bool(self.camera), "camera must be non-empty")
        _require(self.at_seconds >= 0.0, "at_seconds must be >= 0")
        _require(self.duration_seconds > 0.0, "duration_seconds must be > 0")


@dataclass(frozen=True)
class WorkerKill:
    """A pool worker simulating ``edge_index`` dies mid-run.

    Honoured by the multiprocess fan-out paths:

    * the fleet (:mod:`repro.parallel.fleet`) — the worker process handed
      this edge's shard exits hard, and the parent re-executes the shard
      inline, bit-identical, just slower;
    * the workload builder (:mod:`repro.parallel.workloads`) — the worker
      picking up the build task at index ``edge_index`` exits hard before
      writing anything, and the parent's serial assembly pass rebuilds
      the lost artifact.

    The serial paths ignore worker kills (there is no worker to kill),
    which is exactly what the serial == parallel parity contract requires.
    """

    edge_index: int

    def __post_init__(self) -> None:
        _require(self.edge_index >= 0, "edge_index must be >= 0")


@dataclass(frozen=True)
class CacheCorruption:
    """On-disk corruption of one dataset-cache entry.

    Applied by ``apply_cache_corruption`` (chaos tests call it between
    a store and the next load); the cache's own verification degrades
    every mode to a clean miss / recompute.
    """

    kind: str
    key: str
    mode: str = "truncate-bundle"

    def __post_init__(self) -> None:
        _require(bool(self.kind) and bool(self.key),
                 "kind and key must be non-empty")
        _require(self.mode in CACHE_CORRUPTION_MODES,
                 f"mode must be one of {CACHE_CORRUPTION_MODES}")


#: Any single fault specification.
FaultSpec = Union[EdgeCrash, WanDegradation, StreamStall, WorkerKill,
                  CacheCorruption]


def _by_time(specs: Sequence[FaultSpec]) -> Tuple[FaultSpec, ...]:
    """Stable time-sort (specs without a time keep plan order)."""
    return tuple(sorted(specs,
                        key=lambda spec: getattr(spec, "at_seconds", 0.0)))


@dataclass(frozen=True)
class FaultPlan:
    """A composable, replayable set of fault specs.

    The empty plan (``FaultPlan()``) installs the hooks but schedules no
    faults — used by the ``faults.recovery_overhead`` bench to show the
    hooks themselves are free.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            _require(isinstance(spec, (EdgeCrash, WanDegradation,
                                       StreamStall, WorkerKill,
                                       CacheCorruption)),
                     f"unknown fault spec {spec!r}")

    @property
    def edge_crashes(self) -> Tuple[EdgeCrash, ...]:
        """Edge crashes, time-ordered."""
        return _by_time([spec for spec in self.specs
                         if isinstance(spec, EdgeCrash)])

    @property
    def wan_degradations(self) -> Tuple[WanDegradation, ...]:
        """WAN degradation windows, time-ordered."""
        return _by_time([spec for spec in self.specs
                         if isinstance(spec, WanDegradation)])

    @property
    def stream_stalls(self) -> Tuple[StreamStall, ...]:
        """Per-camera stream stalls, time-ordered."""
        return _by_time([spec for spec in self.specs
                         if isinstance(spec, StreamStall)])

    @property
    def worker_kills(self) -> Tuple[WorkerKill, ...]:
        """Pool-worker kills (plan order)."""
        return tuple(spec for spec in self.specs
                     if isinstance(spec, WorkerKill))

    @property
    def cache_corruptions(self) -> Tuple[CacheCorruption, ...]:
        """Disk-cache corruptions (plan order)."""
        return tuple(spec for spec in self.specs
                     if isinstance(spec, CacheCorruption))

    @property
    def has_scheduler_faults(self) -> bool:
        """Whether any spec needs in-scheduler injection (crash/WAN/stall).

        Worker kills and cache corruptions act outside the event loop,
        so a plan holding only those leaves the simulation untouched.
        """
        return any(isinstance(spec, (EdgeCrash, WanDegradation, StreamStall))
                   for spec in self.specs)

    def validate_for(self, num_edge_servers: int) -> None:
        """Check every edge-indexed spec fits a fleet of this size.

        Also rejects plans whose *permanent* crashes would take every
        edge offline: failover needs at least one survivor.
        """
        for spec in self.specs:
            index = getattr(spec, "edge_index", None)
            if index is not None and index >= num_edge_servers:
                raise FaultError(
                    f"{type(spec).__name__} targets edge {index} but the "
                    f"fleet has {num_edge_servers} edge server(s)")
        doomed = {spec.edge_index for spec in self.edge_crashes
                  if spec.permanent}
        if doomed and len(doomed) >= num_edge_servers:
            raise FaultError(
                "plan permanently crashes every edge server; failover "
                "needs at least one healthy edge")

    @classmethod
    def seeded(cls, seed: int, *, num_edge_servers: int,
               cameras: Sequence[str] = (),
               horizon_seconds: float = 10.0,
               num_edge_crashes: int = 2,
               num_wan_partitions: int = 1,
               num_stream_stalls: int = 1,
               num_worker_kills: int = 1) -> "FaultPlan":
        """Draw a reproducible plan from the seeded RNG tree.

        Crash targets are distinct edges (a permutation draw); crashes
        alternate permanent / transient starting permanent, so the
        default plan exercises both failover and restart.  All times
        land inside ``horizon_seconds``.  Same arguments, same plan.
        """
        _require(num_edge_servers >= 1, "num_edge_servers must be >= 1")
        _require(horizon_seconds > 0.0, "horizon_seconds must be > 0")
        _require(num_edge_crashes < num_edge_servers
                 or num_edge_crashes == 0,
                 "need more edges than crashes to keep a healthy survivor")
        rng = make_rng(seed, "faults", "plan")
        specs: List[FaultSpec] = []
        crash_edges = rng.permutation(num_edge_servers)[:num_edge_crashes]
        for order, edge in enumerate(crash_edges):
            at = float(rng.uniform(0.1, 0.6) * horizon_seconds)
            restart = None
            if order % 2 == 1:
                restart = float(rng.uniform(0.05, 0.2) * horizon_seconds)
            specs.append(EdgeCrash(edge_index=int(edge), at_seconds=at,
                                   restart_after_seconds=restart))
        for _ in range(num_wan_partitions):
            edge = int(rng.integers(0, num_edge_servers))
            at = float(rng.uniform(0.1, 0.5) * horizon_seconds)
            duration = float(rng.uniform(0.1, 0.3) * horizon_seconds)
            specs.append(WanDegradation(edge_index=edge, at_seconds=at,
                                        duration_seconds=duration))
        for _ in range(num_stream_stalls if cameras else 0):
            camera = str(cameras[int(rng.integers(0, len(cameras)))])
            at = float(rng.uniform(0.1, 0.4) * horizon_seconds)
            duration = float(rng.uniform(0.2, 0.5) * horizon_seconds)
            specs.append(StreamStall(camera=camera, at_seconds=at,
                                     duration_seconds=duration))
        for index in range(num_worker_kills):
            specs.append(WorkerKill(
                edge_index=int(rng.integers(0, num_edge_servers))))
        plan = cls(specs=tuple(specs))
        plan.validate_for(num_edge_servers)
        return plan


def apply_cache_corruption(spec: CacheCorruption,
                           directory: Optional[str] = None) -> str:
    """Inflict ``spec`` on the on-disk dataset cache; returns the path hit.

    * ``torn-write`` — plant a truncated ``.tmp-*`` file next to where
      the bundle would live, as if the process died between the temp
      write and the atomic rename.  The entry itself is absent, so the
      next load is a clean miss.
    * ``truncate-bundle`` — chop the stored ``.npz`` in half; the next
      load fails verification, evicts and recomputes.
    * ``garbage-sibling`` — overwrite the sibling ``.json`` (the LRU
      atime carrier) with garbage; the embedded manifest remains
      authoritative, so a verified hit survives.
    """
    import os

    from ..datasets import diskcache

    bundle = diskcache.artifact_path(spec.kind, spec.key,
                                     directory=directory)
    if spec.mode == "torn-write":
        torn = os.path.join(os.path.dirname(bundle),
                            f".tmp-torn-{spec.key[:16]}")
        os.makedirs(os.path.dirname(bundle), exist_ok=True)
        with open(torn, "wb") as handle:
            handle.write(b"\x00" * 7)
        return torn
    if not os.path.exists(bundle):
        raise FaultError(f"no cached bundle to corrupt at {bundle}")
    if spec.mode == "truncate-bundle":
        size = os.path.getsize(bundle)
        with open(bundle, "r+b") as handle:
            handle.truncate(max(size // 2, 1))
        return bundle
    sibling = os.path.splitext(bundle)[0] + ".json"
    with open(sibling, "w", encoding="utf-8") as handle:
        handle.write("{corrupt")
    return sibling
