"""Shared retry policy: exponential backoff with deterministic jitter.

Every retry loop in the codebase (the :class:`ChunkFeeder` backpressure
retries, requeue paths in the fault drivers) speaks this one policy so
budgets and backoff shapes are configured in a single place.  Jitter is
drawn from the seeded RNG tree (:mod:`repro.rng`) keyed by ``(seed,
"retry", key, attempt)`` — the same attempt of the same key always gets
the same jitter, so retries never break run-to-run determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import FaultError
from ..rng import make_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule plus a hard attempt budget.

    Attributes:
        max_attempts: Failures allowed before giving up (``exhausted``).
        base_delay_seconds: Delay after the first failure.
        multiplier: Per-attempt delay growth (1.0 = constant delay).
        max_delay_seconds: Backoff ceiling.
        jitter_fraction: Fraction of the delay randomised (0 disables
            jitter entirely — no RNG is ever constructed).
        seed: Root seed for the jitter draws (only used when jittering).
    """

    max_attempts: int = 8
    base_delay_seconds: float = 0.05
    multiplier: float = 2.0
    max_delay_seconds: float = 10.0
    jitter_fraction: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be >= 1")
        if self.base_delay_seconds <= 0.0:
            raise FaultError("base_delay_seconds must be > 0")
        if self.multiplier < 1.0:
            raise FaultError("multiplier must be >= 1.0")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise FaultError("max_delay_seconds must be >= base delay")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise FaultError("jitter_fraction must be in [0, 1)")

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` failures have used up the budget."""
        return attempts >= self.max_attempts

    def delay_seconds(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``.

        Deterministic: the same ``(seed, key, attempt)`` always yields
        the same delay, jittered or not.
        """
        if attempt < 1:
            raise FaultError("attempt is 1-based")
        delay = min(
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
            self.max_delay_seconds)
        if self.jitter_fraction > 0.0:
            rng = make_rng(self.seed if self.seed is not None else 0,
                           "retry", key, str(attempt))
            delay *= 1.0 + self.jitter_fraction * float(rng.uniform(-1, 1))
        return delay

    @classmethod
    def constant(cls, delay_seconds: float,
                 max_attempts: int = 64) -> "RetryPolicy":
        """Fixed-period retries (the pre-fault-plane feeder behaviour,
        now with a finite budget)."""
        return cls(max_attempts=max_attempts,
                   base_delay_seconds=delay_seconds,
                   multiplier=1.0,
                   max_delay_seconds=delay_seconds)
