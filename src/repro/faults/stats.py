"""Fault / recovery accounting and the diffable recovery trace.

:class:`FaultStats` is the counter block that rides on
:class:`~repro.cluster.fleet.FleetReport` and ``ServiceStatus`` — it
only appears when something fault-related actually happened, so
fault-free reports stay bit-identical to the seed.

:class:`RecoveryTrace` is an append-only log of recovery decisions
(crash seen, session failed over, chunk requeued, breaker opened, …)
rendered as stable text lines: the chaos-soak contract is that the same
seed produces the *same trace*, under either clock driver, across
process restarts — CI diffs two runs' traces verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

_COUNTERS = (
    "crashes_seen", "edges_restarted", "wan_partitions", "stream_stalls",
    "sessions_relocated", "sessions_stalled", "sessions_degraded",
    "jobs_failed_over", "chunks_failed_over", "chunks_dropped",
    "feeder_retries", "feeder_give_ups", "breaker_opens",
    "breaker_rejections",
)


@dataclass
class FaultStats:
    """Counters for injected faults and the recovery work they caused.

    Attributes:
        crashes_seen: Edge crashes injected (permanent or transient).
        edges_restarted: Transient crashes that came back.
        wan_partitions: WAN degradation windows opened.
        stream_stalls: Camera stream stalls injected.
        sessions_relocated: Live sessions moved off a dead edge.
        sessions_stalled: Sessions the watchdog closed as stalled.
        sessions_degraded: Admissions shed to the degraded tenant tier.
        jobs_failed_over: Batch ``CameraJob``s re-placed off a dead edge.
        chunks_failed_over: Chunk/job stage submissions requeued after a
            station failure.
        chunks_dropped: Chunks lost for good (no healthy edge remained).
        feeder_retries: Backpressure retries across all feeders.
        feeder_give_ups: Feeders that exhausted their retry budget.
        breaker_opens: Circuit-breaker open transitions.
        breaker_rejections: Pushes bounced by an open breaker or an
            offline edge.
        retry_histogram: ``{attempts: chunks}`` — how many consecutive
            backpressure failures chunks saw before succeeding (or
            giving up).
    """

    crashes_seen: int = 0
    edges_restarted: int = 0
    wan_partitions: int = 0
    stream_stalls: int = 0
    sessions_relocated: int = 0
    sessions_stalled: int = 0
    sessions_degraded: int = 0
    jobs_failed_over: int = 0
    chunks_failed_over: int = 0
    chunks_dropped: int = 0
    feeder_retries: int = 0
    feeder_give_ups: int = 0
    breaker_opens: int = 0
    breaker_rejections: int = 0
    retry_histogram: Dict[int, int] = field(default_factory=dict)

    def observe_attempts(self, attempts: int, count: int = 1) -> None:
        """Fold ``count`` chunks that needed ``attempts`` retries in."""
        if attempts > 0 and count > 0:
            self.retry_histogram[attempts] = (
                self.retry_histogram.get(attempts, 0) + count)

    def has_activity(self) -> bool:
        """Whether anything fault-related happened at all."""
        return bool(self.retry_histogram) or any(
            getattr(self, name) for name in _COUNTERS)

    def as_dict(self) -> Dict[str, int]:
        """Flat metric dict (histogram buckets as ``retry_attempts_N``)."""
        metrics = {name: getattr(self, name) for name in _COUNTERS}
        for attempts in sorted(self.retry_histogram):
            metrics[f"retry_attempts_{attempts}"] = (
                self.retry_histogram[attempts])
        return metrics

    def mismatches(self, other: "FaultStats",
                   label: str = "faults") -> List[str]:
        """Counter-by-counter differences against ``other``."""
        mine, theirs = self.as_dict(), other.as_dict()
        return [f"{label}.{key}: {mine.get(key, 0)} != {theirs.get(key, 0)}"
                for key in sorted(set(mine) | set(theirs))
                if mine.get(key, 0) != theirs.get(key, 0)]


@dataclass(frozen=True)
class TraceEvent:
    """One recovery decision at one instant of virtual time."""

    time: float
    kind: str
    detail: str = ""

    def line(self) -> str:
        """The stable text rendering CI diffs."""
        return f"t={self.time:.6f} {self.kind} {self.detail}".rstrip()


class RecoveryTrace:
    """Append-only, deterministic log of recovery decisions."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: float, kind: str, detail: str = "") -> None:
        """Append one event."""
        self.events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def lines(self) -> List[str]:
        """All events as stable text lines."""
        return [event.line() for event in self.events]

    def kinds(self) -> Dict[str, int]:
        """``{kind: occurrences}`` summary."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def mismatches(self, other: "RecoveryTrace") -> List[str]:
        """Line-by-line differences against ``other``."""
        mine, theirs = self.lines(), other.lines()
        problems = []
        if len(mine) != len(theirs):
            problems.append(f"trace length {len(mine)} != {len(theirs)}")
        for index, (a, b) in enumerate(zip(mine, theirs)):
            if a != b:
                problems.append(f"trace[{index}]: {a!r} != {b!r}")
        return problems

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
