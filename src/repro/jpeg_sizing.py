"""Size models for frames shipped over the network.

The paper resizes decoded I-frames to the NN input resolution (300x300)
before transmitting them to the cloud; the transmitted artefact is a
compressed still image.  The end-to-end simulation needs its size without
actually compressing millions of thumbnails, so this module provides the
compact size model used throughout the pipeline (and validated against the
real still-image codec in the test suite).
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Compressed bytes per pixel of a typical surveillance thumbnail.  JPEG of
#: natural images at quality ~75 lands between 0.2 and 0.5 byte/pixel; the
#: paper's aggregate numbers (1.688 GB for the resized I-frames of 2.16 M
#: frames at ~2-3.5 % sampling) correspond to roughly 0.3 byte/pixel.
DEFAULT_BYTES_PER_PIXEL = 0.3

#: Fixed container/header overhead per shipped image.
HEADER_OVERHEAD_BYTES = 256


def resized_frame_bytes(width: int, height: int,
                        bytes_per_pixel: float = DEFAULT_BYTES_PER_PIXEL,
                        channels: int = 3) -> int:
    """Estimated compressed size of one resized frame as shipped to the cloud.

    Args:
        width: Thumbnail width in pixels.
        height: Thumbnail height in pixels.
        bytes_per_pixel: Compression density per luma pixel.
        channels: Number of colour channels (chroma is subsampled, so extra
            channels add half their raw weight).

    Returns:
        Estimated size in bytes.
    """
    if width <= 0 or height <= 0:
        raise ConfigurationError("thumbnail dimensions must be positive")
    if bytes_per_pixel <= 0:
        raise ConfigurationError("bytes_per_pixel must be positive")
    if channels < 1:
        raise ConfigurationError("channels must be >= 1")
    luma = width * height * bytes_per_pixel
    chroma = width * height * bytes_per_pixel * 0.5 * max(channels - 1, 0) / 2.0
    return int(luma + chroma) + HEADER_OVERHEAD_BYTES


def raw_frame_bytes(width: int, height: int, channels: int = 3) -> int:
    """Uncompressed size of a frame (used for worst-case link budgeting)."""
    if width <= 0 or height <= 0 or channels < 1:
        raise ConfigurationError("invalid frame dimensions")
    return width * height * channels
