"""Logging helpers shared by the whole library.

The library never configures the root logger on import; applications opt in
by calling :func:`configure_logging` (the examples and benchmark harnesses
do).  All modules obtain their loggers through :func:`get_logger` so the
naming scheme stays uniform (``repro.<subpackage>.<module>``).
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional

_LIBRARY_ROOT = "repro"
_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a library logger.

    Args:
        name: Dotted module name; a ``repro.`` prefix is added when missing.

    Returns:
        A :class:`logging.Logger` under the library's namespace.
    """
    if not name.startswith(_LIBRARY_ROOT):
        name = f"{_LIBRARY_ROOT}.{name}"
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler to the library's root logger.

    Safe to call repeatedly: existing handlers installed by this function are
    replaced rather than duplicated.

    Args:
        level: Logging level for the library root logger.
        stream: Output stream; defaults to ``sys.stderr``.

    Returns:
        The configured library root logger.
    """
    logger = logging.getLogger(_LIBRARY_ROOT)
    logger.setLevel(level)
    stream = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(_DEFAULT_FORMAT))
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


@contextmanager
def log_duration(logger: logging.Logger, message: str,
                 level: int = logging.DEBUG) -> Iterator[None]:
    """Log the wall-clock duration of a block.

    Args:
        logger: Destination logger.
        message: Human-readable label for the block.
        level: Logging level used for the emitted record.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s took %.3f s", message, elapsed)


class ProgressReporter:
    """Tiny progress reporter for long offline stages (tuning, generation).

    The reporter logs at most ``max_messages`` evenly spaced progress lines,
    which keeps benchmark output readable even for multi-thousand-frame
    videos.
    """

    def __init__(self, logger: logging.Logger, total: int, label: str,
                 max_messages: int = 10) -> None:
        self._logger = logger
        self._total = max(int(total), 1)
        self._label = label
        self._every = max(self._total // max(max_messages, 1), 1)
        self._count = 0

    def update(self, step: int = 1) -> None:
        """Advance the reporter by ``step`` items, logging when due."""
        self._count += step
        if self._count % self._every == 0 or self._count >= self._total:
            self._logger.debug("%s: %d/%d", self._label,
                               min(self._count, self._total), self._total)

    @property
    def count(self) -> int:
        """Number of items reported so far."""
        return self._count


def null_logger() -> logging.Logger:
    """Return a logger that drops everything (useful in tight test loops)."""
    logger = logging.getLogger(f"{_LIBRARY_ROOT}.null")
    logger.addHandler(logging.NullHandler())
    logger.propagate = False
    return logger


def describe_level(level: Optional[int]) -> str:
    """Return the human-readable name of a logging level."""
    if level is None:
        return "NOTSET"
    return logging.getLevelName(level)
