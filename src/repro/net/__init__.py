"""Simulated network substrate: links, channels and the 3-tier topology."""

from .channel import Channel, Message
from .link import NetworkLink, TransferRecord
from .topology import ThreeTierTopology

__all__ = ["Channel", "Message", "NetworkLink", "TransferRecord", "ThreeTierTopology"]
