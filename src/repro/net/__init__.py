"""Simulated network substrate: links, channels and the 3-tier topology."""

from .channel import Channel, Message
from .contention import ContendedLink
from .link import NetworkLink, TransferRecord
from .topology import ThreeTierTopology

__all__ = ["Channel", "ContendedLink", "Message", "NetworkLink", "TransferRecord",
           "ThreeTierTopology"]
