"""Message channels between dataflow engines.

The paper's prototype connects the two NiFi instances with the Echo
orchestrator over secure HTTP.  :class:`Channel` provides the equivalent
abstraction here: a named, ordered message queue layered on a
:class:`~repro.net.link.NetworkLink`, so that every hand-off between the
edge engine and the cloud engine is both delivered and accounted for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from ..errors import NetworkError
from .link import NetworkLink, TransferRecord


@dataclass
class Message:
    """A message in flight between two engines.

    Attributes:
        payload: Arbitrary payload object.
        size_bytes: Serialised size charged to the link.
        description: Human-readable label for accounting.
    """

    payload: Any
    size_bytes: int
    description: str = ""


class Channel:
    """Ordered, accounted message queue between two named endpoints.

    Args:
        source: Sending endpoint name.
        destination: Receiving endpoint name.
        link: Underlying network link used for accounting.
    """

    def __init__(self, source: str, destination: str, link: NetworkLink) -> None:
        self.source = source
        self.destination = destination
        self.link = link
        self._queue: Deque[Message] = deque()
        self.delivered_messages = 0

    def send(self, payload: Any, size_bytes: int, description: str = "") -> TransferRecord:
        """Enqueue a message and charge its transfer to the link."""
        if size_bytes < 0:
            raise NetworkError("size_bytes must be >= 0")
        message = Message(payload=payload, size_bytes=int(size_bytes),
                          description=description or f"{self.source}->{self.destination}")
        self._queue.append(message)
        return self.link.transfer(message.size_bytes, message.description)

    def receive(self) -> Optional[Message]:
        """Dequeue the next message, or ``None`` when the channel is empty."""
        if not self._queue:
            return None
        self.delivered_messages += 1
        return self._queue.popleft()

    def receive_all(self) -> List[Message]:
        """Dequeue every pending message."""
        messages = list(self._queue)
        self.delivered_messages += len(messages)
        self._queue.clear()
        return messages

    @property
    def pending(self) -> int:
        """Number of messages waiting to be received."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return (f"Channel({self.source!r} -> {self.destination!r}, "
                f"pending={self.pending})")
