"""Shared-link contention driven by the discrete-event scheduler.

A :class:`~repro.net.link.NetworkLink` is pure accounting: ``transfer``
records how long a payload *would* take, but concurrent transfers do not
delay one another.  :class:`ContendedLink` layers queueing on top — it
serialises transfers over the link through a
:class:`~repro.dataflow.scheduler.ServiceStation`, so when many cameras (or
many edge servers) share one uplink, later transfers wait in virtual time
and the fleet simulator observes the resulting queue depths and latency
inflation.  The underlying link still receives one
:class:`~repro.net.link.TransferRecord` per payload, so byte and duration
totals stay comparable with the uncontended accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..dataflow.scheduler import EventScheduler, ServiceStation, StationStats
from ..errors import NetworkError
from .link import NetworkLink


class ContendedLink:
    """A network link whose transfers queue on a shared event scheduler.

    Args:
        scheduler: The shared virtual clock.
        link: The link providing bandwidth/latency and byte accounting.
        channels: Number of transfers the link can carry simultaneously
            (1 models strict serialisation, matching a saturated uplink).
    """

    def __init__(self, scheduler: EventScheduler, link: NetworkLink,
                 channels: int = 1) -> None:
        if channels < 1:
            raise NetworkError(f"channels must be >= 1, got {channels}")
        self.link = link
        self._station = ServiceStation(scheduler, f"link:{link.name}",
                                       capacity=channels)
        self._slowdown = 1.0

    @property
    def stats(self) -> StationStats:
        """Queueing statistics of the link (busy time, peak queue depth)."""
        return self._station.stats

    @property
    def queue_depth(self) -> int:
        """Transfers currently waiting for the link."""
        return self._station.queue_depth

    @property
    def in_service(self) -> int:
        """Transfers currently occupying the link."""
        return self._station.in_service

    @property
    def online(self) -> bool:
        """Whether the link is carrying transfers (see :meth:`pause`)."""
        return self._station.online

    @property
    def slowdown(self) -> float:
        """Current degradation factor (1.0 = full bandwidth)."""
        return self._slowdown

    def pause(self) -> None:
        """Partition the link (fault-injection hook): in-flight transfers
        complete, queued and new transfers wait for :meth:`resume`."""
        self._station.pause()

    def resume(self) -> None:
        """Lift a partition started by :meth:`pause`."""
        self._station.resume()

    def set_slowdown(self, factor: float) -> None:
        """Stretch transfer times of *subsequently submitted* transfers.

        ``factor`` >= 1.0 models degraded bandwidth (a factor of 2 halves
        the effective rate); 1.0 restores full speed.  At exactly 1.0 the
        duration arithmetic is skipped entirely, so the fault-free path
        produces bit-identical floats.
        """
        if factor < 1.0:
            raise NetworkError(f"slowdown factor must be >= 1.0, got {factor}")
        self._slowdown = float(factor)

    def fail_all(self, reason: str = "fault") -> int:
        """Fail every queued and in-flight transfer (fault-injection hook).

        Failed transfers never reach the underlying link, so no bytes are
        recorded for them — lost traffic is lost.  Returns the number of
        transfers failed; their ``on_fail`` callbacks fire in order (see
        :meth:`ServiceStation.fail_all`).
        """
        return self._station.fail_all(reason)

    def submit(self, size_bytes: int, description: str = "",
               on_complete: Optional[Callable[[Any], None]] = None,
               payload: Any = None,
               on_start: Optional[Callable[[Any], None]] = None,
               on_fail: Optional[Callable[[Any, str], None]] = None) -> None:
        """Queue a transfer; ``on_complete(payload)`` fires on delivery.

        ``on_start(payload)`` fires when the transfer actually occupies the
        link (after any queueing).  ``on_fail(payload, reason)`` fires only
        if the transfer is failed out by :meth:`fail_all`.
        """
        if size_bytes < 0:
            raise NetworkError("size_bytes must be >= 0")
        duration = self.link.transfer_seconds(size_bytes)
        if self._slowdown != 1.0:
            duration *= self._slowdown

        def _deliver(delivered: Any) -> None:
            self.link.transfer(size_bytes, description)
            if on_complete is not None:
                on_complete(delivered)

        self._station.submit(duration, on_complete=_deliver, payload=payload,
                             on_start=on_start, on_fail=on_fail)

    def busy_seconds_elapsed(self, now: Optional[float] = None) -> float:
        """Transfer time actually consumed by ``now`` (in-flight pro-rated)."""
        return self._station.busy_seconds_elapsed(now)

    def utilisation(self, makespan_seconds: float,
                    now: Optional[float] = None) -> float:
        """Fraction of link time spent transferring over ``makespan_seconds``.

        With ``now`` given, an in-flight transfer is pro-rated to the
        snapshot instant (see :meth:`ServiceStation.utilisation`).
        """
        return self._station.utilisation(makespan_seconds, now=now)
