"""Simulated network links.

The paper controls the edge -> cloud bandwidth to 30 Mbps to emulate an
average WAN connection.  :class:`NetworkLink` models a point-to-point link
with a fixed bandwidth and propagation latency and keeps an account of every
transfer, which is what the data-transfer evaluation (Figure 5) reads out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import NetworkError


@dataclass
class TransferRecord:
    """One completed transfer over a link.

    Attributes:
        description: What was transferred (e.g. ``"iframes:jackson_square"``).
        size_bytes: Payload size.
        duration_seconds: Simulated transfer duration.
    """

    description: str
    size_bytes: int
    duration_seconds: float


@dataclass
class NetworkLink:
    """A point-to-point link with fixed bandwidth and latency.

    Attributes:
        name: Link name (``"camera-edge"``, ``"edge-cloud"``).
        bandwidth_mbps: Link bandwidth in megabits per second.
        latency_ms: One-way propagation latency in milliseconds.
    """

    name: str
    bandwidth_mbps: float
    latency_ms: float = 0.0
    transfers: List[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.latency_ms < 0:
            raise NetworkError(f"latency must be >= 0, got {self.latency_ms}")

    def transfer_seconds(self, size_bytes: int) -> float:
        """Time to move ``size_bytes`` over the link (latency included)."""
        if size_bytes < 0:
            raise NetworkError("size_bytes must be >= 0")
        return (size_bytes * 8) / (self.bandwidth_mbps * 1e6) + self.latency_ms / 1e3

    def transfer(self, size_bytes: int, description: str = "") -> TransferRecord:
        """Record a transfer and return its accounting entry."""
        record = TransferRecord(description=description, size_bytes=int(size_bytes),
                                duration_seconds=self.transfer_seconds(size_bytes))
        self.transfers.append(record)
        return record

    @property
    def total_bytes(self) -> int:
        """Total bytes moved over the link so far."""
        return sum(record.size_bytes for record in self.transfers)

    @property
    def total_seconds(self) -> float:
        """Total simulated transfer time so far."""
        return sum(record.duration_seconds for record in self.transfers)

    def reset(self) -> None:
        """Forget all recorded transfers."""
        self.transfers.clear()
