"""The 3-tier network topology: cameras, edge servers, cloud.

:class:`ThreeTierTopology` wires together the simulated links of Figure 1 of
the paper: every camera talks to one edge server over a local link, and each
edge server talks to the cloud over a bandwidth-constrained WAN link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import SystemConfig
from ..errors import NetworkError
from .link import NetworkLink


@dataclass
class ThreeTierTopology:
    """Link inventory of a camera/edge/cloud deployment.

    Attributes:
        config: System configuration providing bandwidths and latencies.
        camera_links: Per-camera link to its edge server.
        edge_cloud_link: The shared edge -> cloud WAN link.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    camera_links: Dict[str, NetworkLink] = field(default_factory=dict)
    edge_cloud_link: Optional[NetworkLink] = None

    def __post_init__(self) -> None:
        if self.edge_cloud_link is None:
            self.edge_cloud_link = NetworkLink(
                name="edge-cloud",
                bandwidth_mbps=self.config.edge_cloud_bandwidth_mbps,
                latency_ms=self.config.edge_cloud_latency_ms)

    def add_camera(self, camera_name: str) -> NetworkLink:
        """Register a camera and create its camera -> edge link."""
        if camera_name in self.camera_links:
            raise NetworkError(f"camera {camera_name!r} already registered")
        link = NetworkLink(
            name=f"camera-edge:{camera_name}",
            bandwidth_mbps=self.config.camera_edge_bandwidth_mbps,
            latency_ms=self.config.camera_edge_latency_ms)
        self.camera_links[camera_name] = link
        return link

    def camera_link(self, camera_name: str) -> NetworkLink:
        """The camera -> edge link of a registered camera."""
        try:
            return self.camera_links[camera_name]
        except KeyError as exc:
            raise NetworkError(f"unknown camera {camera_name!r}") from exc

    @property
    def cameras(self) -> List[str]:
        """Names of the registered cameras."""
        return sorted(self.camera_links)

    def total_camera_edge_bytes(self) -> int:
        """Total bytes moved from all cameras to the edge tier."""
        return sum(link.total_bytes for link in self.camera_links.values())

    def total_edge_cloud_bytes(self) -> int:
        """Total bytes moved from the edge tier to the cloud."""
        return self.edge_cloud_link.total_bytes

    def reset(self) -> None:
        """Clear all transfer accounting."""
        for link in self.camera_links.values():
            link.reset()
        self.edge_cloud_link.reset()
