"""Numpy NN inference engine, the YoloLite reference model and partitioning."""

from .layers import (Conv2D, Dense, Flatten, GlobalAveragePool, Layer, MaxPool2D,
                     ReLU, Softmax)
from .model import LayerSummary, SequentialModel
from .oracle import (ConstantDetector, NNDetector, ObjectDetector, OracleDetector,
                     detect_many)
from .partition import (NeurosurgeonPartitioner, PartitionDecision, SplitCandidate)
from .profiler import (CLOUD_DEVICE, EDGE_DEVICE, DeviceSpec, LayerProfile,
                       ModelProfiler)
from .yolo_lite import (DEFAULT_BATCH_SIZE, DEFAULT_CLASSES, DEFAULT_INPUT_SIZE,
                        build_yolo_lite, classify_frame, classify_frames,
                        model_size_bytes, preprocess_frame, preprocess_frames)

__all__ = [
    "Conv2D", "Dense", "Flatten", "GlobalAveragePool", "Layer", "MaxPool2D",
    "ReLU", "Softmax",
    "LayerSummary", "SequentialModel",
    "ConstantDetector", "NNDetector", "ObjectDetector", "OracleDetector",
    "detect_many",
    "NeurosurgeonPartitioner", "PartitionDecision", "SplitCandidate",
    "CLOUD_DEVICE", "EDGE_DEVICE", "DeviceSpec", "LayerProfile", "ModelProfiler",
    "DEFAULT_BATCH_SIZE", "DEFAULT_CLASSES", "DEFAULT_INPUT_SIZE",
    "build_yolo_lite", "classify_frame", "classify_frames", "model_size_bytes",
    "preprocess_frame", "preprocess_frames",
]
