"""Neural-network layers for the numpy inference engine.

The paper treats the object-detection network (YOLOv3 in their prototype) as
a per-frame black box that is expensive to evaluate and that can be split
between edge and cloud by the "NN deployment service".  PyTorch is not
available in this environment, so this module provides a small but real
inference engine: convolution (via im2col), pooling, dense layers and the
usual activations, each reporting its parameter count, FLOPs and output size
— the quantities the deployment service's partitioning algorithm needs.

Tensors follow the ``(channels, height, width)`` layout for feature maps and
plain vectors for dense layers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ModelError
from ..rng import make_rng

Shape = Tuple[int, ...]


class Layer:
    """Base class of all layers.

    Subclasses implement :meth:`forward` and :meth:`output_shape`, and report
    :attr:`num_parameters` and :meth:`flops` so the profiler can build a cost
    model without running the network.
    """

    #: Human-readable layer name, set by subclasses.
    name: str = "layer"

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output for a single example."""
        raise NotImplementedError

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of the output given an input shape."""
        raise NotImplementedError

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters."""
        return 0

    def flops(self, input_shape: Shape) -> int:
        """Approximate multiply-accumulate count for one forward pass."""
        return 0

    def output_size_bytes(self, input_shape: Shape, dtype_bytes: int = 4) -> int:
        """Size of the layer's output activation in bytes."""
        return int(np.prod(self.output_shape(input_shape))) * dtype_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return f"{type(self).__name__}(name={self.name!r})"


def _check_feature_map(inputs: np.ndarray, layer_name: str) -> None:
    if inputs.ndim != 3:
        raise ModelError(
            f"{layer_name} expects a (channels, height, width) tensor, "
            f"got shape {inputs.shape}")


class Conv2D(Layer):
    """2-D convolution with 'same' or 'valid' padding, implemented via im2col.

    Args:
        in_channels: Number of input channels.
        out_channels: Number of filters.
        kernel_size: Square kernel edge length.
        stride: Spatial stride.
        padding: ``"same"`` or ``"valid"``.
        name: Layer name.
        seed: Seed for the deterministic He-style weight initialisation.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: str = "same", name: str = "conv",
                 seed: int = 0) -> None:
        if in_channels < 1 or out_channels < 1 or kernel_size < 1 or stride < 1:
            raise ModelError("Conv2D dimensions must be positive")
        if padding not in ("same", "valid"):
            raise ModelError(f"unknown padding {padding!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        rng = make_rng(seed, "conv", name)
        scale = np.sqrt(2.0 / (in_channels * kernel_size * kernel_size))
        self.weights = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))
        self.bias = np.zeros(out_channels)

    @property
    def num_parameters(self) -> int:
        return int(self.weights.size + self.bias.size)

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ModelError(
                f"{self.name}: expected {self.in_channels} input channels, got {channels}")
        pad = self._pad_amount()
        out_h = (height + 2 * pad - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * pad - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ModelError(f"{self.name}: input {input_shape} too small")
        return (self.out_channels, out_h, out_w)

    def flops(self, input_shape: Shape) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel_size * self.kernel_size
        return int(self.out_channels * out_h * out_w * per_output)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        _check_feature_map(inputs, self.name)
        channels, height, width = inputs.shape
        out_channels, out_h, out_w = self.output_shape(inputs.shape)
        pad = self._pad_amount()
        if pad:
            inputs = np.pad(inputs, ((0, 0), (pad, pad), (pad, pad)))
        k = self.kernel_size
        stride = self.stride
        # im2col: gather every receptive field into a column.
        columns = np.empty((channels * k * k, out_h * out_w))
        column = 0
        for row in range(out_h):
            top = row * stride
            patch_rows = inputs[:, top:top + k, :]
            for col in range(out_w):
                left = col * stride
                columns[:, column] = patch_rows[:, :, left:left + k].ravel()
                column += 1
        kernel_matrix = self.weights.reshape(out_channels, -1)
        output = kernel_matrix @ columns + self.bias[:, None]
        return output.reshape(out_channels, out_h, out_w)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str = "relu") -> None:
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return np.maximum(inputs, 0.0)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))


class MaxPool2D(Layer):
    """Max pooling with a square window and equal stride."""

    def __init__(self, pool_size: int = 2, name: str = "maxpool") -> None:
        if pool_size < 1:
            raise ModelError("pool_size must be >= 1")
        self.pool_size = pool_size
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        return (channels, height // self.pool_size, width // self.pool_size)

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(self.output_shape(input_shape))) * self.pool_size ** 2

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        _check_feature_map(inputs, self.name)
        channels, height, width = inputs.shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        if out_h == 0 or out_w == 0:
            raise ModelError(f"{self.name}: input {inputs.shape} too small to pool")
        trimmed = inputs[:, :out_h * p, :out_w * p]
        return trimmed.reshape(channels, out_h, p, out_w, p).max(axis=(2, 4))


class GlobalAveragePool(Layer):
    """Average every channel's feature map down to one value."""

    def __init__(self, name: str = "gap") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[0],)

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        _check_feature_map(inputs, self.name)
        return inputs.mean(axis=(1, 2))


class Flatten(Layer):
    """Flatten a feature map into a vector."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return np.asarray(inputs).ravel()


class Dense(Layer):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int, name: str = "dense",
                 seed: int = 0) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        rng = make_rng(seed, "dense", name)
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(out_features, in_features))
        self.bias = np.zeros(out_features)

    @property
    def num_parameters(self) -> int:
        return int(self.weights.size + self.bias.size)

    def output_shape(self, input_shape: Shape) -> Shape:
        if int(np.prod(input_shape)) != self.in_features:
            raise ModelError(
                f"{self.name}: expected {self.in_features} inputs, got {input_shape}")
        return (self.out_features,)

    def flops(self, input_shape: Shape) -> int:
        return self.in_features * self.out_features

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        vector = np.asarray(inputs).ravel()
        if vector.size != self.in_features:
            raise ModelError(
                f"{self.name}: expected {self.in_features} inputs, got {vector.size}")
        return self.weights @ vector + self.bias


class Softmax(Layer):
    """Numerically stable softmax over a vector."""

    def __init__(self, name: str = "softmax") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def flops(self, input_shape: Shape) -> int:
        return 3 * int(np.prod(input_shape))

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        vector = np.asarray(inputs, dtype=np.float64).ravel()
        shifted = vector - vector.max()
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum()
