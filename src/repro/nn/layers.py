"""Neural-network layers for the numpy inference engine.

The paper treats the object-detection network (YOLOv3 in their prototype) as
a per-frame black box that is expensive to evaluate and that can be split
between edge and cloud by the "NN deployment service".  PyTorch is not
available in this environment, so this module provides a small but real
inference engine: convolution (via im2col), pooling, dense layers and the
usual activations, each reporting its parameter count, FLOPs and output size
— the quantities the deployment service's partitioning algorithm needs.

Feature maps follow the ``(channels, height, width)`` layout and dense
activations are plain vectors.  Every layer also accepts a leading batch
dimension — ``(batch, channels, height, width)`` feature maps and
``(batch, features)`` vectors — and processes the whole batch in one
vectorised pass; a single example always goes through the same batched code
path (as a batch of one), so batched and per-example inference are exactly
equal.

Precision dispatch: every layer computes in the dtype of its input.  The
default engine runs in float64 through the exact kernels that are pinned
bit-identical to the seed implementation.  Feeding float32 activations
(what :meth:`SequentialModel.forward_range` does under
``precision="fast"``) routes Conv2D and Dense through *merged* float32
GEMMs — one BLAS call for a whole batch chunk instead of one
identically-shaped product per example — which reassociates the reductions
and therefore lives under the tolerance contract of
:data:`repro.contracts.FAST_CONTRACT` rather than the bit-identity
contract.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ModelError
from ..rng import make_rng

Shape = Tuple[int, ...]

#: Target size of the convolution im2col buffer; batches whose column matrix
#: would exceed this are processed in chunks so the working set stays inside
#: the CPU cache (a 30+ MB buffer made batched inference slower than
#: per-example inference).
_CONV_BUFFER_BYTES = 4 * 1024 * 1024


class Layer:
    """Base class of all layers.

    Subclasses implement :meth:`forward` and :meth:`output_shape`, and report
    :attr:`num_parameters` and :meth:`flops` so the profiler can build a cost
    model without running the network.
    """

    #: Human-readable layer name, set by subclasses.
    name: str = "layer"

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output for one example or a leading-axis batch."""
        raise NotImplementedError

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of the output given a (single-example) input shape."""
        raise NotImplementedError

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters."""
        return 0

    def flops(self, input_shape: Shape) -> int:
        """Approximate multiply-accumulate count for one forward pass."""
        return 0

    def output_size_bytes(self, input_shape: Shape, dtype_bytes: int = 4) -> int:
        """Size of the layer's output activation in bytes."""
        return int(np.prod(self.output_shape(input_shape))) * dtype_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return f"{type(self).__name__}(name={self.name!r})"


def _as_batched_maps(inputs: np.ndarray, layer_name: str
                     ) -> Tuple[np.ndarray, bool]:
    """Normalise a feature-map input to ``(batch, C, H, W)``.

    Returns the batched view plus whether the caller passed a batch (so the
    result can be un-batched on the way out).
    """
    inputs = np.asarray(inputs)
    if inputs.ndim == 3:
        return inputs[None], False
    if inputs.ndim == 4:
        return inputs, True
    raise ModelError(
        f"{layer_name} expects a (channels, height, width) tensor or a "
        f"(batch, channels, height, width) batch, got shape {inputs.shape}")


class Conv2D(Layer):
    """2-D convolution with 'same' or 'valid' padding, implemented via im2col.

    Args:
        in_channels: Number of input channels.
        out_channels: Number of filters.
        kernel_size: Square kernel edge length.
        stride: Spatial stride.
        padding: ``"same"`` or ``"valid"``.
        name: Layer name.
        seed: Seed for the deterministic He-style weight initialisation.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: str = "same", name: str = "conv",
                 seed: int = 0) -> None:
        if in_channels < 1 or out_channels < 1 or kernel_size < 1 or stride < 1:
            raise ModelError("Conv2D dimensions must be positive")
        if padding not in ("same", "valid"):
            raise ModelError(f"unknown padding {padding!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        rng = make_rng(seed, "conv", name)
        scale = np.sqrt(2.0 / (in_channels * kernel_size * kernel_size))
        self.weights = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))
        self.bias = np.zeros(out_channels)

    @property
    def num_parameters(self) -> int:
        return int(self.weights.size + self.bias.size)

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ModelError(
                f"{self.name}: expected {self.in_channels} input channels, got {channels}")
        pad = self._pad_amount()
        out_h = (height + 2 * pad - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * pad - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ModelError(f"{self.name}: input {input_shape} too small")
        return (self.out_channels, out_h, out_w)

    def flops(self, input_shape: Shape) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel_size * self.kernel_size
        return int(self.out_channels * out_h * out_w * per_output)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs, batched = _as_batched_maps(inputs, self.name)
        if inputs.dtype == np.float32:
            output = self._forward_fast(inputs)
            return output if batched else output[0]
        batch, channels, height, width = inputs.shape
        out_channels, out_h, out_w = self.output_shape((channels, height, width))
        pad = self._pad_amount()
        if pad:
            inputs = np.pad(inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        k = self.kernel_size
        stride = self.stride
        kernel_matrix = self.weights.reshape(out_channels, -1)
        output = np.empty((batch, out_channels, out_h, out_w))
        # Batched im2col in (chunk, C*k*k, positions) layout: one strided
        # copy per kernel tap (k² of them) with contiguous writes, no big
        # permutation afterwards — the reshape below is a view.  The batch is
        # processed in chunks that keep the column buffer inside the cache;
        # chunking cannot change results because every example is multiplied
        # by one identically-shaped GEMM either way (which is also what keeps
        # batched results exactly equal to per-example results).
        per_example = channels * k * k * out_h * out_w * 8
        chunk_size = max(int(_CONV_BUFFER_BYTES // max(per_example, 1)), 1)
        out_matrix = output.reshape(batch, out_channels, out_h * out_w)
        for start in range(0, batch, chunk_size):
            chunk = inputs[start:start + chunk_size]
            columns = np.empty((chunk.shape[0], channels, k, k, out_h, out_w))
            for tap_y in range(k):
                for tap_x in range(k):
                    columns[:, :, tap_y, tap_x] = chunk[
                        :, :,
                        tap_y:tap_y + out_h * stride:stride,
                        tap_x:tap_x + out_w * stride:stride]
            column_matrix = columns.reshape(
                chunk.shape[0], channels * k * k, out_h * out_w)
            out_chunk = out_matrix[start:start + chunk_size]
            np.matmul(kernel_matrix[None], column_matrix, out=out_chunk)
            # Bias is added per chunk while the output slice is cache-hot; a
            # whole-batch add afterwards would re-traverse the full array.
            out_chunk += self.bias[:, None]
        return output if batched else output[0]

    def _forward_fast(self, inputs: np.ndarray) -> np.ndarray:
        """float32 forward pass with one *merged* GEMM per batch chunk.

        The im2col buffer is laid out ``(C*k*k, chunk*positions)`` so the
        whole chunk multiplies in a single sgemm — the merged reduction
        (and float32 itself) round differently from the exact path, which
        is precisely what the fast tolerance contract budgets for.
        """
        batch, channels, height, width = inputs.shape
        out_channels, out_h, out_w = self.output_shape((channels, height, width))
        pad = self._pad_amount()
        if pad:
            inputs = np.pad(inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        # Cast per call rather than caching: `weights`/`bias` are public
        # mutable attributes, and a cached float32 copy would silently go
        # stale after an assignment.  The cast is a few tens of kilobytes —
        # noise next to the GEMM it feeds.
        kernel32 = self.weights.reshape(self.out_channels, -1).astype(np.float32)
        bias32 = self.bias.astype(np.float32)
        k = self.kernel_size
        stride = self.stride
        positions = out_h * out_w
        output = np.empty((batch, out_channels, out_h, out_w), dtype=np.float32)
        out_matrix = output.reshape(batch, out_channels, positions)
        per_example = channels * k * k * positions * 4
        chunk_size = max(int(_CONV_BUFFER_BYTES // max(per_example, 1)), 1)
        for start in range(0, batch, chunk_size):
            chunk = inputs[start:start + chunk_size]
            # Channel-major views of the chunk make every tap write one
            # contiguous (chunk, out_h, out_w) run per channel.
            chunk_cm = chunk.transpose(1, 0, 2, 3)
            columns = np.empty((channels, k, k, chunk.shape[0], out_h, out_w),
                               dtype=np.float32)
            for tap_y in range(k):
                for tap_x in range(k):
                    columns[:, tap_y, tap_x] = chunk_cm[
                        :, :,
                        tap_y:tap_y + out_h * stride:stride,
                        tap_x:tap_x + out_w * stride:stride]
            column_matrix = columns.reshape(channels * k * k,
                                            chunk.shape[0] * positions)
            merged = kernel32 @ column_matrix
            merged += bias32[:, None]
            out_matrix[start:start + chunk.shape[0]] = merged.reshape(
                out_channels, chunk.shape[0], positions).transpose(1, 0, 2)
        return output


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str = "relu") -> None:
        self.name = name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return np.maximum(inputs, 0.0)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))


class MaxPool2D(Layer):
    """Max pooling with a square window and equal stride."""

    def __init__(self, pool_size: int = 2, name: str = "maxpool") -> None:
        if pool_size < 1:
            raise ModelError("pool_size must be >= 1")
        self.pool_size = pool_size
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        return (channels, height // self.pool_size, width // self.pool_size)

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(self.output_shape(input_shape))) * self.pool_size ** 2

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs, batched = _as_batched_maps(inputs, self.name)
        batch, channels, height, width = inputs.shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        if out_h == 0 or out_w == 0:
            raise ModelError(f"{self.name}: input {inputs.shape[1:]} too small to pool")
        trimmed = inputs[:, :, :out_h * p, :out_w * p]
        # Elementwise maximum over the p² tap slices instead of a reduction
        # over two tiny axes — numpy's reduce machinery costs more per
        # element than the comparison itself for short axes.  Exactly equal,
        # since max is order-independent.
        output = trimmed[:, :, ::p, ::p].copy()
        for tap_y in range(p):
            for tap_x in range(p):
                if tap_y or tap_x:
                    np.maximum(output, trimmed[:, :, tap_y::p, tap_x::p],
                               out=output)
        return output if batched else output[0]


class GlobalAveragePool(Layer):
    """Average every channel's feature map down to one value."""

    def __init__(self, name: str = "gap") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[0],)

    def flops(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs, batched = _as_batched_maps(inputs, self.name)
        output = inputs.mean(axis=(2, 3))
        return output if batched else output[0]


class Flatten(Layer):
    """Flatten a feature map into a vector (per example in a batch)."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs)
        if inputs.ndim >= 3:
            # A single feature map stays 3-D; anything higher-rank carries a
            # leading batch axis.
            if inputs.ndim == 3:
                return inputs.ravel()
            return inputs.reshape(inputs.shape[0], -1)
        if inputs.ndim == 2:
            # (batch, features): already flat per example — keep the batch
            # axis so batched and per-example pipelines stay equivalent.
            return inputs
        return inputs.ravel()


class Dense(Layer):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int, name: str = "dense",
                 seed: int = 0) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        rng = make_rng(seed, "dense", name)
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(out_features, in_features))
        self.bias = np.zeros(out_features)

    @property
    def num_parameters(self) -> int:
        return int(self.weights.size + self.bias.size)

    def output_shape(self, input_shape: Shape) -> Shape:
        if int(np.prod(input_shape)) != self.in_features:
            raise ModelError(
                f"{self.name}: expected {self.in_features} inputs, got {input_shape}")
        return (self.out_features,)

    def flops(self, input_shape: Shape) -> int:
        return self.in_features * self.out_features

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs)
        if inputs.ndim == 2 and inputs.shape[1] == self.in_features:
            vectors, batched = inputs, True
        elif inputs.size == self.in_features:
            # A single example in any shape (the original implementation
            # ravelled multi-dimensional inputs, e.g. a conv feature map fed
            # straight into a dense layer without a Flatten).
            vectors, batched = inputs.reshape(1, -1), False
        else:
            raise ModelError(
                f"{self.name}: expected {self.in_features} inputs or a "
                f"(batch, {self.in_features}) batch, got shape {inputs.shape}")
        if vectors.dtype == np.float32:
            # Fast path: one merged float32 GEMM over the whole batch,
            # covered by the tolerance contract instead of bit-identity.
            # Weights are cast per call (not cached) so mutating the public
            # `weights`/`bias` attributes can never leave a stale copy.
            output = (vectors @ self.weights.T.astype(np.float32)
                      + self.bias.astype(np.float32))
            return output if batched else output[0]
        # One identically-shaped (1, in) @ (in, out) product per example, so
        # batched results are exactly equal to per-example results (a single
        # merged GEMM may round differently).
        output = (vectors[:, None, :] @ self.weights.T)[:, 0, :] + self.bias
        return output if batched else output[0]


class Softmax(Layer):
    """Numerically stable softmax over a vector (row-wise for batches)."""

    def __init__(self, name: str = "softmax") -> None:
        self.name = name

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def flops(self, input_shape: Shape) -> int:
        return 3 * int(np.prod(input_shape))

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        # The fast path keeps float32 end to end; everything else computes
        # in float64 exactly as the seed implementation did.
        dtype = np.float32 if np.asarray(inputs).dtype == np.float32 else np.float64
        inputs = np.asarray(inputs, dtype=dtype)
        if inputs.ndim == 2:
            vectors, batched = inputs, True
        else:
            # Any other rank is one example; the original implementation
            # ravelled multi-dimensional single inputs, so keep doing that.
            vectors, batched = inputs.reshape(1, -1), False
        shifted = vectors - vectors.max(axis=1, keepdims=True)
        exponentials = np.exp(shifted)
        output = exponentials / exponentials.sum(axis=1, keepdims=True)
        return output if batched else output[0]
