"""Sequential model container for the numpy inference engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..contracts import PRECISION_EXACT, activation_dtype
from ..errors import ModelError
from .layers import Layer, Shape


@dataclass(frozen=True)
class LayerSummary:
    """Static description of one layer inside a model.

    Attributes:
        index: Position of the layer in the model.
        name: Layer name.
        kind: Layer class name.
        output_shape: Activation shape produced by the layer.
        num_parameters: Trainable parameter count.
        flops: Multiply-accumulate estimate for one forward pass.
        output_bytes: Size of the activation in bytes (float32).
    """

    index: int
    name: str
    kind: str
    output_shape: Shape
    num_parameters: int
    flops: int
    output_bytes: int


class SequentialModel:
    """A feed-forward stack of layers.

    Args:
        layers: Layers in execution order.
        input_shape: Shape of the model input (``(channels, height, width)``
            for convolutional models).
        name: Model name used in summaries and experiment tables.
    """

    def __init__(self, layers: Sequence[Layer], input_shape: Shape,
                 name: str = "model") -> None:
        if not layers:
            raise ModelError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(int(dim) for dim in input_shape)
        self.name = name
        # Validate the shape chain eagerly so misconfigured models fail fast.
        self._shapes = self._compute_shapes()

    def _compute_shapes(self) -> List[Shape]:
        shapes = [self.input_shape]
        current = self.input_shape
        for layer in self.layers:
            current = layer.output_shape(current)
            shapes.append(current)
        return shapes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        """Number of layers."""
        return len(self.layers)

    @property
    def output_shape(self) -> Shape:
        """Shape of the model output."""
        return self._shapes[-1]

    @property
    def num_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(layer.num_parameters for layer in self.layers)

    def layer_input_shape(self, index: int) -> Shape:
        """Input shape of the layer at ``index``."""
        self._check_index(index)
        return self._shapes[index]

    def layer_output_shape(self, index: int) -> Shape:
        """Output shape of the layer at ``index``."""
        self._check_index(index)
        return self._shapes[index + 1]

    def summary(self) -> List[LayerSummary]:
        """Per-layer static summary (used by the profiler and README docs)."""
        summaries = []
        for index, layer in enumerate(self.layers):
            input_shape = self._shapes[index]
            summaries.append(LayerSummary(
                index=index,
                name=layer.name,
                kind=type(layer).__name__,
                output_shape=self._shapes[index + 1],
                num_parameters=layer.num_parameters,
                flops=layer.flops(input_shape),
                output_bytes=layer.output_size_bytes(input_shape),
            ))
        return summaries

    def total_flops(self) -> int:
        """Total multiply-accumulate count of one forward pass."""
        return sum(entry.flops for entry in self.summary())

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.layers):
            raise ModelError(
                f"layer index {index} out of range [0, {len(self.layers)})")

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray,
                precision: str = PRECISION_EXACT) -> np.ndarray:
        """Run a full forward pass on one example or a leading-axis batch."""
        return self.forward_range(inputs, 0, self.num_layers, precision)

    def forward_range(self, inputs: np.ndarray, start: int, stop: int,
                      precision: str = PRECISION_EXACT) -> np.ndarray:
        """Run layers ``start`` (inclusive) to ``stop`` (exclusive).

        This is the primitive the NN deployment service uses: the edge engine
        runs ``forward_range(x, 0, split)`` and ships the intermediate
        activation to the cloud engine, which runs
        ``forward_range(activation, split, num_layers)``.

        ``inputs`` may be one activation of the expected shape or a batch of
        them with one extra leading axis; a batch flows through every layer's
        vectorised path in one go.

        ``precision`` selects the numeric mode: ``"exact"`` (the default)
        computes in float64 through the bit-identical kernels; ``"fast"``
        casts the activation to float32, routing every layer through its
        merged-GEMM fast kernel under the tolerance contract of
        :data:`repro.contracts.FAST_CONTRACT`.
        """
        if not 0 <= start <= stop <= self.num_layers:
            raise ModelError(
                f"invalid layer range [{start}, {stop}) for {self.num_layers} layers")
        activation = np.asarray(inputs, dtype=activation_dtype(precision))
        expected = tuple(self._shapes[start])
        shape = tuple(activation.shape)
        if shape != expected and shape[1:] != expected:
            raise ModelError(
                f"layer {start} expects input of shape {expected} "
                f"(or a (batch, *{expected}) batch), got {activation.shape}")
        for index in range(start, stop):
            activation = self.layers[index].forward(activation)
        return activation

    def predict_class(self, inputs: np.ndarray,
                      precision: str = PRECISION_EXACT) -> Tuple[int, np.ndarray]:
        """Full forward pass followed by an argmax over the output vector."""
        output = self.forward(inputs, precision)
        vector = np.asarray(output).ravel()
        return int(np.argmax(vector)), vector

    def predict_classes(self, batch: np.ndarray,
                        precision: str = PRECISION_EXACT
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`predict_class`.

        Args:
            batch: Batch of inputs with one extra leading axis.
            precision: Numeric mode (see :meth:`forward_range`).

        Returns:
            ``(indices, outputs)`` — the per-example argmax indices of shape
            ``(batch,)`` and the raw output matrix of shape
            ``(batch, *output_shape)``.
        """
        batch = np.asarray(batch, dtype=activation_dtype(precision))
        if tuple(batch.shape[1:]) != tuple(self.input_shape):
            raise ModelError(
                f"predict_classes expects a (batch, *{self.input_shape}) "
                f"array, got {batch.shape}")
        outputs = self.forward(batch, precision)
        matrix = outputs.reshape(batch.shape[0], -1)
        return np.argmax(matrix, axis=1), outputs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid.
        return (f"SequentialModel(name={self.name!r}, layers={self.num_layers}, "
                f"parameters={self.num_parameters})")
