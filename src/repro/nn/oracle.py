"""Annotation-oracle object detector.

The paper's evaluation treats the reference NN as a black box that returns
the correct object labels for every frame it is given; accuracy losses come
exclusively from frames that were *not* given to the NN and inherited stale
labels.  The oracle detector reproduces that role by reading the synthetic
scene's ground-truth timeline, with an optional per-frame error rate for
sensitivity studies (ablations on imperfect detectors).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


from ..contracts import validate_precision
from ..errors import ModelError
from ..rng import make_rng
from ..video.events import EventTimeline, LabelSet, NO_LABEL


class ObjectDetector:
    """Interface of per-frame object detectors used by the pipeline."""

    #: Human-readable detector name.
    name: str = "detector"

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        """Return the set of object labels present in the frame."""
        raise NotImplementedError

    def detect_batch(self, frame_indices: Sequence[int],
                     frames: Optional[Sequence] = None) -> List[LabelSet]:
        """Label several frames at once.

        The default implementation visits the frames one by one in order —
        which keeps stateful detectors (e.g. the oracle's sequential error
        process) byte-identical between batched and per-frame use.  Detectors
        backed by the numpy NN engine override this with a genuinely batched
        forward pass (:class:`NNDetector`).

        Args:
            frame_indices: Frame indices to label.
            frames: Optional per-frame pixel data, aligned with
                ``frame_indices``.

        Returns:
            One label set per requested frame, in order.
        """
        if frames is None:
            frames = [None] * len(frame_indices)
        if len(frames) != len(frame_indices):
            raise ModelError(
                f"detect_batch got {len(frame_indices)} indices but "
                f"{len(frames)} frames")
        return [self.detect(int(index), frame)
                for index, frame in zip(frame_indices, frames)]


class OracleDetector(ObjectDetector):
    """Detector that reads labels from the ground-truth timeline.

    Args:
        timeline: Ground-truth event timeline of the video being analysed.
        error_rate: Probability that the detector mislabels a frame (drops or
            hallucinates one object class).  ``0`` reproduces the paper's
            assumption of a perfect reference NN.
        label_pool: Classes the detector may hallucinate when it errs;
            defaults to the labels present in the timeline.
        seed: Seed of the error process.
    """

    name = "oracle"

    def __init__(self, timeline: EventTimeline, error_rate: float = 0.0,
                 label_pool: Optional[Iterable[str]] = None,
                 seed: int = 0) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ModelError(f"error_rate must be in [0, 1], got {error_rate}")
        self.timeline = timeline
        self.error_rate = float(error_rate)
        pool = set(label_pool) if label_pool is not None else set(timeline.object_labels)
        self._label_pool = sorted(pool) if pool else ["object"]
        self._rng = make_rng(seed, "oracle-detector")

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        """Labels of ``frame_index`` (possibly perturbed by the error model)."""
        truth = self.timeline.labels_at(frame_index)
        if self.error_rate <= 0.0 or self._rng.random() >= self.error_rate:
            return truth
        # Error: either drop one present label or hallucinate an absent one.
        present = sorted(truth)
        if present and self._rng.random() < 0.5:
            dropped = present[int(self._rng.integers(len(present)))]
            return frozenset(label for label in present if label != dropped)
        absent = [label for label in self._label_pool if label not in truth]
        if not absent:
            return truth
        added = absent[int(self._rng.integers(len(absent)))]
        return frozenset(list(truth) + [added])


class ConstantDetector(ObjectDetector):
    """Detector that always returns the same label set (tests and ablations)."""

    name = "constant"

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._labels: LabelSet = frozenset(labels)

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        return self._labels


class NNDetector(ObjectDetector):
    """Detector backed by the numpy NN engine (YoloLite by default).

    Frames are classified by the network; the predicted class becomes the
    frame's label set (``background`` maps to the empty set, mirroring the
    paper's "no object of interest" outcome).  :meth:`detect_batch` feeds
    the frames through the batched forward path in configurable chunks,
    which is how the dataflow operators and the analysis pipeline amortise
    the per-layer dispatch overhead.

    Args:
        model: A classifier with an attached ``classes`` tuple (see
            :func:`repro.nn.yolo_lite.build_yolo_lite`).
        background_label: Class name treated as "nothing detected".
        batch_size: Frames per batched forward pass.
        precision: Numeric mode of the forward pass — ``"exact"`` (default)
            or ``"fast"`` (float32 under the tolerance contract).
    """

    name = "yolo-lite"

    def __init__(self, model, background_label: str = "background",
                 batch_size: int = 32, precision: str = "exact") -> None:
        from .yolo_lite import classify_frames  # local import avoids cycles
        if getattr(model, "classes", None) is None:
            raise ModelError("NNDetector needs a model with an attached class list")
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.background_label = background_label
        self.batch_size = int(batch_size)
        self.precision = validate_precision(precision)
        self._classify_frames = classify_frames

    def _to_labels(self, label: str) -> LabelSet:
        if label == self.background_label:
            return NO_LABEL
        return frozenset({label})

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        return self.detect_batch([frame_index], [frame_data])[0]

    def detect_batch(self, frame_indices: Sequence[int],
                     frames: Optional[Sequence] = None) -> List[LabelSet]:
        if frames is None or any(frame is None for frame in frames):
            raise ModelError(f"{self.name} needs frame pixel data to detect")
        if len(frames) != len(frame_indices):
            raise ModelError(
                f"detect_batch got {len(frame_indices)} indices but "
                f"{len(frames)} frames")
        labels, _ = self._classify_frames(self.model, list(frames),
                                          batch_size=self.batch_size,
                                          precision=self.precision)
        return [self._to_labels(label) for label in labels]


def detect_many(detector: ObjectDetector,
                frame_indices: Sequence[int]) -> dict:
    """Run a detector over many frame indices, returning ``{index: labels}``."""
    return {int(index): detector.detect(int(index)) for index in frame_indices}
