"""Annotation-oracle object detector.

The paper's evaluation treats the reference NN as a black box that returns
the correct object labels for every frame it is given; accuracy losses come
exclusively from frames that were *not* given to the NN and inherited stale
labels.  The oracle detector reproduces that role by reading the synthetic
scene's ground-truth timeline, with an optional per-frame error rate for
sensitivity studies (ablations on imperfect detectors).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..rng import make_rng
from ..video.events import EventTimeline, LabelSet, NO_LABEL


class ObjectDetector:
    """Interface of per-frame object detectors used by the pipeline."""

    #: Human-readable detector name.
    name: str = "detector"

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        """Return the set of object labels present in the frame."""
        raise NotImplementedError


class OracleDetector(ObjectDetector):
    """Detector that reads labels from the ground-truth timeline.

    Args:
        timeline: Ground-truth event timeline of the video being analysed.
        error_rate: Probability that the detector mislabels a frame (drops or
            hallucinates one object class).  ``0`` reproduces the paper's
            assumption of a perfect reference NN.
        label_pool: Classes the detector may hallucinate when it errs;
            defaults to the labels present in the timeline.
        seed: Seed of the error process.
    """

    name = "oracle"

    def __init__(self, timeline: EventTimeline, error_rate: float = 0.0,
                 label_pool: Optional[Iterable[str]] = None,
                 seed: int = 0) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ModelError(f"error_rate must be in [0, 1], got {error_rate}")
        self.timeline = timeline
        self.error_rate = float(error_rate)
        pool = set(label_pool) if label_pool is not None else set(timeline.object_labels)
        self._label_pool = sorted(pool) if pool else ["object"]
        self._rng = make_rng(seed, "oracle-detector")

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        """Labels of ``frame_index`` (possibly perturbed by the error model)."""
        truth = self.timeline.labels_at(frame_index)
        if self.error_rate <= 0.0 or self._rng.random() >= self.error_rate:
            return truth
        # Error: either drop one present label or hallucinate an absent one.
        present = sorted(truth)
        if present and self._rng.random() < 0.5:
            dropped = present[int(self._rng.integers(len(present)))]
            return frozenset(label for label in present if label != dropped)
        absent = [label for label in self._label_pool if label not in truth]
        if not absent:
            return truth
        added = absent[int(self._rng.integers(len(absent)))]
        return frozenset(list(truth) + [added])


class ConstantDetector(ObjectDetector):
    """Detector that always returns the same label set (tests and ablations)."""

    name = "constant"

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._labels: LabelSet = frozenset(labels)

    def detect(self, frame_index: int, frame_data=None) -> LabelSet:
        return self._labels


def detect_many(detector: ObjectDetector,
                frame_indices: Sequence[int]) -> dict:
    """Run a detector over many frame indices, returning ``{index: labels}``."""
    return {int(index): detector.detect(int(index)) for index in frame_indices}
