"""Neurosurgeon-style NN partitioning between edge and cloud.

The paper's NN deployment service can "deploy a subset of the layers in the
edge engine and the rest in the cloud engine", citing Neurosurgeon (Kang et
al., 2017).  This module implements that algorithm: enumerate every layer
boundary as a candidate split point, estimate end-to-end latency as

    edge compute (layers < split)
    + transfer of the split activation over the edge->cloud link
    + cloud compute (layers >= split)

and pick the split with the lowest latency.  Split 0 means "everything in
the cloud" (the raw input is shipped), split ``num_layers`` means
"everything on the edge" (only the final labels are shipped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ModelError
from .model import SequentialModel
from .profiler import CLOUD_DEVICE, EDGE_DEVICE, DeviceSpec, ModelProfiler


@dataclass(frozen=True)
class SplitCandidate:
    """Latency breakdown of one candidate split point.

    Attributes:
        split_index: Number of layers executed on the edge.
        edge_ms: Edge compute time.
        transfer_ms: Time to ship the boundary activation to the cloud.
        cloud_ms: Cloud compute time.
        transfer_bytes: Size of the shipped activation.
    """

    split_index: int
    edge_ms: float
    transfer_ms: float
    cloud_ms: float
    transfer_bytes: int

    @property
    def total_ms(self) -> float:
        """End-to-end latency of this split."""
        return self.edge_ms + self.transfer_ms + self.cloud_ms


@dataclass(frozen=True)
class PartitionDecision:
    """Result of the partitioning search.

    Attributes:
        best: The lowest-latency split.
        candidates: Every evaluated split, in split-index order.
        edge_only_ms: Latency of running everything on the edge.
        cloud_only_ms: Latency of running everything in the cloud.
    """

    best: SplitCandidate
    candidates: List[SplitCandidate]
    edge_only_ms: float
    cloud_only_ms: float

    @property
    def speedup_over_edge(self) -> float:
        """Latency improvement of the best split over edge-only execution."""
        if self.best.total_ms <= 0:
            return float("inf")
        return self.edge_only_ms / self.best.total_ms

    @property
    def speedup_over_cloud(self) -> float:
        """Latency improvement of the best split over cloud-only execution."""
        if self.best.total_ms <= 0:
            return float("inf")
        return self.cloud_only_ms / self.best.total_ms


class NeurosurgeonPartitioner:
    """Latency-optimal layer partitioning between an edge and a cloud device.

    Args:
        model: The reference network.
        edge_device: Edge compute capability.
        cloud_device: Cloud compute capability.
        input_bytes: Size of the raw model input as shipped to the cloud when
            the split is 0; defaults to the float32 input tensor size.
    """

    def __init__(self, model: SequentialModel,
                 edge_device: DeviceSpec = EDGE_DEVICE,
                 cloud_device: DeviceSpec = CLOUD_DEVICE,
                 input_bytes: Optional[int] = None) -> None:
        self.model = model
        self.edge_device = edge_device
        self.cloud_device = cloud_device
        profiler = ModelProfiler(model)
        self._edge_profile = profiler.analytical_profile(edge_device)
        self._cloud_profile = profiler.analytical_profile(cloud_device)
        if input_bytes is None:
            size = 1
            for dim in model.input_shape:
                size *= dim
            input_bytes = size * 4
        if input_bytes <= 0:
            raise ModelError("input_bytes must be positive")
        self.input_bytes = int(input_bytes)

    def _boundary_bytes(self, split_index: int) -> int:
        """Bytes crossing the network when splitting before ``split_index``."""
        if split_index == 0:
            return self.input_bytes
        return self._edge_profile[split_index - 1].output_bytes

    def evaluate_split(self, split_index: int, bandwidth_mbps: float,
                       latency_ms: float = 0.0) -> SplitCandidate:
        """Latency breakdown of executing ``split_index`` layers on the edge."""
        if not 0 <= split_index <= self.model.num_layers:
            raise ModelError(
                f"split index {split_index} out of range [0, {self.model.num_layers}]")
        if bandwidth_mbps <= 0:
            raise ModelError("bandwidth_mbps must be positive")
        edge_ms = sum(profile.compute_ms
                      for profile in self._edge_profile[:split_index])
        cloud_ms = sum(profile.compute_ms
                       for profile in self._cloud_profile[split_index:])
        if split_index < self.model.num_layers:
            transfer_bytes = self._boundary_bytes(split_index)
        else:
            # Edge-only execution still ships the final result to the cloud.
            transfer_bytes = self._edge_profile[-1].output_bytes
        transfer_ms = (transfer_bytes * 8) / (bandwidth_mbps * 1e6) * 1e3 + latency_ms
        return SplitCandidate(split_index=split_index, edge_ms=edge_ms,
                              transfer_ms=transfer_ms, cloud_ms=cloud_ms,
                              transfer_bytes=transfer_bytes)

    def decide(self, bandwidth_mbps: float, latency_ms: float = 0.0) -> PartitionDecision:
        """Evaluate every split point and return the best one.

        Args:
            bandwidth_mbps: Edge -> cloud bandwidth.
            latency_ms: One-way network latency added to every transfer.

        Returns:
            The :class:`PartitionDecision` with all candidates.
        """
        candidates = [self.evaluate_split(split, bandwidth_mbps, latency_ms)
                      for split in range(self.model.num_layers + 1)]
        best = min(candidates, key=lambda candidate: candidate.total_ms)
        return PartitionDecision(
            best=best,
            candidates=candidates,
            edge_only_ms=candidates[-1].total_ms,
            cloud_only_ms=candidates[0].total_ms,
        )
