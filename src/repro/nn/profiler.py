"""Per-layer profiling of the reference network.

The NN deployment service (Section III) decides whether to run the whole
network on the edge, the whole network in the cloud, or to split it at a
layer boundary (the Neurosurgeon approach the paper cites).  Those decisions
need, for every layer: its compute cost on each device and the size of its
output activation.  :class:`ModelProfiler` produces exactly that, either
analytically (FLOPs divided by a device's effective FLOP/s rate — fast, used
by the simulated cluster) or empirically (wall-clock measurement of the
numpy engine — used by the micro-benchmarks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional


from ..errors import ModelError
from ..rng import make_rng
from .model import SequentialModel


@dataclass(frozen=True)
class DeviceSpec:
    """Compute capability of a device for NN inference.

    Attributes:
        name: Device name (``"edge"``, ``"cloud"``).
        effective_gflops: Sustained throughput of the device on convolutional
            workloads, in billions of multiply-accumulates per second.
        per_layer_overhead_ms: Fixed scheduling/dispatch overhead per layer.
    """

    name: str
    effective_gflops: float
    per_layer_overhead_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.effective_gflops <= 0:
            raise ModelError("effective_gflops must be positive")
        if self.per_layer_overhead_ms < 0:
            raise ModelError("per_layer_overhead_ms must be >= 0")


#: Calibration mirroring the paper's testbed: an Intel i7 edge desktop and a
#: Xeon cloud server (the cloud node serves the NN faster in the end-to-end
#: evaluation).
EDGE_DEVICE = DeviceSpec(name="edge", effective_gflops=6.0)
CLOUD_DEVICE = DeviceSpec(name="cloud", effective_gflops=45.0)


@dataclass(frozen=True)
class LayerProfile:
    """Cost profile of one layer on one device.

    Attributes:
        index: Layer index.
        name: Layer name.
        compute_ms: Estimated (or measured) execution time in milliseconds.
        output_bytes: Size of the layer's output activation.
        flops: Multiply-accumulate estimate.
    """

    index: int
    name: str
    compute_ms: float
    output_bytes: int
    flops: int


class ModelProfiler:
    """Builds per-layer cost profiles of a :class:`SequentialModel`."""

    def __init__(self, model: SequentialModel) -> None:
        self.model = model

    def analytical_profile(self, device: DeviceSpec) -> List[LayerProfile]:
        """Analytical per-layer profile: FLOPs / device rate + fixed overhead."""
        profiles = []
        for entry in self.model.summary():
            compute_ms = (entry.flops / (device.effective_gflops * 1e9)) * 1e3
            compute_ms += device.per_layer_overhead_ms
            profiles.append(LayerProfile(
                index=entry.index, name=entry.name, compute_ms=compute_ms,
                output_bytes=entry.output_bytes, flops=entry.flops))
        return profiles

    def measured_profile(self, repetitions: int = 3,
                         seed: int = 11) -> List[LayerProfile]:
        """Wall-clock per-layer profile of the numpy engine on this machine.

        Args:
            repetitions: Number of timed forward passes per layer (the
                minimum is reported, the conventional micro-benchmark choice).
            seed: Seed of the random probe input.

        Returns:
            One :class:`LayerProfile` per layer.
        """
        if repetitions < 1:
            raise ModelError("repetitions must be >= 1")
        rng = make_rng(seed, "profiler")
        activation = rng.normal(size=self.model.input_shape)
        profiles = []
        for entry, layer in zip(self.model.summary(), self.model.layers):
            timings = []
            output = None
            for _ in range(repetitions):
                start = time.perf_counter()
                output = layer.forward(activation)
                timings.append((time.perf_counter() - start) * 1e3)
            profiles.append(LayerProfile(
                index=entry.index, name=entry.name, compute_ms=float(min(timings)),
                output_bytes=entry.output_bytes, flops=entry.flops))
            activation = output
        return profiles

    def total_compute_ms(self, device: DeviceSpec) -> float:
        """Total analytical inference latency on ``device``."""
        return sum(profile.compute_ms for profile in self.analytical_profile(device))

    def profile_table(self, devices: Optional[List[DeviceSpec]] = None
                      ) -> List[Dict[str, object]]:
        """Tabular profile across devices (used by the examples and docs)."""
        devices = devices or [EDGE_DEVICE, CLOUD_DEVICE]
        per_device = {device.name: self.analytical_profile(device)
                      for device in devices}
        rows: List[Dict[str, object]] = []
        for entry in self.model.summary():
            row: Dict[str, object] = {
                "layer": entry.name,
                "kind": entry.kind,
                "output_shape": entry.output_shape,
                "output_kb": entry.output_bytes / 1024.0,
                "flops": entry.flops,
            }
            for device in devices:
                row[f"{device.name}_ms"] = per_device[device.name][entry.index].compute_ms
            rows.append(row)
        return rows
