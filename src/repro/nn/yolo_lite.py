"""YoloLite: the reference object-detection network of the reproduction.

The paper uses YOLOv3 as the downstream NN.  Running (or training) a real
YOLOv3 is out of scope for an offline, CPU-only reproduction, so this module
provides **YoloLite**: a deterministic convolutional classifier with the same
*structural* role — an expensive per-frame network whose layers can be
profiled, partitioned between edge and cloud, and executed by the numpy
inference engine.  Frame labels used in the evaluation come from the
annotation oracle (:mod:`repro.nn.oracle`), matching the paper's assumption
that the reference NN produces ground-truth labels for the frames it sees;
YoloLite supplies the compute/activation-size profile that the deployment
and partitioning experiments need.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..contracts import PRECISION_EXACT
from ..errors import ModelError
from ..vision.imageops import normalize_plane, resize, to_grayscale
from .layers import Conv2D, Dense, GlobalAveragePool, MaxPool2D, ReLU, Softmax
from .model import SequentialModel

#: Object classes recognised by the reference network: the classes named in
#: Table I of the paper plus an explicit background class.
DEFAULT_CLASSES: Tuple[str, ...] = (
    "background", "car", "bus", "truck", "person", "boat")

#: Input resolution the paper resizes frames to before YOLO inference.
DEFAULT_INPUT_SIZE = (64, 64)


def build_yolo_lite(input_size: Tuple[int, int] = DEFAULT_INPUT_SIZE,
                    classes: Sequence[str] = DEFAULT_CLASSES,
                    width_multiplier: float = 1.0,
                    seed: int = 7) -> SequentialModel:
    """Build the YoloLite classifier.

    The architecture is a conventional five-stage CNN (conv/relu/pool
    pyramid, global average pooling, two dense layers).  ``width_multiplier``
    scales the channel counts, which is how the tests build throwaway tiny
    models and how ablations explore cheaper reference networks.

    Args:
        input_size: ``(height, width)`` of the grayscale input.
        classes: Output class names.
        width_multiplier: Channel-count scale factor.
        seed: Seed of the deterministic weight initialisation.

    Returns:
        The :class:`SequentialModel`.
    """
    if len(classes) < 2:
        raise ModelError("YoloLite needs at least two classes")
    if width_multiplier <= 0:
        raise ModelError("width_multiplier must be positive")
    height, width = input_size
    if height < 16 or width < 16:
        raise ModelError("input_size must be at least 16x16")

    def channels(base: int) -> int:
        return max(int(round(base * width_multiplier)), 1)

    layers = [
        Conv2D(1, channels(16), kernel_size=3, name="conv1", seed=seed),
        ReLU("relu1"),
        MaxPool2D(2, "pool1"),
        Conv2D(channels(16), channels(32), kernel_size=3, name="conv2", seed=seed),
        ReLU("relu2"),
        MaxPool2D(2, "pool2"),
        Conv2D(channels(32), channels(64), kernel_size=3, name="conv3", seed=seed),
        ReLU("relu3"),
        MaxPool2D(2, "pool3"),
        Conv2D(channels(64), channels(64), kernel_size=3, name="conv4", seed=seed),
        ReLU("relu4"),
        GlobalAveragePool("gap"),
        Dense(channels(64), channels(64), name="fc1", seed=seed),
        ReLU("relu5"),
        Dense(channels(64), len(classes), name="fc2", seed=seed),
        Softmax("softmax"),
    ]
    model = SequentialModel(layers, input_shape=(1, height, width), name="yolo_lite")
    # Attach the class list so downstream components can map argmax -> label.
    model.classes = tuple(classes)  # type: ignore[attr-defined]
    return model


def preprocess_frame(frame_data: np.ndarray,
                     input_size: Tuple[int, int] = DEFAULT_INPUT_SIZE) -> np.ndarray:
    """Convert a raw frame into the model's input tensor.

    The frame is converted to luma, resized to the network input size and
    normalised to zero mean / unit variance, then given a leading channel
    axis.

    Args:
        frame_data: ``(H, W)`` or ``(H, W, 3)`` pixel array.
        input_size: ``(height, width)`` expected by the model.

    Returns:
        Tensor of shape ``(1, height, width)``.
    """
    height, width = input_size
    luma = to_grayscale(frame_data)
    resized = resize(luma, (width, height))
    return normalize_plane(resized)[None, :, :]


def preprocess_frames(frames: Sequence[np.ndarray],
                      input_size: Tuple[int, int] = DEFAULT_INPUT_SIZE
                      ) -> np.ndarray:
    """Convert several raw frames into one batched input tensor.

    Args:
        frames: Pixel arrays (``(H, W)`` or ``(H, W, 3)``, shapes may vary).
        input_size: ``(height, width)`` expected by the model.

    Returns:
        Tensor of shape ``(batch, 1, height, width)``.
    """
    if len(frames) == 0:
        height, width = input_size
        return np.empty((0, 1, height, width))
    return np.stack([preprocess_frame(frame, input_size) for frame in frames])


def classify_frame(model: SequentialModel, frame_data: np.ndarray,
                   precision: str = PRECISION_EXACT) -> Tuple[str, np.ndarray]:
    """Run a frame through the model and return ``(label, probabilities)``."""
    classes = getattr(model, "classes", None)
    if classes is None:
        raise ModelError("model has no attached class list")
    input_height, input_width = model.input_shape[1], model.input_shape[2]
    tensor = preprocess_frame(frame_data, (input_height, input_width))
    index, probabilities = model.predict_class(tensor, precision)
    return classes[index], probabilities


#: Default number of frames fed through the network per batched forward pass.
#: Chosen so the largest activation maps of the default model stay inside the
#: CPU cache; much larger batches go memory-bound and lose the batching win.
DEFAULT_BATCH_SIZE = 16


def classify_frames(model: SequentialModel, frames: Sequence[np.ndarray],
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    precision: str = PRECISION_EXACT
                    ) -> Tuple[List[str], np.ndarray]:
    """Run many frames through the model in batched chunks.

    Args:
        model: The classifier (with an attached ``classes`` list).
        frames: Raw pixel arrays.
        batch_size: Frames per batched forward pass; bounds peak activation
            memory while amortising the per-layer dispatch overhead.
        precision: Numeric mode — ``"exact"`` (default, bit-identical
            float64) or ``"fast"`` (float32 merged GEMMs under the
            tolerance contract).

    Returns:
        ``(labels, probabilities)`` — one label per frame and the stacked
        probability matrix of shape ``(len(frames), num_classes)``.
    """
    classes = getattr(model, "classes", None)
    if classes is None:
        raise ModelError("model has no attached class list")
    if batch_size < 1:
        raise ModelError(f"batch_size must be >= 1, got {batch_size}")
    input_height, input_width = model.input_shape[1], model.input_shape[2]
    labels: List[str] = []
    outputs: List[np.ndarray] = []
    for start in range(0, len(frames), batch_size):
        chunk = frames[start:start + batch_size]
        tensors = preprocess_frames(chunk, (input_height, input_width))
        indices, probabilities = model.predict_classes(tensors, precision)
        labels.extend(classes[int(index)] for index in indices)
        outputs.append(probabilities)
    if not outputs:
        return [], np.empty((0, len(classes)))
    return labels, np.concatenate(outputs, axis=0)


def model_size_bytes(model: SequentialModel, dtype_bytes: int = 4) -> int:
    """Size of the model weights in bytes (used by deployment planning)."""
    return model.num_parameters * dtype_bytes
