"""Multiprocess execution layer.

The simulators and experiment harnesses are single-threaded by design
(deterministic virtual clocks, bit-stable numerics); this package is where
the library crosses process boundaries instead.  Two residents so far:

* the fleet decomposition — per-edge pipeline simulations sharded over a
  ``ProcessPoolExecutor`` with an exact single-pass cloud replay — used by
  :class:`repro.cluster.fleet.FleetOrchestrator` when
  ``SystemConfig.fleet_workers > 1``;
* the workload builder — dataset render/analyze/tune/encode pipelines
  sharded per dataset behind the content-keyed disk cache — used by the
  experiment harnesses when ``SystemConfig.build_workers > 1``.
"""

from .fleet import (EdgeSimResult, EdgeSimTask, empty_edge_result,
                    replay_cloud, run_parallel, simulate_edge,
                    simulate_edge_shard)
from .workloads import (BuildTask, WorkloadBuilder, execute_build_task,
                        task_cache_entries)

__all__ = [
    "EdgeSimResult", "EdgeSimTask", "empty_edge_result", "replay_cloud",
    "run_parallel", "simulate_edge", "simulate_edge_shard",
    "BuildTask", "WorkloadBuilder", "execute_build_task",
    "task_cache_entries",
]
