"""Multiprocess execution layer.

The simulators and experiment harnesses are single-threaded by design
(deterministic virtual clocks, bit-stable numerics); this package is where
the library crosses process boundaries instead.  Residents:

* the fleet decomposition — per-edge pipeline simulations sharded over a
  ``ProcessPoolExecutor`` with an exact single-pass cloud replay — used by
  :class:`repro.cluster.fleet.FleetOrchestrator` when
  ``SystemConfig.fleet_workers > 1``;
* the shard transport — shared-memory (with pickle fallback) movement of
  the packed per-job arrays between the fleet parent and its workers;
* the work-stealing claim protocol — a deterministic shared task queue
  replacing the static per-edge shards, with a replayable steal log;
* the workload builder — dataset render/analyze/tune/encode pipelines
  sharded per dataset behind the content-keyed disk cache — used by the
  experiment harnesses when ``SystemConfig.build_workers > 1``.
"""

from .fleet import (EdgeShardStats, EdgeSimResult, EdgeSimTask,
                    ShardOutcome, ShardWorkerSpec, empty_edge_result,
                    hierarchical_replay_order, replay_cloud, run_fleet_shard,
                    run_parallel, simulate_edge, simulate_edge_shard)
from .stealing import (ClaimBoard, ClaimRecord, StealLog, merge_claims,
                       queue_order, stealing_available)
from .transport import (ArraySpec, PickleTransport, ShardHandle,
                        SharedMemoryTransport, ShardTransport,
                        active_segment_names, make_transport, open_handle,
                        resolve_transport, shm_available, transport)
from .workloads import (BuildTask, WorkloadBuilder, execute_build_task,
                        task_cache_entries)

__all__ = [
    "EdgeShardStats", "EdgeSimResult", "EdgeSimTask", "ShardOutcome",
    "ShardWorkerSpec", "empty_edge_result", "hierarchical_replay_order",
    "replay_cloud", "run_fleet_shard", "run_parallel", "simulate_edge",
    "simulate_edge_shard",
    "ClaimBoard", "ClaimRecord", "StealLog", "merge_claims", "queue_order",
    "stealing_available",
    "ArraySpec", "PickleTransport", "ShardHandle", "SharedMemoryTransport",
    "ShardTransport", "active_segment_names", "make_transport",
    "open_handle", "resolve_transport", "shm_available", "transport",
    "BuildTask", "WorkloadBuilder", "execute_build_task",
    "task_cache_entries",
]
