"""Multiprocess fleet execution: shard per-edge pipelines across processes.

The discrete-event fleet simulation decomposes cleanly along the edge
servers: every :class:`~repro.cluster.fleet.CameraJob` flows through its
edge's *private* resources (camera->edge LAN link, edge compute station,
edge->cloud WAN uplink) before touching the one resource shared by the
whole fleet — the cloud compute station.  Jobs placed on different edges
therefore interact **only** at the cloud tier, which is what makes an
exact parallel decomposition possible:

1. **Workers** (one task per edge server, tasks sharded over a
   ``ProcessPoolExecutor``) simulate stages 1-3 for their edge's jobs on a
   private virtual clock, producing each job's *cloud arrival time* plus
   the edge's tier statistics.  Virtual timestamps inside one edge's
   pipeline are chains of float additions over that edge's own service
   durations, and the shared scheduler only ever *orders* events across
   edges — it never changes their time values — so the isolated per-edge
   simulation reproduces the joint simulation's arrival times bit for bit.
2. **The parent** replays the cloud station once, feeding the collected
   arrivals into a fresh scheduler.  The joint simulation fires
   simultaneous events in insertion order, and a WAN-completion event is
   inserted the moment its transfer *starts* service — so equal-time
   arrivals are replayed ordered by the chain of stage service-start
   times the workers recorded (WAN start, then edge start, then LAN
   start, then the arrival offset, then job index).  Each level resolves
   the tie exactly as the shared scheduler's sequence numbers would; jobs
   still tied through the whole chain have identical timing histories, so
   within one edge FIFO order is job order and across edges the ingest
   events (scheduled in job order) decide — job index again.
3. **The merge** assembles the familiar :class:`FleetReport` from the
   per-edge results (sorted by edge index, i.e. deterministically
   *regardless of worker completion order*) and the cloud replay.

``SystemConfig.fleet_workers == 1`` bypasses all of this and runs the
single-process path unchanged; the parity of the two paths is pinned by
``tests/cluster/test_parallel_fleet.py`` to the same 1e-6 contract as the
serial regression suite.  When process pools are unavailable (restricted
sandboxes), the decomposed simulation runs inline in the parent — same
results, no parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..config import SystemConfig
from ..dataflow.scheduler import EventScheduler, ServiceStation, StationStats
from ..errors import ClusterError
from ..net.contention import ContendedLink
from ..net.link import NetworkLink
from ..perf import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only.
    from ..cluster.fleet import CameraJob, FleetOrchestrator, FleetReport


@dataclass(frozen=True)
class EdgeSimTask:
    """One edge server's share of the fleet, shipped to a worker process.

    Attributes:
        edge_index: The edge server being simulated.
        job_indices: Positions of the jobs in the orchestrator's job list
            (ascending, which is also their submission order).
        jobs: The jobs placed on this edge, aligned with ``job_indices``.
        start_offsets: Per-job arrival offsets, aligned with ``jobs``.
        config: Bandwidths and latencies of the fleet.
        edge_workers: Parallel compute slots of the edge station.
        kill_worker: Fault-injection poison (``WorkerKill`` specs of the
            orchestrator's fault plan): a *worker process* handed this
            task exits hard before simulating, as a real mid-run worker
            crash would.  The parent's inline re-execution ignores the
            flag, so the recovered report is bit-identical.
    """

    edge_index: int
    job_indices: Tuple[int, ...]
    jobs: Tuple["CameraJob", ...]
    start_offsets: Tuple[float, ...]
    config: SystemConfig
    edge_workers: int
    kill_worker: bool = False


@dataclass(frozen=True)
class EdgeSimResult:
    """What one edge's stage-1..3 simulation produced.

    Attributes:
        edge_index: The simulated edge server.
        job_indices: Original job positions, aligned with ``cloud_arrivals``.
        cloud_arrivals: Virtual time each job finished its WAN transfer and
            became ready for cloud compute.
        stage_starts: Per job, the virtual times its WAN transfer, edge
            compute and LAN transfer *started* service — the tie-break
            chain that reproduces the shared scheduler's insertion order
            for simultaneous cloud arrivals.
        lan_stats: Camera->edge link station statistics.
        edge_stats: Edge compute station statistics.
        wan_stats: Edge->cloud uplink station statistics.
        lan_bytes: Bytes moved camera->edge.
        wan_bytes: Bytes moved edge->cloud.
        wan_seconds: Total WAN transfer seconds (uncontended accounting).
        events_processed: Events fired by the edge's private scheduler.
    """

    edge_index: int
    job_indices: Tuple[int, ...]
    cloud_arrivals: Tuple[float, ...]
    stage_starts: Tuple[Tuple[float, float, float], ...]
    lan_stats: StationStats
    edge_stats: StationStats
    wan_stats: StationStats
    lan_bytes: int
    wan_bytes: int
    wan_seconds: float
    events_processed: int


def empty_edge_result(edge_index: int) -> EdgeSimResult:
    """The result of an edge server that received no jobs.

    All-zero statistics: an idle edge contributes empty tiers (utilisation
    0, no queueing) to the merged report rather than being skipped, so
    fleets with more edges than cameras keep one tier entry per server.
    """
    return EdgeSimResult(edge_index=edge_index, job_indices=(),
                         cloud_arrivals=(), stage_starts=(),
                         lan_stats=StationStats(),
                         edge_stats=StationStats(), wan_stats=StationStats(),
                         lan_bytes=0, wan_bytes=0, wan_seconds=0.0,
                         events_processed=0)


def simulate_edge(task: EdgeSimTask) -> EdgeSimResult:
    """Simulate one edge's LAN -> edge compute -> WAN pipeline in isolation.

    This is the worker-side function; it must stay importable at module
    level (and its argument/return types picklable) for the process pool.
    """
    if task.kill_worker and multiprocessing.parent_process() is not None:
        # Injected worker crash: die like a SIGKILL'd process, not an
        # exception the pool could pickle back.  Only ever taken inside a
        # pool worker; the parent's inline (re-)execution runs the
        # simulation normally.
        os._exit(17)
    if not task.jobs:
        return empty_edge_result(task.edge_index)
    config = task.config
    scheduler = EventScheduler()
    lan = ContendedLink(scheduler, NetworkLink(
        name=f"camera-edge:{task.edge_index}",
        bandwidth_mbps=config.camera_edge_bandwidth_mbps,
        latency_ms=config.camera_edge_latency_ms))
    edge = ServiceStation(scheduler, f"edge:{task.edge_index}",
                          capacity=task.edge_workers)
    wan = ContendedLink(scheduler, NetworkLink(
        name=f"edge-cloud:{task.edge_index}",
        bandwidth_mbps=config.edge_cloud_bandwidth_mbps,
        latency_ms=config.edge_cloud_latency_ms))

    arrivals: Dict[int, float] = {}
    starts: Dict[int, Dict[str, float]] = {}
    for job_index, job, offset in zip(task.job_indices, task.jobs,
                                      task.start_offsets):
        _submit_edge_stages(scheduler, lan, edge, wan, job_index, job, offset,
                            arrivals, starts)
    scheduler.run()
    return EdgeSimResult(
        edge_index=task.edge_index,
        job_indices=task.job_indices,
        cloud_arrivals=tuple(arrivals[index] for index in task.job_indices),
        stage_starts=tuple(
            (starts[index]["wan"], starts[index]["edge"], starts[index]["lan"])
            for index in task.job_indices),
        lan_stats=lan.stats,
        edge_stats=edge.stats,
        wan_stats=wan.stats,
        lan_bytes=lan.link.total_bytes,
        wan_bytes=wan.link.total_bytes,
        wan_seconds=wan.link.total_seconds,
        events_processed=scheduler.events_processed,
    )


def _submit_edge_stages(scheduler: EventScheduler, lan: ContendedLink,
                        edge: ServiceStation, wan: ContendedLink,
                        job_index: int, job: "CameraJob", offset: float,
                        arrivals: Dict[int, float],
                        starts: Dict[int, Dict[str, float]]) -> None:
    """Chain one job through LAN -> edge -> WAN, recording its cloud arrival.

    Mirrors :meth:`FleetOrchestrator._submit_job` stage for stage; the cloud
    submission is replaced by recording ``scheduler.now`` at WAN delivery.
    Every stage's *service start* time is also recorded — the instants the
    joint simulation would insert the corresponding completion events, which
    the cloud replay needs to break arrival-time ties exactly.
    """
    job_starts = starts[job_index] = {}

    def _stage_started(stage: str):
        def _record(_: object) -> None:
            job_starts[stage] = scheduler.now
        return _record

    def _arrive_cloud(_: object) -> None:
        arrivals[job_index] = scheduler.now

    def _enter_wan(_: object) -> None:
        wan.submit(job.edge_cloud_bytes,
                   description=job.transfer_description or job.camera,
                   on_complete=_arrive_cloud,
                   on_start=_stage_started("wan"))

    def _enter_edge(_: object) -> None:
        edge.submit(job.edge_seconds, on_complete=_enter_wan,
                    on_start=_stage_started("edge"))

    def _ingest() -> None:
        lan.submit(job.camera_edge_bytes,
                   description=f"ingest:{job.camera}",
                   on_complete=_enter_edge,
                   on_start=_stage_started("lan"))

    scheduler.schedule_at(offset, _ingest)


def simulate_edge_shard(tasks: Sequence[EdgeSimTask]) -> List[EdgeSimResult]:
    """Worker entry point: simulate a batch of edges sequentially."""
    return [simulate_edge(task) for task in tasks]


def replay_cloud(arrivals: Sequence[float], service_seconds: Sequence[float],
                 cloud_workers: int,
                 tie_keys: Sequence[Tuple[float, ...]] = ()
                 ) -> Tuple[List[float], StationStats, int]:
    """Replay the shared cloud station over the collected arrivals.

    Args:
        arrivals: Per-job cloud arrival (WAN completion) time.
        service_seconds: Per-job cloud compute time.
        cloud_workers: Cloud station capacity.
        tie_keys: Optional per-job tuples breaking equal-``arrival`` ties
            — the stage service-*start* times ``(wan, edge, lan, offset)``
            recorded by the edge simulations.  The joint scheduler fires
            simultaneous events in insertion order, and a completion event
            is inserted when its service starts, so sorting tied arrivals
            by start-time chain (job index last) reproduces that order.

    Returns:
        ``(end_seconds per job, cloud station stats, finish events)`` where
        finish events excludes the arrival re-fires (those stand in for the
        workers' WAN-completion events and must not be double counted).
    """
    scheduler = EventScheduler()
    cloud = ServiceStation(scheduler, "cloud", capacity=cloud_workers)
    ends: List[float] = [float("nan")] * len(arrivals)

    def _submit(job_index: int) -> None:
        def _finish(_: object) -> None:
            ends[job_index] = scheduler.now
        cloud.submit(service_seconds[job_index], on_complete=_finish)

    def _insert_arrival(job_index: int) -> None:
        scheduler.schedule_at(arrivals[job_index],
                              lambda job_index=job_index: _submit(job_index))

    def sort_key(index: int):
        # Order of insertion = (insertion instant, then the deeper
        # service-start chain, then job index) — the same order the joint
        # scheduler's sequence numbers impose.
        if tie_keys:
            return (*tie_keys[index], index)
        return (arrivals[index], index)

    # Each arrival event must enter the heap at the instant the joint
    # simulation inserted the corresponding WAN-completion event — its WAN
    # service start — or its sequence number (and hence its order against
    # cloud-completion events firing at the same virtual time, which are
    # inserted mid-run at cloud service start) comes out wrong.  A starter
    # event at the WAN start time performs the insertion; the starters
    # themselves are pre-inserted in tie-chain order so equal start times
    # keep the joint order too.
    for job_index in sorted(range(len(arrivals)), key=sort_key):
        insert_at = tie_keys[job_index][0] if tie_keys else arrivals[job_index]
        scheduler.schedule_at(
            insert_at, lambda job_index=job_index: _insert_arrival(job_index))
    scheduler.run()
    # The starter and arrival events are replay bookkeeping standing in for
    # the workers' WAN-completion events; only cloud completions count.
    finish_events = scheduler.events_processed - 2 * len(arrivals)
    return ends, cloud.stats, finish_events


def run_parallel(orchestrator: "FleetOrchestrator",
                 fleet_workers: int) -> "FleetReport":
    """Execute a fleet simulation across ``fleet_workers`` processes.

    Produces a report equal to ``orchestrator.run()``'s (within float
    reassociation; in practice bit-identical) with per-edge pipelines
    simulated concurrently.  The merge is deterministic regardless of
    worker completion order: results are keyed and combined by edge index.
    """
    from ..cluster.fleet import (FleetReport, JobOutcome, TierReport,
                                 latency_percentiles_of)
    if fleet_workers < 1:
        raise ClusterError(f"fleet_workers must be >= 1, got {fleet_workers}")
    watch = Stopwatch().start()
    jobs = orchestrator.jobs
    assignments = orchestrator.assign()
    offsets = orchestrator._arrival_offsets()

    per_edge: Dict[int, List[int]] = {
        index: [] for index in range(orchestrator.num_edge_servers)}
    for job_index, job in enumerate(jobs):
        per_edge[assignments[job.camera]].append(job_index)
    plan = getattr(orchestrator, "fault_plan", None)
    kill_edges = ({spec.edge_index for spec in plan.worker_kills}
                  if plan is not None else set())
    tasks = [
        EdgeSimTask(
            edge_index=edge_index,
            job_indices=tuple(job_indices),
            jobs=tuple(jobs[index] for index in job_indices),
            start_offsets=tuple(offsets[index] for index in job_indices),
            config=orchestrator.config,
            edge_workers=orchestrator.edge_workers,
            kill_worker=edge_index in kill_edges,
        )
        for edge_index, job_indices in sorted(per_edge.items())
        if job_indices
    ]
    results = _run_edge_tasks(tasks, fleet_workers)
    for edge_index in range(orchestrator.num_edge_servers):
        if edge_index not in results:
            results[edge_index] = empty_edge_result(edge_index)

    arrivals = [0.0] * len(jobs)
    tie_keys: List[Tuple[float, ...]] = [()] * len(jobs)
    for result in results.values():
        for position, (job_index, arrival) in enumerate(
                zip(result.job_indices, result.cloud_arrivals)):
            arrivals[job_index] = arrival
            tie_keys[job_index] = (*result.stage_starts[position],
                                   offsets[job_index])
    ends, cloud_stats, cloud_events = replay_cloud(
        arrivals, [job.cloud_seconds for job in jobs],
        orchestrator.cloud_workers, tie_keys=tie_keys)

    outcomes = [
        JobOutcome(job=job, edge_index=assignments[job.camera],
                   start_seconds=offset, end_seconds=end)
        for job, offset, end in zip(jobs, offsets, ends)
    ]
    makespan = max((outcome.end_seconds for outcome in outcomes), default=0.0)
    latencies = sorted(outcome.latency_seconds for outcome in outcomes)
    percentiles = latency_percentiles_of(latencies)

    ordered = [results[index] for index in sorted(results)]
    tier = orchestrator._tier
    edge_tiers: List[TierReport] = [
        tier(result.edge_stats, orchestrator.edge_workers, makespan)
        for result in ordered]
    wan_tiers: List[TierReport] = [
        tier(result.wan_stats, 1, makespan) for result in ordered]
    cloud_tier = tier(cloud_stats, orchestrator.cloud_workers, makespan)
    events_processed = (sum(result.events_processed for result in ordered)
                        + cloud_events)
    return FleetReport(
        policy=orchestrator.policy,
        num_edge_servers=orchestrator.num_edge_servers,
        num_cameras=len(jobs),
        makespan_seconds=makespan,
        total_frames=sum(job.num_frames for job in jobs),
        frames_for_inference=sum(job.frames_for_inference for job in jobs),
        camera_edge_bytes=sum(result.lan_bytes for result in ordered),
        edge_cloud_bytes=sum(result.wan_bytes for result in ordered),
        edge_busy_seconds=sum(t.busy_seconds for t in edge_tiers),
        cloud_busy_seconds=cloud_tier.busy_seconds,
        wan_transfer_seconds=sum(result.wan_seconds for result in ordered),
        edge_tiers=edge_tiers,
        wan_tiers=wan_tiers,
        cloud_tier=cloud_tier,
        latency_percentiles=percentiles,
        assignments=assignments,
        outcomes=outcomes,
        sim_wall_seconds=watch.stop(),
        events_processed=events_processed,
    )


def _run_edge_tasks(tasks: List[EdgeSimTask],
                    fleet_workers: int) -> Dict[int, EdgeSimResult]:
    """Run the edge tasks over a process pool (inline when unavailable).

    Tasks are sharded round-robin over the workers; results are collected
    as they complete and keyed by edge index, so scheduling and completion
    order cannot affect the merged report.
    """
    shards: List[List[EdgeSimTask]] = [
        tasks[worker::fleet_workers]
        for worker in range(min(fleet_workers, len(tasks)))
    ]
    shards = [shard for shard in shards if shard]
    results: Dict[int, EdgeSimResult] = {}
    if len(shards) <= 1:
        for result in simulate_edge_shard(tasks):
            results[result.edge_index] = result
        return results
    try:
        lost_shards: List[List[EdgeSimTask]] = []
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = {pool.submit(simulate_edge_shard, shard): shard
                       for shard in shards}
            for future in as_completed(futures):
                # A worker dying mid-run (injected WorkerKill, OOM kill,
                # segfault) breaks the whole pool: its own shard and any
                # shard still pending surface BrokenProcessPool here.
                # Collect exactly those and keep every shard that already
                # returned — only the lost work is redone.
                try:
                    shard_results = future.result()
                except BrokenProcessPool:
                    lost_shards.append(futures[future])
                    continue
                for result in shard_results:
                    results[result.edge_index] = result
        # Re-execute the lost shards inline, in deterministic order (the
        # kill poison only fires inside pool workers, so the re-run
        # simulates normally and the merged report is bit-identical).
        for shard in sorted(lost_shards,
                            key=lambda shard: shard[0].edge_index):
            for result in simulate_edge_shard(shard):
                results[result.edge_index] = result
        return results
    except (OSError, PermissionError, RuntimeError):
        # Restricted environments (no /dev/shm, forbidden fork/spawn) fall
        # back to the same decomposed simulation run inline: identical
        # results, just no process-level parallelism.
        results.clear()
        for result in simulate_edge_shard(tasks):
            results[result.edge_index] = result
        return results
