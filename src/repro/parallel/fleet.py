"""Multiprocess fleet execution: shard per-edge pipelines across processes.

The discrete-event fleet simulation decomposes cleanly along the edge
servers: every :class:`~repro.cluster.fleet.CameraJob` flows through its
edge's *private* resources (camera->edge LAN link, edge compute station,
edge->cloud WAN uplink) before touching the one resource shared by the
whole fleet — the cloud compute station.  Jobs placed on different edges
therefore interact **only** at the cloud tier, which is what makes an
exact parallel decomposition possible:

1. **Workers** (one task per edge server, sharded over a
   ``ProcessPoolExecutor``) simulate stages 1-3 for their edge's jobs on a
   private virtual clock, producing each job's *cloud arrival time* plus
   the edge's tier statistics.  Virtual timestamps inside one edge's
   pipeline are chains of float additions over that edge's own service
   durations, and the shared scheduler only ever *orders* events across
   edges — it never changes their time values — so the isolated per-edge
   simulation reproduces the joint simulation's arrival times bit for bit.
2. **The parent** replays the cloud station once, feeding the collected
   arrivals into a fresh scheduler.  The joint simulation fires
   simultaneous events in insertion order, and a WAN-completion event is
   inserted the moment its transfer *starts* service — so equal-time
   arrivals are replayed ordered by the chain of stage service-start
   times the workers recorded (WAN start, then edge start, then LAN
   start, then the arrival offset, then job index).  Each level resolves
   the tie exactly as the shared scheduler's sequence numbers would; jobs
   still tied through the whole chain have identical timing histories, so
   within one edge FIFO order is job order and across edges the ingest
   events (scheduled in job order) decide — job index again.
3. **The merge** assembles the familiar :class:`FleetReport` from the
   per-edge results (sorted by edge index, i.e. deterministically
   *regardless of worker completion order*) and the cloud replay.

Three scale-out axes, all defaulting to the original behaviour and all
preserving the bit-exact parity contract:

* **Transport** (``SystemConfig.fleet_transport``): per-job payloads can
  cross the pool boundary as packed numpy arrays in shared-memory
  segments (:mod:`repro.parallel.transport`) instead of pickled
  dataclasses, and the workers' arrival/tie-chain results come back the
  same way — the hot loop stops serialising arrays entirely.
* **Work stealing** (``SystemConfig.fleet_stealing``): workers claim edge
  tasks from a shared longest-first queue (:mod:`repro.parallel.stealing`)
  instead of taking a static round-robin shard, so a skewed fleet no
  longer waits on its unluckiest worker.  Every run records a replayable
  :class:`~repro.parallel.stealing.StealLog` on
  ``FleetOrchestrator.last_steal_log``.
* **Hierarchical replay** (``SystemConfig.fleet_regions``): the cloud
  replay's arrival ordering is produced region by region (vectorised
  per-region lexsorts over the tie chain) and k-way merged, instead of
  one flat Python sort over all jobs — the region → global merge that
  keeps the parent's single pass from becoming the serial bottleneck.

``SystemConfig.fleet_workers == 1`` bypasses all of this and runs the
single-process path unchanged; the parity of the paths is pinned by
``tests/cluster/test_parallel_fleet.py`` and
``tests/parallel/test_fleet_scaleout.py`` to the same 1e-6 contract as
the serial regression suite.  When process pools are unavailable
(restricted sandboxes), the decomposed simulation runs inline in the
parent — same results, no parallelism.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..config import TRANSPORT_PICKLE, SystemConfig
from ..dataflow.scheduler import EventScheduler, ServiceStation, StationStats
from ..errors import ClusterError
from ..net.contention import ContendedLink
from ..net.link import NetworkLink
from ..perf import Stopwatch
from .stealing import (ClaimBoard, StealLog, merge_claims, queue_order,
                       stealing_available)
from .transport import (ShardHandle, open_handle, resolve_transport,
                        transport)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only.
    from ..cluster.fleet import CameraJob, FleetOrchestrator, FleetReport


@dataclass(frozen=True)
class EdgeSimTask:
    """One edge server's share of the fleet, shipped to a worker process.

    Attributes:
        edge_index: The edge server being simulated.
        job_indices: Positions of the jobs in the orchestrator's job list
            (ascending, which is also their submission order).
        jobs: The jobs placed on this edge, aligned with ``job_indices``.
        start_offsets: Per-job arrival offsets, aligned with ``jobs``.
        config: Bandwidths and latencies of the fleet.
        edge_workers: Parallel compute slots of the edge station.
        kill_worker: Fault-injection poison (``WorkerKill`` specs of the
            orchestrator's fault plan): a *worker process* handed this
            task exits hard before simulating, as a real mid-run worker
            crash would.  The parent's inline re-execution ignores the
            flag, so the recovered report is bit-identical.
    """

    edge_index: int
    job_indices: Tuple[int, ...]
    jobs: Tuple["CameraJob", ...]
    start_offsets: Tuple[float, ...]
    config: SystemConfig
    edge_workers: int
    kill_worker: bool = False


@dataclass(frozen=True)
class EdgeSimResult:
    """What one edge's stage-1..3 simulation produced.

    Attributes:
        edge_index: The simulated edge server.
        job_indices: Original job positions, aligned with ``cloud_arrivals``.
        cloud_arrivals: Virtual time each job finished its WAN transfer and
            became ready for cloud compute.
        stage_starts: Per job, the virtual times its WAN transfer, edge
            compute and LAN transfer *started* service — the tie-break
            chain that reproduces the shared scheduler's insertion order
            for simultaneous cloud arrivals.
        lan_stats: Camera->edge link station statistics.
        edge_stats: Edge compute station statistics.
        wan_stats: Edge->cloud uplink station statistics.
        lan_bytes: Bytes moved camera->edge.
        wan_bytes: Bytes moved edge->cloud.
        wan_seconds: Total WAN transfer seconds (uncontended accounting).
        events_processed: Events fired by the edge's private scheduler.
    """

    edge_index: int
    job_indices: Tuple[int, ...]
    cloud_arrivals: Tuple[float, ...]
    stage_starts: Tuple[Tuple[float, float, float], ...]
    lan_stats: StationStats
    edge_stats: StationStats
    wan_stats: StationStats
    lan_bytes: int
    wan_bytes: int
    wan_seconds: float
    events_processed: int


@dataclass(frozen=True)
class EdgeShardStats:
    """The statistics half of one edge's simulation (scale-out path).

    Under the array transports the per-job numbers (arrivals and the
    stage-start tie chain) travel through the result bundle, so the pool
    channel only carries this small fixed-size record per edge.  The field
    names deliberately mirror :class:`EdgeSimResult` — the report merge
    reads either type.
    """

    edge_index: int
    lan_stats: StationStats
    edge_stats: StationStats
    wan_stats: StationStats
    lan_bytes: int
    wan_bytes: int
    wan_seconds: float
    events_processed: int


def empty_edge_result(edge_index: int) -> EdgeSimResult:
    """The result of an edge server that received no jobs.

    All-zero statistics: an idle edge contributes empty tiers (utilisation
    0, no queueing) to the merged report rather than being skipped, so
    fleets with more edges than cameras keep one tier entry per server.
    """
    return EdgeSimResult(edge_index=edge_index, job_indices=(),
                         cloud_arrivals=(), stage_starts=(),
                         lan_stats=StationStats(),
                         edge_stats=StationStats(), wan_stats=StationStats(),
                         lan_bytes=0, wan_bytes=0, wan_seconds=0.0,
                         events_processed=0)


def simulate_edge(task: EdgeSimTask) -> EdgeSimResult:
    """Simulate one edge's LAN -> edge compute -> WAN pipeline in isolation.

    This is the worker-side function; it must stay importable at module
    level (and its argument/return types picklable) for the process pool.
    """
    if task.kill_worker and multiprocessing.parent_process() is not None:
        # Injected worker crash: die like a SIGKILL'd process, not an
        # exception the pool could pickle back.  Only ever taken inside a
        # pool worker; the parent's inline (re-)execution runs the
        # simulation normally.
        os._exit(17)
    if not task.jobs:
        return empty_edge_result(task.edge_index)
    config = task.config
    scheduler = EventScheduler()
    lan = ContendedLink(scheduler, NetworkLink(
        name=f"camera-edge:{task.edge_index}",
        bandwidth_mbps=config.camera_edge_bandwidth_mbps,
        latency_ms=config.camera_edge_latency_ms))
    edge = ServiceStation(scheduler, f"edge:{task.edge_index}",
                          capacity=task.edge_workers)
    wan = ContendedLink(scheduler, NetworkLink(
        name=f"edge-cloud:{task.edge_index}",
        bandwidth_mbps=config.edge_cloud_bandwidth_mbps,
        latency_ms=config.edge_cloud_latency_ms))

    arrivals: Dict[int, float] = {}
    starts: Dict[int, Dict[str, float]] = {}
    for job_index, job, offset in zip(task.job_indices, task.jobs,
                                      task.start_offsets):
        _submit_edge_stages(scheduler, lan, edge, wan, job_index, job, offset,
                            arrivals, starts)
    scheduler.run()
    return EdgeSimResult(
        edge_index=task.edge_index,
        job_indices=task.job_indices,
        cloud_arrivals=tuple(arrivals[index] for index in task.job_indices),
        stage_starts=tuple(
            (starts[index]["wan"], starts[index]["edge"], starts[index]["lan"])
            for index in task.job_indices),
        lan_stats=lan.stats,
        edge_stats=edge.stats,
        wan_stats=wan.stats,
        lan_bytes=lan.link.total_bytes,
        wan_bytes=wan.link.total_bytes,
        wan_seconds=wan.link.total_seconds,
        events_processed=scheduler.events_processed,
    )


def _submit_edge_stages(scheduler: EventScheduler, lan: ContendedLink,
                        edge: ServiceStation, wan: ContendedLink,
                        job_index: int, job: "CameraJob", offset: float,
                        arrivals: Dict[int, float],
                        starts: Dict[int, Dict[str, float]]) -> None:
    """Chain one job through LAN -> edge -> WAN from its dataclass fields."""
    _submit_stage_chain(scheduler, lan, edge, wan, job_index, offset,
                        arrivals, starts,
                        camera_edge_bytes=job.camera_edge_bytes,
                        edge_seconds=job.edge_seconds,
                        edge_cloud_bytes=job.edge_cloud_bytes,
                        lan_description=f"ingest:{job.camera}",
                        wan_description=(job.transfer_description
                                         or job.camera))


def _submit_stage_chain(scheduler: EventScheduler, lan: ContendedLink,
                        edge: ServiceStation, wan: ContendedLink,
                        job_index: int, offset: float,
                        arrivals: Dict[int, float],
                        starts: Dict[int, Dict[str, float]], *,
                        camera_edge_bytes: int, edge_seconds: float,
                        edge_cloud_bytes: int, lan_description: str = "",
                        wan_description: str = "") -> None:
    """Chain one job through LAN -> edge -> WAN, recording its cloud arrival.

    Mirrors :meth:`FleetOrchestrator._submit_job` stage for stage; the cloud
    submission is replaced by recording ``scheduler.now`` at WAN delivery.
    Every stage's *service start* time is also recorded — the instants the
    joint simulation would insert the corresponding completion events, which
    the cloud replay needs to break arrival-time ties exactly.  Takes plain
    scalars so the array-transport workers can feed it straight from their
    shared-memory views without materialising ``CameraJob`` objects (the
    descriptions are transfer-record labels only; no statistic depends on
    them).
    """
    job_starts = starts[job_index] = {}

    def _stage_started(stage: str):
        def _record(_: object) -> None:
            job_starts[stage] = scheduler.now
        return _record

    def _arrive_cloud(_: object) -> None:
        arrivals[job_index] = scheduler.now

    def _enter_wan(_: object) -> None:
        wan.submit(edge_cloud_bytes,
                   description=wan_description,
                   on_complete=_arrive_cloud,
                   on_start=_stage_started("wan"))

    def _enter_edge(_: object) -> None:
        edge.submit(edge_seconds, on_complete=_enter_wan,
                    on_start=_stage_started("edge"))

    def _ingest() -> None:
        lan.submit(camera_edge_bytes,
                   description=lan_description,
                   on_complete=_enter_edge,
                   on_start=_stage_started("lan"))

    scheduler.schedule_at(offset, _ingest)


def simulate_edge_shard(tasks: Sequence[EdgeSimTask]) -> List[EdgeSimResult]:
    """Worker entry point: simulate a batch of edges sequentially."""
    return [simulate_edge(task) for task in tasks]


# --------------------------------------------------------------------- #
# Array-transport shard execution (shared memory / stealing paths)
# --------------------------------------------------------------------- #

#: Names of the packed per-job columns inside a jobs bundle, row-grouped by
#: task (``task_ptr`` slices select one edge's rows).
_JOB_COLUMNS = ("job_index", "offset", "camera_edge_bytes", "edge_seconds",
                "edge_cloud_bytes")

#: Names of the per-job result columns (indexed by *original* job index).
_RESULT_COLUMNS = ("arrival", "wan_start", "edge_start", "lan_start")


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Everything one pool worker needs to simulate its share of the fleet.

    Attributes:
        worker_slot: This worker's position in the pool (steal-log id).
        jobs_handle: The packed per-job columns (see ``_JOB_COLUMNS``).
        results_handle: Parent-allocated result bundle the worker writes in
            place (shared transports), or ``None`` — results then return
            through the pool channel.
        task_edges: Edge index of every task.
        task_ptr: CSR row pointers: task ``t`` owns job rows
            ``task_ptr[t]:task_ptr[t + 1]``.
        assigned: Task ids this worker runs (static shards and replays).
        claim_path: Claim-board cursor path — when set, the worker ignores
            ``assigned`` and claims queue positions dynamically.
        queue: Task id at each queue position (claim mode only).
        config: Bandwidths and latencies of the fleet.
        edge_workers: Parallel compute slots per edge station.
        kill_edges: Fault-injection poison: a pool worker beginning one of
            these edges exits hard (the parent's inline re-execution
            simulates normally).
    """

    worker_slot: int
    jobs_handle: ShardHandle
    results_handle: Optional[ShardHandle]
    task_edges: Tuple[int, ...]
    task_ptr: Tuple[int, ...]
    assigned: Tuple[int, ...]
    claim_path: Optional[str]
    queue: Tuple[int, ...]
    config: SystemConfig
    edge_workers: int
    kill_edges: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard worker sends back through the pool channel.

    Attributes:
        worker_slot: The reporting worker.
        stats: Per-task statistics, in execution order.
        claims: ``(claim_seq, edge_index)`` pairs (claim mode only).
        results: Per-job result columns for the worker's rows, keyed as
            ``{"job_index": ..., "arrival": ..., ...}`` — only when no
            shared result bundle was available (pickle transport).
    """

    worker_slot: int
    stats: Tuple[EdgeShardStats, ...]
    claims: Tuple[Tuple[int, int], ...]
    results: Optional[Dict[str, np.ndarray]]


def _simulate_rows(edge_index: int, config: SystemConfig, edge_workers: int,
                   job_index: np.ndarray, offsets: np.ndarray,
                   camera_edge_bytes: np.ndarray, edge_seconds: np.ndarray,
                   edge_cloud_bytes: np.ndarray
                   ) -> Tuple[EdgeShardStats, Dict[str, List[float]]]:
    """Simulate one edge's pipeline straight from packed column slices.

    Scalars are pulled out of the arrays as native Python values before
    entering the event chain, so every downstream float operation is the
    same operation (on the same bits) the dataclass path performs — the
    transport changes how numbers travel, never what they are.
    """
    scheduler = EventScheduler()
    lan = ContendedLink(scheduler, NetworkLink(
        name=f"camera-edge:{edge_index}",
        bandwidth_mbps=config.camera_edge_bandwidth_mbps,
        latency_ms=config.camera_edge_latency_ms))
    edge = ServiceStation(scheduler, f"edge:{edge_index}",
                          capacity=edge_workers)
    wan = ContendedLink(scheduler, NetworkLink(
        name=f"edge-cloud:{edge_index}",
        bandwidth_mbps=config.edge_cloud_bandwidth_mbps,
        latency_ms=config.edge_cloud_latency_ms))
    arrivals: Dict[int, float] = {}
    starts: Dict[int, Dict[str, float]] = {}
    indices = [int(value) for value in job_index]
    for row, index in enumerate(indices):
        _submit_stage_chain(
            scheduler, lan, edge, wan, index, float(offsets[row]),
            arrivals, starts,
            camera_edge_bytes=int(camera_edge_bytes[row]),
            edge_seconds=float(edge_seconds[row]),
            edge_cloud_bytes=int(edge_cloud_bytes[row]))
    scheduler.run()
    stats = EdgeShardStats(
        edge_index=edge_index,
        lan_stats=lan.stats, edge_stats=edge.stats, wan_stats=wan.stats,
        lan_bytes=lan.link.total_bytes, wan_bytes=wan.link.total_bytes,
        wan_seconds=wan.link.total_seconds,
        events_processed=scheduler.events_processed)
    columns: Dict[str, List[float]] = {
        "job_index": [float(index) for index in indices],
        "arrival": [arrivals[index] for index in indices],
        "wan_start": [starts[index]["wan"] for index in indices],
        "edge_start": [starts[index]["edge"] for index in indices],
        "lan_start": [starts[index]["lan"] for index in indices],
    }
    return stats, columns


def run_fleet_shard(spec: ShardWorkerSpec) -> ShardOutcome:
    """Pool-worker entry point for the array-transport paths.

    Must stay importable at module level for the process pool.  Runs the
    worker's tasks — the static ``assigned`` list, or dynamic claims from
    the shared queue — writing per-job results into the shared bundle when
    one exists and returning them through the channel otherwise.
    """
    stats: List[EdgeShardStats] = []
    claims: List[Tuple[int, int]] = []
    local: Dict[str, List[float]] = {name: [] for name in
                                     ("job_index",) + _RESULT_COLUMNS}
    board = (ClaimBoard(spec.claim_path) if spec.claim_path is not None
             else None)

    def _tasks():
        if board is not None:
            while True:
                seq = board.claim_next()
                if seq is None:
                    return
                yield seq, spec.queue[seq]
        else:
            yield from enumerate(spec.assigned)

    with open_handle(spec.jobs_handle) as jobs:
        results_attachment = (open_handle(spec.results_handle)
                              if spec.results_handle is not None else None)
        try:
            shared = (results_attachment.arrays
                      if results_attachment is not None else None)
            for seq, task in _tasks():
                edge_index = spec.task_edges[task]
                if (edge_index in spec.kill_edges
                        and multiprocessing.parent_process() is not None):
                    # Injected worker crash (see simulate_edge): die hard,
                    # mid-claim — exactly when a real crash would strand
                    # claimed-but-unfinished work for the parent to redo.
                    os._exit(17)
                claims.append((seq, edge_index))
                low, high = spec.task_ptr[task], spec.task_ptr[task + 1]
                shard_stats, columns = _simulate_rows(
                    edge_index, spec.config, spec.edge_workers,
                    jobs["job_index"][low:high], jobs["offset"][low:high],
                    jobs["camera_edge_bytes"][low:high],
                    jobs["edge_seconds"][low:high],
                    jobs["edge_cloud_bytes"][low:high])
                stats.append(shard_stats)
                rows = [int(value) for value in columns["job_index"]]
                if shared is not None:
                    # Disjoint slots per job, so concurrent writers never
                    # race: scatter straight into the parent's memory.
                    for name in _RESULT_COLUMNS:
                        shared[name][rows] = columns[name]
                else:
                    for name in local:
                        local[name].extend(columns[name])
        finally:
            if results_attachment is not None:
                results_attachment.close()
    returned = (None if spec.results_handle is not None
                else {name: np.asarray(values, dtype=np.float64)
                      for name, values in local.items()})
    return ShardOutcome(worker_slot=spec.worker_slot, stats=tuple(stats),
                        claims=tuple(claims), results=returned)


def _pack_job_columns(jobs: Sequence["CameraJob"], offsets: Sequence[float],
                      edge_job_lists: Sequence[Tuple[int, Sequence[int]]]
                      ) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
    """Pack the per-job fields into task-grouped columns plus CSR pointers."""
    order: List[int] = []
    pointers = [0]
    for _, job_indices in edge_job_lists:
        order.extend(job_indices)
        pointers.append(len(order))
    columns = {
        "job_index": np.asarray(order, dtype=np.int64),
        "offset": np.asarray([offsets[index] for index in order],
                             dtype=np.float64),
        "camera_edge_bytes": np.asarray(
            [jobs[index].camera_edge_bytes for index in order],
            dtype=np.int64),
        "edge_seconds": np.asarray(
            [jobs[index].edge_seconds for index in order], dtype=np.float64),
        "edge_cloud_bytes": np.asarray(
            [jobs[index].edge_cloud_bytes for index in order],
            dtype=np.int64),
    }
    return columns, tuple(pointers)


def _run_shard_fleet(jobs: Sequence["CameraJob"],
                     edge_job_lists: Sequence[Tuple[int, Sequence[int]]],
                     offsets: Sequence[float], config: SystemConfig,
                     edge_workers: int, fleet_workers: int,
                     transport_mode: str, stealing: bool,
                     replay_log: Optional[StealLog],
                     kill_edges: FrozenSet[int]
                     ) -> Tuple[Dict[int, EdgeShardStats],
                                Dict[str, np.ndarray], Optional[StealLog]]:
    """Execute the edge phase over the array transport.

    Returns ``(stats by edge, result columns by name, steal log)``.  The
    result columns are indexed by original job position and are owned by
    the caller (copied out of any shared segment before cleanup).
    """
    num_tasks = len(edge_job_lists)
    num_jobs = len(jobs)
    results = {name: np.zeros(num_jobs, dtype=np.float64)
               for name in _RESULT_COLUMNS}
    stats_by_edge: Dict[int, EdgeShardStats] = {}
    if num_tasks == 0:
        return stats_by_edge, results, None

    columns, task_ptr = _pack_job_columns(jobs, offsets, edge_job_lists)
    task_edges = tuple(edge for edge, _ in edge_job_lists)
    # Wall-clock cost of simulating a task scales with its event count,
    # i.e. its job count — the deterministic estimate the queue is built
    # from.
    queue = tuple(queue_order([len(job_indices)
                               for _, job_indices in edge_job_lists]))
    task_of_edge = {edge: task for task, edge in enumerate(task_edges)}

    board: Optional[ClaimBoard] = None
    steal_log: Optional[StealLog] = None
    with transport(transport_mode) as channel:
        try:
            jobs_handle = channel.publish(columns)
            results_handle = (channel.allocate(
                {name: ("float64", (num_jobs,)) for name in _RESULT_COLUMNS})
                if channel.is_shared else None)

            def _spec(slot: int, assigned: Tuple[int, ...],
                      claim_path: Optional[str]) -> ShardWorkerSpec:
                return ShardWorkerSpec(
                    worker_slot=slot, jobs_handle=jobs_handle,
                    results_handle=results_handle, task_edges=task_edges,
                    task_ptr=task_ptr, assigned=assigned,
                    claim_path=claim_path, queue=queue, config=config,
                    edge_workers=edge_workers, kill_edges=kill_edges)

            if replay_log is not None:
                num_workers = max(replay_log.num_workers, 1)
                specs = [
                    _spec(slot, tuple(task_of_edge[edge] for edge in
                                      replay_log.tasks_of(slot)), None)
                    for slot in range(num_workers)
                ]
            elif stealing:
                num_workers = min(fleet_workers, num_tasks)
                board = ClaimBoard.create(num_tasks)
                specs = [_spec(slot, (), board.path)
                         for slot in range(num_workers)]
            else:
                num_workers = min(fleet_workers, num_tasks)
                # Static shards over the queue order: position k goes to
                # worker k % num_workers — the baseline the steal log's
                # ``steals`` counter is defined against.
                specs = [_spec(slot, tuple(queue[slot::num_workers]), None)
                         for slot in range(num_workers)]

            outcomes: List[ShardOutcome] = []
            pool_broke = False
            if len(specs) <= 1:
                outcomes.append(run_fleet_shard(specs[0]))
            else:
                try:
                    with ProcessPoolExecutor(max_workers=len(specs)) as pool:
                        futures = [pool.submit(run_fleet_shard, spec)
                                   for spec in specs]
                        for future in as_completed(futures):
                            # A worker dying mid-run (injected WorkerKill,
                            # OOM kill, segfault) breaks the whole pool;
                            # keep every outcome that already returned and
                            # redo only the lost tasks below.
                            try:
                                outcomes.append(future.result())
                            except BrokenProcessPool:
                                pool_broke = True
                except (OSError, PermissionError, RuntimeError):
                    # Restricted environments (forbidden fork/spawn) fall
                    # back to the same decomposed simulation run inline:
                    # identical results, just no process-level parallelism.
                    pool_broke = True
                    outcomes = []

            for outcome in outcomes:
                for shard_stats in outcome.stats:
                    stats_by_edge[shard_stats.edge_index] = shard_stats
                if outcome.results is not None:
                    rows = outcome.results["job_index"].astype(np.int64)
                    for name in _RESULT_COLUMNS:
                        results[name][rows] = outcome.results[name]

            if results_handle is not None:
                shared = channel.attach(results_handle)
                for name in _RESULT_COLUMNS:
                    # Copy out before the segment is unlinked (the caller
                    # owns plain arrays, never shared views) and before
                    # any inline redo below, which must not be clobbered
                    # by the segment's unwritten zeros.
                    np.copyto(results[name], shared[name])

            # Redo whatever the pool lost, inline and in deterministic
            # order (kill poison only fires inside pool workers, and the
            # per-task values are pure functions of the inputs, so
            # rewriting an already-written slot is idempotent).
            missing = sorted(edge for edge in task_edges
                             if edge not in stats_by_edge)
            if missing:
                jobs_view = channel.attach(jobs_handle)
                for edge in missing:
                    task = task_of_edge[edge]
                    low, high = task_ptr[task], task_ptr[task + 1]
                    shard_stats, recomputed = _simulate_rows(
                        edge, config, edge_workers,
                        jobs_view["job_index"][low:high],
                        jobs_view["offset"][low:high],
                        jobs_view["camera_edge_bytes"][low:high],
                        jobs_view["edge_seconds"][low:high],
                        jobs_view["edge_cloud_bytes"][low:high])
                    stats_by_edge[edge] = shard_stats
                    rows = [int(value) for value in recomputed["job_index"]]
                    for name in _RESULT_COLUMNS:
                        results[name][rows] = recomputed[name]

            if replay_log is not None:
                steal_log = replay_log
            elif stealing and not pool_broke:
                claimed = [(outcome.worker_slot, outcome.claims)
                           for outcome in outcomes]
                if sum(len(claims) for _, claims in claimed) == num_tasks:
                    steal_log = merge_claims(claimed, len(specs))
                # else: a worker vanished with its claims; the recovered
                # run has no complete provenance to record.
        finally:
            if board is not None:
                board.remove()
    return stats_by_edge, results, steal_log


# --------------------------------------------------------------------- #
# Cloud replay
# --------------------------------------------------------------------- #

def hierarchical_replay_order(job_edges: Sequence[int],
                              wan_starts: np.ndarray,
                              edge_starts: np.ndarray,
                              lan_starts: np.ndarray,
                              offsets: np.ndarray,
                              num_edge_servers: int,
                              regions: int) -> List[int]:
    """The cloud replay's insertion order via a region -> global merge.

    Level one: jobs are partitioned by the *region* of their edge
    (``edge_index * regions // num_edge_servers`` — contiguous edge
    blocks), and each region's jobs are sorted by the tie chain with one
    vectorised ``np.lexsort`` (stable, so equal chains fall back to
    ascending job index exactly like the flat path's trailing index key).
    Level two: the per-region runs are k-way merged on the same key.  The
    merged order is **identical** to the flat
    ``sorted(range(n), key=tie_chain)`` — the hierarchy changes the
    *cost* of producing the order (k short sorts plus an ``O(n log k)``
    merge instead of one ``O(n log n)`` Python tuple sort), never the
    order itself.
    """
    edges = np.asarray(job_edges, dtype=np.int64)
    count = int(edges.size)
    if count == 0:
        return []
    regions = max(1, min(int(regions), int(num_edge_servers)))
    region_ids = (edges * regions) // int(num_edge_servers)
    runs: List[np.ndarray] = []
    for region in range(regions):
        members = np.flatnonzero(region_ids == region)
        if members.size == 0:
            continue
        permutation = np.lexsort((members, offsets[members],
                                  lan_starts[members], edge_starts[members],
                                  wan_starts[members]))
        runs.append(members[permutation])
    if len(runs) == 1:
        return [int(index) for index in runs[0]]

    def chain(index: np.integer) -> Tuple[float, float, float, float, int]:
        return (float(wan_starts[index]), float(edge_starts[index]),
                float(lan_starts[index]), float(offsets[index]), int(index))

    return [int(index) for index in
            heapq.merge(*[list(run) for run in runs], key=chain)]


def replay_cloud(arrivals: Sequence[float], service_seconds: Sequence[float],
                 cloud_workers: int,
                 tie_keys: Sequence[Tuple[float, ...]] = (),
                 order: Optional[Sequence[int]] = None,
                 insert_times: Optional[Sequence[float]] = None
                 ) -> Tuple[List[float], StationStats, int]:
    """Replay the shared cloud station over the collected arrivals.

    Args:
        arrivals: Per-job cloud arrival (WAN completion) time.
        service_seconds: Per-job cloud compute time.
        cloud_workers: Cloud station capacity.
        tie_keys: Optional per-job tuples breaking equal-``arrival`` ties
            — the stage service-*start* times ``(wan, edge, lan, offset)``
            recorded by the edge simulations.  The joint scheduler fires
            simultaneous events in insertion order, and a completion event
            is inserted when its service starts, so sorting tied arrivals
            by start-time chain (job index last) reproduces that order.
        order: Pre-computed insertion order (job indices), e.g. from
            :func:`hierarchical_replay_order`; skips the flat sort.
        insert_times: Per-job starter instants used with ``order`` (the
            WAN service starts); defaults to ``tie_keys[i][0]`` /
            ``arrivals[i]`` as before.

    Returns:
        ``(end_seconds per job, cloud station stats, finish events)`` where
        finish events excludes the arrival re-fires (those stand in for the
        workers' WAN-completion events and must not be double counted).
    """
    scheduler = EventScheduler()
    cloud = ServiceStation(scheduler, "cloud", capacity=cloud_workers)
    ends: List[float] = [float("nan")] * len(arrivals)

    def _submit(job_index: int) -> None:
        def _finish(_: object) -> None:
            ends[job_index] = scheduler.now
        cloud.submit(service_seconds[job_index], on_complete=_finish)

    def _insert_arrival(job_index: int) -> None:
        scheduler.schedule_at(arrivals[job_index],
                              lambda job_index=job_index: _submit(job_index))

    def sort_key(index: int):
        # Order of insertion = (insertion instant, then the deeper
        # service-start chain, then job index) — the same order the joint
        # scheduler's sequence numbers impose.
        if tie_keys:
            return (*tie_keys[index], index)
        return (arrivals[index], index)

    if order is None:
        order = sorted(range(len(arrivals)), key=sort_key)

    def _insert_at(job_index: int) -> float:
        if insert_times is not None:
            return insert_times[job_index]
        return tie_keys[job_index][0] if tie_keys else arrivals[job_index]

    # Each arrival event must enter the heap at the instant the joint
    # simulation inserted the corresponding WAN-completion event — its WAN
    # service start — or its sequence number (and hence its order against
    # cloud-completion events firing at the same virtual time, which are
    # inserted mid-run at cloud service start) comes out wrong.  A starter
    # event at the WAN start time performs the insertion; the starters
    # themselves are pre-inserted in tie-chain order so equal start times
    # keep the joint order too.
    for job_index in order:
        scheduler.schedule_at(
            _insert_at(job_index),
            lambda job_index=job_index: _insert_arrival(job_index))
    scheduler.run()
    # The starter and arrival events are replay bookkeeping standing in for
    # the workers' WAN-completion events; only cloud completions count.
    finish_events = scheduler.events_processed - 2 * len(arrivals)
    return ends, cloud.stats, finish_events


# --------------------------------------------------------------------- #
# Orchestrated parallel run
# --------------------------------------------------------------------- #

def run_parallel(orchestrator: "FleetOrchestrator",
                 fleet_workers: int,
                 replay_steal: Optional[StealLog] = None) -> "FleetReport":
    """Execute a fleet simulation across ``fleet_workers`` processes.

    Produces a report equal to ``orchestrator.run()``'s (within float
    reassociation; in practice bit-identical) with per-edge pipelines
    simulated concurrently.  The merge is deterministic regardless of
    worker completion order: results are keyed and combined by edge index.

    The scale-out knobs all come from ``orchestrator.config``:
    ``fleet_transport`` selects the payload transport, ``fleet_stealing``
    the dynamic claim protocol (the recorded log lands on
    ``orchestrator.last_steal_log``), ``fleet_regions`` the hierarchical
    replay.  ``replay_steal`` (or ``orchestrator.replay_steal_log``)
    re-runs a recorded claim pattern as a static assignment.
    """
    from ..cluster.fleet import (FleetReport, JobOutcome, TierReport,
                                 latency_percentiles_of)
    if fleet_workers < 1:
        raise ClusterError(f"fleet_workers must be >= 1, got {fleet_workers}")
    watch = Stopwatch().start()
    config = orchestrator.config
    jobs = orchestrator.jobs
    assignments = orchestrator.assign()
    offsets = orchestrator._arrival_offsets()
    num_jobs = len(jobs)

    per_edge: Dict[int, List[int]] = {
        index: [] for index in range(orchestrator.num_edge_servers)}
    for job_index, job in enumerate(jobs):
        per_edge[assignments[job.camera]].append(job_index)
    edge_job_lists = [(edge_index, job_indices)
                      for edge_index, job_indices in sorted(per_edge.items())
                      if job_indices]
    plan = getattr(orchestrator, "fault_plan", None)
    kill_edges = frozenset(spec.edge_index for spec in plan.worker_kills
                           ) if plan is not None else frozenset()

    transport_mode = resolve_transport(config.fleet_transport)
    stealing = bool(config.fleet_stealing) and stealing_available()
    replay_log = (replay_steal if replay_steal is not None
                  else getattr(orchestrator, "replay_steal_log", None))
    steal_log: Optional[StealLog] = None

    arrival_columns = {name: np.zeros(num_jobs, dtype=np.float64)
                       for name in _RESULT_COLUMNS}
    use_scaleout = (transport_mode != TRANSPORT_PICKLE or stealing
                    or replay_log is not None)
    results: Dict[int, object]
    if use_scaleout:
        stats_by_edge, arrival_columns, steal_log = _run_shard_fleet(
            jobs, edge_job_lists, offsets, config,
            orchestrator.edge_workers, fleet_workers, transport_mode,
            stealing, replay_log, kill_edges)
        results = dict(stats_by_edge)
    else:
        tasks = [
            EdgeSimTask(
                edge_index=edge_index,
                job_indices=tuple(job_indices),
                jobs=tuple(jobs[index] for index in job_indices),
                start_offsets=tuple(offsets[index] for index in job_indices),
                config=config,
                edge_workers=orchestrator.edge_workers,
                kill_worker=edge_index in kill_edges,
            )
            for edge_index, job_indices in edge_job_lists
        ]
        results = dict(_run_edge_tasks(tasks, fleet_workers))
        for result in results.values():
            for position, job_index in enumerate(result.job_indices):
                arrival_columns["arrival"][job_index] = \
                    result.cloud_arrivals[position]
                wan, edge, lan = result.stage_starts[position]
                arrival_columns["wan_start"][job_index] = wan
                arrival_columns["edge_start"][job_index] = edge
                arrival_columns["lan_start"][job_index] = lan
    for edge_index in range(orchestrator.num_edge_servers):
        if edge_index not in results:
            results[edge_index] = empty_edge_result(edge_index)
    orchestrator.last_steal_log = steal_log

    arrivals = [float(value) for value in arrival_columns["arrival"]]
    offsets_array = np.asarray(offsets, dtype=np.float64)
    regions = (fleet_workers if config.fleet_regions == 0
               else config.fleet_regions)
    regions = max(1, min(int(regions), orchestrator.num_edge_servers))
    service_seconds = [job.cloud_seconds for job in jobs]
    if regions > 1 and num_jobs:
        job_edges = [assignments[job.camera] for job in jobs]
        order = hierarchical_replay_order(
            job_edges, arrival_columns["wan_start"],
            arrival_columns["edge_start"], arrival_columns["lan_start"],
            offsets_array, orchestrator.num_edge_servers, regions)
        ends, cloud_stats, cloud_events = replay_cloud(
            arrivals, service_seconds, orchestrator.cloud_workers,
            order=order,
            insert_times=[float(value)
                          for value in arrival_columns["wan_start"]])
    else:
        tie_keys: List[Tuple[float, ...]] = [
            (float(arrival_columns["wan_start"][index]),
             float(arrival_columns["edge_start"][index]),
             float(arrival_columns["lan_start"][index]),
             offsets[index])
            for index in range(num_jobs)
        ]
        ends, cloud_stats, cloud_events = replay_cloud(
            arrivals, service_seconds, orchestrator.cloud_workers,
            tie_keys=tie_keys)

    outcomes = [
        JobOutcome(job=job, edge_index=assignments[job.camera],
                   start_seconds=offset, end_seconds=end)
        for job, offset, end in zip(jobs, offsets, ends)
    ]
    makespan = max((outcome.end_seconds for outcome in outcomes), default=0.0)
    latencies = sorted(outcome.latency_seconds for outcome in outcomes)
    percentiles = latency_percentiles_of(latencies)

    ordered = [results[index] for index in sorted(results)]
    tier = orchestrator._tier
    edge_tiers: List[TierReport] = [
        tier(result.edge_stats, orchestrator.edge_workers, makespan)
        for result in ordered]
    wan_tiers: List[TierReport] = [
        tier(result.wan_stats, 1, makespan) for result in ordered]
    cloud_tier = tier(cloud_stats, orchestrator.cloud_workers, makespan)
    events_processed = (sum(result.events_processed for result in ordered)
                        + cloud_events)
    return FleetReport(
        policy=orchestrator.policy,
        num_edge_servers=orchestrator.num_edge_servers,
        num_cameras=len(jobs),
        makespan_seconds=makespan,
        total_frames=sum(job.num_frames for job in jobs),
        frames_for_inference=sum(job.frames_for_inference for job in jobs),
        camera_edge_bytes=sum(result.lan_bytes for result in ordered),
        edge_cloud_bytes=sum(result.wan_bytes for result in ordered),
        edge_busy_seconds=sum(t.busy_seconds for t in edge_tiers),
        cloud_busy_seconds=cloud_tier.busy_seconds,
        wan_transfer_seconds=sum(result.wan_seconds for result in ordered),
        edge_tiers=edge_tiers,
        wan_tiers=wan_tiers,
        cloud_tier=cloud_tier,
        latency_percentiles=percentiles,
        assignments=assignments,
        outcomes=outcomes,
        sim_wall_seconds=watch.stop(),
        events_processed=events_processed,
    )


def _run_edge_tasks(tasks: List[EdgeSimTask],
                    fleet_workers: int) -> Dict[int, EdgeSimResult]:
    """Run the edge tasks over a process pool (inline when unavailable).

    The original (pickle, static-shard) execution path, kept verbatim as
    the default: tasks are sharded round-robin over the workers; results
    are collected as they complete and keyed by edge index, so scheduling
    and completion order cannot affect the merged report.
    """
    shards: List[List[EdgeSimTask]] = [
        tasks[worker::fleet_workers]
        for worker in range(min(fleet_workers, len(tasks)))
    ]
    shards = [shard for shard in shards if shard]
    results: Dict[int, EdgeSimResult] = {}
    if len(shards) <= 1:
        for result in simulate_edge_shard(tasks):
            results[result.edge_index] = result
        return results
    try:
        lost_shards: List[List[EdgeSimTask]] = []
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = {pool.submit(simulate_edge_shard, shard): shard
                       for shard in shards}
            for future in as_completed(futures):
                # A worker dying mid-run (injected WorkerKill, OOM kill,
                # segfault) breaks the whole pool: its own shard and any
                # shard still pending surface BrokenProcessPool here.
                # Collect exactly those and keep every shard that already
                # returned — only the lost work is redone.
                try:
                    shard_results = future.result()
                except BrokenProcessPool:
                    lost_shards.append(futures[future])
                    continue
                for result in shard_results:
                    results[result.edge_index] = result
        # Re-execute the lost shards inline, in deterministic order (the
        # kill poison only fires inside pool workers, so the re-run
        # simulates normally and the merged report is bit-identical).
        for shard in sorted(lost_shards,
                            key=lambda shard: shard[0].edge_index):
            for result in simulate_edge_shard(shard):
                results[result.edge_index] = result
        return results
    except (OSError, PermissionError, RuntimeError):
        # Restricted environments (no /dev/shm, forbidden fork/spawn) fall
        # back to the same decomposed simulation run inline: identical
        # results, just no process-level parallelism.
        results.clear()
        for result in simulate_edge_shard(tasks):
            results[result.edge_index] = result
        return results
