"""Work-stealing across edge shards: a deterministic claim protocol.

The static decomposition shards edge tasks round-robin over the pool
workers, so one unlucky worker can end up with every heavy edge while the
rest sit idle — at fleet scale the makespan is the *worst* shard, not the
mean.  This module replaces the static assignment with a shared task
queue: edge tasks are ordered deterministically (longest-first, the LPT
heuristic), and idle workers *claim* the next task from a shared cursor.

The claim protocol is a single 8-byte counter in a file, advanced under an
exclusive ``flock``: claim ``k`` hands out queue position ``k``, so the
*order in which tasks leave the queue* is fixed by the queue itself, and
only the claimant varies with real-time scheduling.  Because the fleet
merge keys every result by edge index, the report is bit-identical no
matter which worker simulated which edge — the parity suite runs the same
fleet with stealing on and off and compares reports field by field.

Every claim is recorded.  The merged :class:`StealLog` is the run's
provenance: it says which worker simulated which edge in which claim
order, serialises to JSON for the sweep artifacts, and can be *replayed* —
:func:`StealLog.assignment` turns a recorded log back into a static
per-worker task list, so a rerun reproduces the recorded claim pattern
exactly (and, by the parity contract, the same report).

When ``flock`` is unavailable (non-POSIX platforms) the fleet falls back
to the static shards; ``stealing_available()`` is the gate.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Width of the claim cursor in bytes (one unsigned little-endian counter).
_CURSOR_BYTES = 8


def stealing_available() -> bool:
    """Whether the flock-based claim protocol can run on this platform."""
    return fcntl is not None


class ClaimBoard:
    """The shared task queue's cursor, claimable from any process.

    Args:
        path: Cursor file path.  The parent creates the file with
            :meth:`create`; workers open it by path (paths, unlike lock
            objects, pickle across any pool start method).
    """

    def __init__(self, path: str) -> None:
        self.path = path

    @classmethod
    def create(cls, num_tasks: int, directory: Optional[str] = None
               ) -> "ClaimBoard":
        """Create a fresh board with ``num_tasks`` claimable positions."""
        if num_tasks < 0:
            raise ClusterError(f"num_tasks must be >= 0, got {num_tasks}")
        if not stealing_available():
            raise ClusterError("work stealing needs fcntl.flock (POSIX)")
        handle, path = tempfile.mkstemp(prefix="repro-claims-",
                                        dir=directory)
        with os.fdopen(handle, "wb") as stream:
            stream.write((0).to_bytes(_CURSOR_BYTES, "little"))
            stream.write(int(num_tasks).to_bytes(_CURSOR_BYTES, "little"))
        return cls(path)

    def claim_next(self) -> Optional[int]:
        """Atomically claim the next queue position (``None`` when drained)."""
        with open(self.path, "r+b") as stream:
            fcntl.flock(stream.fileno(), fcntl.LOCK_EX)
            try:
                cursor = int.from_bytes(stream.read(_CURSOR_BYTES), "little")
                limit = int.from_bytes(stream.read(_CURSOR_BYTES), "little")
                if cursor >= limit:
                    return None
                stream.seek(0)
                stream.write((cursor + 1).to_bytes(_CURSOR_BYTES, "little"))
                return cursor
            finally:
                fcntl.flock(stream.fileno(), fcntl.LOCK_UN)

    def remove(self) -> None:
        """Delete the cursor file (idempotent)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


@dataclass(frozen=True)
class ClaimRecord:
    """One claim: queue position ``claim_seq`` went to ``worker_slot``.

    Attributes:
        claim_seq: Position in the shared queue (0-based, dense).
        edge_index: The edge task at that queue position.
        worker_slot: The pool worker that claimed (and simulated) it.
    """

    claim_seq: int
    edge_index: int
    worker_slot: int


@dataclass(frozen=True)
class StealLog:
    """The complete, ordered claim history of one fleet run.

    Attributes:
        records: Claims ordered by ``claim_seq`` (dense from 0).
        num_workers: Pool workers that participated.
    """

    records: Tuple[ClaimRecord, ...]
    num_workers: int

    def __post_init__(self) -> None:
        sequences = [record.claim_seq for record in self.records]
        if sequences != list(range(len(sequences))):
            raise ClusterError(
                f"steal log claim sequences must be dense from 0, "
                f"got {sequences}")

    def assignment(self) -> Dict[int, int]:
        """``{edge_index: worker_slot}`` — the replayable static mapping."""
        return {record.edge_index: record.worker_slot
                for record in self.records}

    def tasks_of(self, worker_slot: int) -> List[int]:
        """Edge indices ``worker_slot`` claimed, in claim order."""
        return [record.edge_index for record in self.records
                if record.worker_slot == worker_slot]

    @property
    def steals(self) -> int:
        """Claims that deviate from the static round-robin assignment.

        The baseline the dynamic protocol replaces hands queue position
        ``k`` to worker ``k % num_workers``; every claim that landed
        elsewhere is a steal.
        """
        return sum(1 for record in self.records
                   if record.worker_slot
                   != record.claim_seq % max(self.num_workers, 1))

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (sweep artifacts, CI uploads)."""
        return {
            "num_workers": self.num_workers,
            "claims": [[record.claim_seq, record.edge_index,
                        record.worker_slot] for record in self.records],
        }

    def to_json(self) -> str:
        """The log as a JSON document."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StealLog":
        """Rebuild a log from :meth:`as_dict` output."""
        records = tuple(
            ClaimRecord(claim_seq=int(seq), edge_index=int(edge),
                        worker_slot=int(slot))
            for seq, edge, slot in payload["claims"])  # type: ignore[index]
        return cls(records=records,
                   num_workers=int(payload["num_workers"]))  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, document: str) -> "StealLog":
        """Rebuild a log from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))


def merge_claims(per_worker: Sequence[Tuple[int, Sequence[Tuple[int, int]]]],
                 num_workers: int) -> StealLog:
    """Merge workers' ``(claim_seq, edge_index)`` lists into one log.

    Args:
        per_worker: ``(worker_slot, [(claim_seq, edge_index), ...])`` as
            returned by each shard worker.
        num_workers: Pool size (recorded for the round-robin baseline).
    """
    records = [ClaimRecord(claim_seq=seq, edge_index=edge, worker_slot=slot)
               for slot, claims in per_worker for seq, edge in claims]
    records.sort(key=lambda record: record.claim_seq)
    return StealLog(records=tuple(records), num_workers=num_workers)


def queue_order(task_costs: Sequence[float]) -> List[int]:
    """The shared queue's task order: heaviest first, index breaking ties.

    Longest-processing-time-first is what makes stealing beat the static
    shards: the expensive edges leave the queue while many workers are
    still free, and the cheap tail backfills the stragglers.  The order is
    a pure function of the (deterministic) cost estimates, so the queue —
    and therefore the claim-sequence → edge mapping — is identical on
    every run.
    """
    return sorted(range(len(task_costs)),
                  key=lambda index: (-float(task_costs[index]), index))
