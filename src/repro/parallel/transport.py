"""Shard transport: how numpy array bundles cross the process boundary.

The multiprocess fleet (:mod:`repro.parallel.fleet`) ships two payloads per
run: the packed per-job arrays every worker reads (arrival offsets, per-tier
byte and second columns) and the per-job result arrays the workers produce
(cloud arrival times plus the stage service-start tie chain).  The original
implementation serialised all of it through the process pool's pickle
channel — one copy to encode, one to decode, per worker.  At fleet scale
(thousands of cameras) that serialisation is pure overhead: the arrays are
flat, fixed-dtype and known-size, which is exactly the payload
``multiprocessing.shared_memory`` moves for free.

:class:`ShardTransport` abstracts the choice:

* :class:`SharedMemoryTransport` packs a bundle of named arrays into one
  shared-memory segment; the :class:`ShardHandle` that crosses the pickle
  boundary carries only the segment name and the array specs (a few hundred
  bytes regardless of fleet size).  Workers attach and read zero-copy
  views.  Result bundles are *allocated* by the parent and written in place
  by the workers — each worker owns disjoint row slots, so no locking is
  needed and a crashed worker's partial writes are simply recomputed.
* :class:`PickleTransport` carries the same bundle inline in the handle —
  the exact behaviour (and cost) of the original pickle path.  It is the
  default (``SystemConfig.fleet_transport = "pickle"``) and the automatic
  fallback when shared memory is unavailable (restricted sandboxes with no
  ``/dev/shm``).

Lifecycle: segments are owned by the *creating* process.  Transports track
every segment they created and :meth:`ShardTransport.cleanup` unlinks them
all; :func:`transport` is a context manager wrapping that, and a module
``atexit`` hook sweeps anything a hard crash left behind.  Workers only
ever ``close()`` their attachment (dropping a mapping), never ``unlink``
— so a worker killed mid-simulation (the ``WorkerKill`` fault, an OOM
kill) cannot leak a segment: the parent's cleanup runs either way.  The
lifecycle contract is pinned by ``tests/parallel/test_shm_lifecycle.py``.
"""

from __future__ import annotations

import atexit
import os
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..config import (TRANSPORT_AUTO, TRANSPORT_MODES, TRANSPORT_PICKLE,
                      TRANSPORT_SHM, validate_transport)
from ..errors import ConfigurationError

__all__ = [
    "TRANSPORT_AUTO", "TRANSPORT_MODES", "TRANSPORT_PICKLE", "TRANSPORT_SHM",
    "ArraySpec", "ShardHandle", "ShardTransport", "PickleTransport",
    "SharedMemoryTransport", "make_transport", "transport", "open_handle",
    "shm_available", "resolve_transport", "validate_transport",
    "active_segment_names",
]

#: Prefix of every shared-memory segment this library creates.  Segment
#: names embed the creating PID so leak checks (and the atexit sweep) can
#: tell this run's segments from a concurrent run's.
SEGMENT_PREFIX = "repro_shm"

#: Segments created by this process and not yet unlinked.
_ACTIVE_SEGMENTS: Dict[str, object] = {}


def _shared_memory_module():
    """The ``multiprocessing.shared_memory`` module, or ``None``."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython 3.8+
        return None
    return shared_memory


def shm_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Probes by creating (and immediately unlinking) a tiny segment: the
    module can import fine in sandboxes whose ``/dev/shm`` is unwritable,
    and the only reliable signal is the attempt itself.
    """
    shared_memory = _shared_memory_module()
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, PermissionError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except (OSError, PermissionError):  # pragma: no cover - probe cleanup
        pass
    return True


def resolve_transport(mode: str) -> str:
    """Resolve ``"auto"`` to the best available concrete transport."""
    validate_transport(mode)
    if mode == TRANSPORT_AUTO:
        return TRANSPORT_SHM if shm_available() else TRANSPORT_PICKLE
    return mode


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one named array inside a segment.

    Attributes:
        name: Array name within the bundle.
        dtype: Numpy dtype string (``"float64"``, ``"int64"``, ...).
        shape: Array shape.
        offset: Byte offset of the array's data inside the segment.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Size of the array's data in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class ShardHandle:
    """The picklable token standing in for one published array bundle.

    For the shared-memory transport the handle carries only the segment
    name and the specs; for the pickle transport it carries the arrays
    themselves (``inline``), which reproduces the original pool-channel
    behaviour byte for byte.

    Attributes:
        kind: ``"shm"`` or ``"pickle"``.
        segment: Shared-memory segment name (``""`` for inline handles).
        specs: Layout of the bundled arrays.
        inline: The arrays themselves (inline handles only).
    """

    kind: str
    segment: str
    specs: Tuple[ArraySpec, ...]
    inline: Optional[Dict[str, np.ndarray]] = None

    @property
    def is_inline(self) -> bool:
        """Whether the payload rides inside the handle (pickle transport)."""
        return self.inline is not None

    @property
    def nbytes(self) -> int:
        """Total payload bytes across the bundle."""
        return sum(spec.nbytes for spec in self.specs)


class ShardTransport:
    """Moves named numpy array bundles between the parent and its workers.

    Use :func:`make_transport` (or the :func:`transport` context manager)
    to construct the right concrete transport; the base class implements
    the inline/pickle behaviour and the lifecycle bookkeeping.
    """

    kind = TRANSPORT_PICKLE

    def publish(self, arrays: Mapping[str, np.ndarray]) -> ShardHandle:
        """Make a read-only bundle available to workers."""
        packed = {name: np.ascontiguousarray(array)
                  for name, array in arrays.items()}
        specs = tuple(ArraySpec(name=name, dtype=str(array.dtype),
                                shape=tuple(array.shape), offset=0)
                      for name, array in packed.items())
        return ShardHandle(kind=self.kind, segment="", specs=specs,
                           inline=packed)

    def allocate(self, specs: Mapping[str, Tuple[str, Tuple[int, ...]]]
                 ) -> ShardHandle:
        """Allocate a zero-filled writable bundle (``{name: (dtype, shape)}``).

        Under shared memory the workers write their slots in place and the
        parent reads them back through :meth:`attach`; under the pickle
        transport there is no shared backing store, so workers must return
        their slices through the pool channel instead (the caller handles
        both cases — see :meth:`is_shared`).
        """
        arrays = {name: np.zeros(shape, dtype=dtype)
                  for name, (dtype, shape) in specs.items()}
        return self.publish(arrays)

    @property
    def is_shared(self) -> bool:
        """Whether workers' writes into an allocated bundle reach the parent."""
        return False

    def attach(self, handle: ShardHandle) -> Dict[str, np.ndarray]:
        """The parent-side view of a bundle it published or allocated."""
        if handle.inline is None:
            raise ConfigurationError(
                f"cannot attach a {handle.kind!r} handle inline")
        return dict(handle.inline)

    def cleanup(self) -> None:
        """Release every resource this transport created (idempotent)."""

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *_: object) -> None:
        self.cleanup()


class PickleTransport(ShardTransport):
    """The original behaviour: bundles ride the pool's pickle channel."""


class SharedMemoryTransport(ShardTransport):
    """Bundles live in shared-memory segments; handles carry only names.

    The transport owns every segment it creates and unlinks them all in
    :meth:`cleanup` — callers wrap runs in ``with transport(...)`` (or a
    try/finally) so a crashed pool, a failed replay or an injected worker
    kill still releases the segments.
    """

    kind = TRANSPORT_SHM

    def __init__(self) -> None:
        shared_memory = _shared_memory_module()
        if shared_memory is None:  # pragma: no cover - CPython always has it
            raise ConfigurationError("multiprocessing.shared_memory missing")
        self._shared_memory = shared_memory
        self._segments: Dict[str, object] = {}

    def _create_segment(self, size: int):
        name = (f"{SEGMENT_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}")
        segment = self._shared_memory.SharedMemory(
            name=name, create=True, size=max(int(size), 1))
        self._segments[segment.name] = segment
        _ACTIVE_SEGMENTS[segment.name] = segment
        return segment

    def _pack(self, arrays: Mapping[str, np.ndarray],
              copy_values: bool) -> ShardHandle:
        specs = []
        offset = 0
        contiguous = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            specs.append(ArraySpec(name=name, dtype=str(array.dtype),
                                   shape=tuple(array.shape), offset=offset))
            offset += array.nbytes
        segment = self._create_segment(offset)
        for spec, array in zip(specs, contiguous.values()):
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=segment.buf, offset=spec.offset)
            if copy_values:
                view[...] = array
            else:
                view[...] = 0
        return ShardHandle(kind=self.kind, segment=segment.name,
                           specs=tuple(specs))

    def publish(self, arrays: Mapping[str, np.ndarray]) -> ShardHandle:
        return self._pack(arrays, copy_values=True)

    def allocate(self, specs: Mapping[str, Tuple[str, Tuple[int, ...]]]
                 ) -> ShardHandle:
        arrays = {name: np.empty(shape, dtype=dtype)
                  for name, (dtype, shape) in specs.items()}
        return self._pack(arrays, copy_values=False)

    @property
    def is_shared(self) -> bool:
        return True

    def attach(self, handle: ShardHandle) -> Dict[str, np.ndarray]:
        segment = self._segments.get(handle.segment)
        if segment is None:
            raise ConfigurationError(
                f"segment {handle.segment!r} is not owned by this transport")
        return {spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                                      buffer=segment.buf, offset=spec.offset)
                for spec in handle.specs}

    def cleanup(self) -> None:
        for name, segment in list(self._segments.items()):
            _release_segment(segment)
            self._segments.pop(name, None)
            _ACTIVE_SEGMENTS.pop(name, None)


def make_transport(mode: str) -> ShardTransport:
    """Construct the transport for a resolved mode (``"auto"`` accepted)."""
    resolved = resolve_transport(mode)
    if resolved == TRANSPORT_SHM:
        try:
            return SharedMemoryTransport()
        except ConfigurationError:
            if mode == TRANSPORT_SHM:
                raise
            resolved = TRANSPORT_PICKLE  # pragma: no cover - auto fallback
    return PickleTransport()


@contextmanager
def transport(mode: str) -> Iterator[ShardTransport]:
    """Context-managed transport: cleanup always runs, even on pool crashes."""
    instance = make_transport(mode)
    try:
        yield instance
    finally:
        instance.cleanup()


@dataclass
class _WorkerAttachment:
    """Worker-side attachment to a handle (closes mappings on exit)."""

    arrays: Dict[str, np.ndarray]
    _segment: object = None
    closed: bool = field(default=False)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Views into the buffer must be dropped before the mapping closes;
        # clearing the dict releases the exported pointers.
        self.arrays.clear()
        if self._segment is not None:
            try:
                self._segment.close()
            except (OSError, BufferError):  # pragma: no cover - teardown
                pass

    def __enter__(self) -> Dict[str, np.ndarray]:
        return self.arrays

    def __exit__(self, *_: object) -> None:
        self.close()


def open_handle(handle: ShardHandle) -> _WorkerAttachment:
    """Open a bundle on the worker side of the pool boundary.

    Returns a context manager yielding ``{name: array}``.  Inline handles
    yield the arrays that rode the pickle channel; shared-memory handles
    attach the segment and yield zero-copy views (writes to an allocated
    bundle's views land in the parent's memory).  The attachment must be
    closed (the ``with`` block exiting) before the worker returns.
    """
    if handle.inline is not None:
        return _WorkerAttachment(arrays=dict(handle.inline))
    shared_memory = _shared_memory_module()
    if shared_memory is None:  # pragma: no cover - CPython always has it
        raise ConfigurationError("multiprocessing.shared_memory missing")
    segment = shared_memory.SharedMemory(name=handle.segment)
    arrays = {spec.name: np.ndarray(spec.shape, dtype=spec.dtype,
                                    buffer=segment.buf, offset=spec.offset)
              for spec in handle.specs}
    return _WorkerAttachment(arrays=arrays, _segment=segment)


def active_segment_names() -> Tuple[str, ...]:
    """Names of segments created by this process and not yet unlinked.

    The SHM-lifecycle tests assert this is empty after every fleet run —
    normal exit, broken pool and injected worker kill alike.
    """
    return tuple(sorted(_ACTIVE_SEGMENTS))


def _release_segment(segment: object) -> None:
    """Unlink (then close) one segment, tolerating live exported views.

    Unlink runs *first*: removing the ``/dev/shm`` entry never requires the
    local mapping to be closed, so a caller still holding numpy views into
    the segment (which makes ``close()`` raise ``BufferError``) cannot turn
    a cleanup into a leak — the mapping itself is released when the last
    view is garbage-collected.
    """
    try:
        segment.unlink()
    except (OSError, PermissionError):  # pragma: no cover - already gone
        pass
    try:
        segment.close()
    except (OSError, PermissionError, BufferError):
        pass


def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    for name, segment in list(_ACTIVE_SEGMENTS.items()):
        _release_segment(segment)
        _ACTIVE_SEGMENTS.pop(name, None)


atexit.register(_cleanup_at_exit)
