"""Parallel workload building: prepare/tune datasets across processes.

The fleet layer (:mod:`repro.parallel.fleet`) parallelises *simulation*;
this module parallelises the other dominant cold-start cost, workload
*building* — dataset render -> codec analysis -> offline tuning -> the two
size-only encodes.  The stages of one dataset form a strict chain, but
different datasets are completely independent, and every intermediate
artifact already flows through the content-keyed on-disk cache
(:mod:`repro.datasets.diskcache`).  That cache is what makes an exact
parallel decomposition trivial:

1. **Workers** (one task per ``(artifact, dataset, split)``, sharded over a
   ``ProcessPoolExecutor``) each run the ordinary serial build of their
   dataset — the same :func:`~repro.experiments.common.prepare_dataset` /
   :func:`~repro.experiments.common.prepare_workload` code path — which
   persists the prepared-dataset and workload bundles under their per-task
   content keys.  Tasks never share a key, so workers never contend on an
   entry; two builders racing the *same* corpus at worst double-render one
   entry (the loser's atomic rename overwrites identical bytes).
2. **The parent** then assembles the results in the caller's dataset
   order by running the very same serial path, which now finds every
   artifact on disk.  The assembled workload objects are reconstructed
   from the same bundles a warm serial session would read, and the cache
   artifacts were produced by the same serialisation code the serial
   build runs — so parallel builds are **byte-identical** on disk and
   value-identical in memory to serial builds, regardless of worker count
   or completion order.

``SystemConfig.build_workers == 1`` (the default) bypasses the fan-out
entirely; the parity of the two paths is pinned by
``tests/parallel/test_workload_builder.py``.  When process pools are
unavailable (restricted sandboxes) or the artifact cache is disabled
(``REPRO_DATASET_CACHE=0`` — there is no disk hand-off to assemble from),
the builder silently degrades to the serial path: same results, no
parallelism.  Workers inherit ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES``
through the environment; the parent pins every key of the active build
(:func:`repro.datasets.diskcache.pinned`) so a concurrent LRU sweep cannot
evict artifacts mid-assembly.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..codec.gop import DEFAULT_PARAMETERS, EncoderParameters
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..logging_utils import get_logger
from ..perf import section as perf_section

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only.
    from ..core.pipeline import VideoWorkload
    from ..experiments.common import ExperimentConfig, PreparedDataset

_LOGGER = get_logger(__name__)

#: Artifact kinds a :class:`BuildTask` can produce.
DATASET_ARTIFACT = "dataset"
WORKLOAD_ARTIFACT = "workload"


@dataclass(frozen=True)
class BuildTask:
    """One dataset's build, shipped to a worker process.

    Every field is a plain value or frozen dataclass, so the task pickles
    across the pool boundary; the worker rebuilds the artifact through the
    ordinary serial code path, persisting it under the task's content key.

    Attributes:
        artifact: ``"dataset"`` (render + analysis pass) or ``"workload"``
            (render + analysis + tuning + both size-only encodes).
        name: Dataset name.
        split: Dataset split.
        config: Footage scale.
        base_parameters: Analysis-pass encoder parameters.
        system_config: Simulation config (workload tasks only).
        target_f1: Tuning target (workload tasks only).
        unlabelled_sample_period_seconds: Fallback sampling period for
            unlabelled datasets (workload tasks only).
        precision: Numeric mode of the analysis pass (dataset tasks;
            workload tasks take theirs from ``system_config.precision``).
        kill_worker: Fault-injection poison (``WorkerKill`` specs of the
            builder's :class:`~repro.faults.plan.FaultPlan`): a pool
            worker picking this task up exits hard instead of building,
            simulating an OOM-kill mid-build.  The parent's assembly pass
            rebuilds the lost artifact serially, so results stay
            bit-identical.  Ignored outside a pool worker.
    """

    artifact: str
    name: str
    split: str
    config: "ExperimentConfig"
    base_parameters: EncoderParameters = DEFAULT_PARAMETERS
    system_config: Optional[SystemConfig] = None
    target_f1: float = 0.95
    unlabelled_sample_period_seconds: float = 5.0
    precision: str = "exact"
    kill_worker: bool = False

    @property
    def dataset_precision(self) -> str:
        """The precision the task's prepared-dataset artifact is keyed by."""
        if self.artifact == WORKLOAD_ARTIFACT and self.system_config is not None:
            return self.system_config.precision
        return self.precision


def execute_build_task(task: BuildTask) -> Tuple[str, str, str]:
    """Worker entry point: run one task's serial build, warming the cache.

    Must stay importable at module level (and its argument picklable) for
    the process pool.  Returns ``(artifact, name, split)`` as a completion
    token; the heavy results travel through the on-disk cache, not the
    pickle channel.
    """
    if task.kill_worker and multiprocessing.parent_process() is not None:
        # Fault injection: die the way an OOM-killed worker would — no
        # exception, no cleanup, no cache write.  Only ever taken inside a
        # pool worker; the parent running the same task serially builds it.
        os._exit(17)
    from ..experiments.common import prepare_dataset, prepare_workload
    if task.artifact == WORKLOAD_ARTIFACT:
        prepare_workload(
            task.name, task.config, task.split, task.system_config,
            task.base_parameters, task.target_f1,
            task.unlabelled_sample_period_seconds)
    elif task.artifact == DATASET_ARTIFACT:
        prepare_dataset(task.name, task.config, task.split,
                        task.base_parameters, task.precision)
    else:
        raise ConfigurationError(f"unknown build artifact {task.artifact!r}")
    return (task.artifact, task.name, task.split)


class WorkloadBuilder:
    """Build experiment workloads, optionally fanning out across processes.

    Args:
        config: Footage scale shared by every task.
        system_config: Simulation config; its ``build_workers`` is the
            default worker count.
        build_workers: Worker-process override (``None`` defers to
            ``system_config.build_workers``; ``1`` is the serial path).
        faults: Optional :class:`~repro.faults.plan.FaultPlan` whose
            ``WorkerKill`` specs poison the build fan-out — spec
            ``edge_index`` selects the task index to kill a worker on.
            The warm-up pass loses that worker; the serial assembly pass
            rebuilds whatever it failed to persist, so the returned
            workloads are bit-identical to a fault-free build.
    """

    def __init__(self, config: "ExperimentConfig",
                 system_config: Optional[SystemConfig] = None,
                 build_workers: Optional[int] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        self.config = config
        self.system_config = system_config or SystemConfig()
        from ..config import resolve_worker_count
        self.build_workers = resolve_worker_count(
            self.system_config.build_workers if build_workers is None
            else build_workers, "build_workers")
        self._kill_task_indices = frozenset(
            spec.edge_index for spec in faults.worker_kills
        ) if faults is not None else frozenset()
        #: Tasks the fault plan poisoned in this builder's lifetime (the
        #: pool honours the poison only when it actually fans out).
        self.tasks_poisoned = 0

    # ------------------------------------------------------------------ #
    # Public build surfaces
    # ------------------------------------------------------------------ #
    def prepare_datasets(
            self, names: Optional[Sequence[str]] = None, split: str = "test",
            base_parameters: EncoderParameters = EncoderParameters()
            ) -> Dict[str, "PreparedDataset"]:
        """Prepare every named dataset (rendered clip + analysis pass).

        Returns ``{name: PreparedDataset}`` in input order; equal to the
        serial :func:`repro.experiments.common.prepare_datasets` result.
        """
        matrix = self.prepare_dataset_splits(names, (split,), base_parameters)
        return {name: prepared for (name, _), prepared in matrix.items()}

    def prepare_dataset_splits(
            self, names: Optional[Sequence[str]] = None,
            splits: Sequence[str] = ("test",),
            base_parameters: EncoderParameters = EncoderParameters()
            ) -> Dict[Tuple[str, str], "PreparedDataset"]:
        """Prepare the ``names x splits`` matrix of datasets.

        Each ``(name, split)`` cell is an independent task (its own content
        key), so e.g. Table II's train/test pairs build concurrently.
        """
        from ..experiments.common import prepare_dataset
        names = list(self.config.datasets if names is None else names)
        precision = self.system_config.precision
        tasks = [
            BuildTask(artifact=DATASET_ARTIFACT, name=name, split=split,
                      config=self.config, base_parameters=base_parameters,
                      precision=precision)
            for name in names for split in splits
        ]
        tasks = self._poison(tasks)
        with self._pinned(tasks):
            self._warm(tasks)
            return {
                (name, split): prepare_dataset(name, self.config, split,
                                               base_parameters, precision)
                for name in names for split in splits
            }

    def build_workloads(
            self, names: Optional[Sequence[str]] = None, split: str = "full",
            base_parameters: EncoderParameters = DEFAULT_PARAMETERS,
            target_f1: float = 0.95,
            unlabelled_sample_period_seconds: float = 5.0
            ) -> List["VideoWorkload"]:
        """Build one :class:`VideoWorkload` per named dataset, in order.

        The heavy stages run in worker processes when ``build_workers > 1``
        (writing the ordinary cache artifacts); the returned list is always
        assembled deterministically by dataset order in the parent and is
        equal to the serial result.
        """
        from ..experiments.common import prepare_workload
        names = list(self.config.datasets if names is None else names)
        tasks = [
            BuildTask(artifact=WORKLOAD_ARTIFACT, name=name, split=split,
                      config=self.config, base_parameters=base_parameters,
                      system_config=self.system_config, target_f1=target_f1,
                      unlabelled_sample_period_seconds=(
                          unlabelled_sample_period_seconds))
            for name in names
        ]
        tasks = self._poison(tasks)
        with self._pinned(tasks):
            self._warm(tasks)
            return [
                prepare_workload(name, self.config, split,
                                 self.system_config, base_parameters,
                                 target_f1, unlabelled_sample_period_seconds)
                for name in names
            ]

    # ------------------------------------------------------------------ #
    # Fan-out machinery
    # ------------------------------------------------------------------ #
    def _poison(self, tasks: Sequence[BuildTask]) -> List[BuildTask]:
        """Mark the fault plan's ``WorkerKill`` task indices for death.

        Poisoned tasks only matter to the warm-up pool (the parent's
        assembly pass never honours ``kill_worker``), so a plan that
        kills every worker simply degrades the build to serial.
        """
        if not self._kill_task_indices:
            return list(tasks)
        poisoned = []
        for index, task in enumerate(tasks):
            if index in self._kill_task_indices:
                poisoned.append(replace(task, kill_worker=True))
                self.tasks_poisoned += 1
            else:
                poisoned.append(task)
        return poisoned

    @contextmanager
    def _pinned(self, tasks: Sequence[BuildTask]):
        """Pin every cache key of the active build for the enclosed block.

        On exit the pins are released and, when a size budget is
        configured, the cache is swept once more: stores during the build
        could not evict the pinned working set, so a corpus larger than
        ``REPRO_CACHE_MAX_BYTES`` would otherwise leave the directory
        permanently above budget.
        """
        from ..datasets import diskcache
        try:
            with diskcache.pinned(task_cache_entries(tasks)):
                yield
        finally:
            if diskcache.cache_max_bytes() is not None:
                diskcache.sweep()

    def _warm(self, tasks: Sequence[BuildTask]) -> None:
        """Run ``tasks`` across worker processes, warming the disk cache.

        Best-effort by design: the parent's assembly pass recomputes
        anything a worker failed to persist, so a broken pool, a worker
        crash, or a read-only cache degrade to the serial path rather
        than failing the build.  Real build errors (a dataset that cannot
        render) surface from the assembly pass either way.
        """
        from ..experiments.common import dataset_cache_enabled
        if (self.build_workers <= 1 or len(tasks) <= 1
                or not dataset_cache_enabled()):
            return
        workers = min(self.build_workers, len(tasks))
        failures = 0
        last_error: Optional[BaseException] = None
        try:
            with perf_section("workload.parallel_warm"):
                # One pool submission per task: the pool's queue balances
                # uneven task costs dynamically (tasks never share a cache
                # key, so any assignment of tasks to workers is correct).
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for future in [pool.submit(execute_build_task, task)
                                   for task in tasks]:
                        # Collect per future: one crashed worker (or one
                        # broken task) must not discard the artifacts the
                        # other workers already persisted.
                        try:
                            future.result()
                        except Exception as error:  # noqa: BLE001
                            failures += 1
                            last_error = error
        except Exception as error:  # noqa: BLE001 - pool-level failure
            failures += 1
            last_error = error
        if failures:
            _LOGGER.warning(
                "parallel workload warm-up lost %d task(s) (%s: %s); "
                "the serial assembly pass will rebuild them",
                failures, type(last_error).__name__, last_error)


def task_cache_entries(tasks: Sequence[BuildTask]) -> List[Tuple[str, str]]:
    """The ``(kind, key)`` disk-cache entries ``tasks`` will read/write.

    A workload task owns two entries (its prepared dataset and the
    condensed workload artifact); a dataset task owns one.
    """
    from ..experiments.common import (DATASET_CACHE_KIND, WORKLOAD_CACHE_KIND,
                                      dataset_disk_key, workload_disk_key)
    entries: List[Tuple[str, str]] = []
    for task in tasks:
        entries.append((DATASET_CACHE_KIND, dataset_disk_key(
            task.name, task.config, task.split, task.base_parameters,
            task.dataset_precision)))
        if task.artifact == WORKLOAD_ARTIFACT:
            entries.append((WORKLOAD_CACHE_KIND, workload_disk_key(
                task.name, task.config, task.split, task.base_parameters,
                task.system_config or SystemConfig(), task.target_f1,
                task.unlabelled_sample_period_seconds)))
    return entries
