"""Performance instrumentation: stopwatches, counters and bench reports.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows", which only means something if the hot paths are *measured*.  This
package provides the measuring kit:

* :class:`Stopwatch` / :class:`PerfRecorder` — low-overhead wall-clock
  section timers and counters.  The engines and experiment harnesses hang
  their stage-level timings off the module-global recorder so a run can be
  broken down after the fact without sprinkling ``time.perf_counter`` calls
  everywhere.
* :class:`BenchReport` — collects named measurements (value + unit +
  parameters) and writes them as machine-readable ``BENCH_<name>.json``
  files, which is how the repository's perf trajectory accumulates across
  PRs (every benchmark harness appends to the same files).
"""

from .report import BenchEntry, BenchReport, load_bench_runs
from .stopwatch import (Counter, PerfRecorder, SectionStats, Stopwatch,
                        get_recorder, record_value, section)

__all__ = [
    "BenchEntry", "BenchReport", "load_bench_runs",
    "Counter", "PerfRecorder", "SectionStats", "Stopwatch",
    "get_recorder", "record_value", "section",
]
