"""Machine-readable benchmark reports (``BENCH_*.json``).

Every benchmark harness builds a :class:`BenchReport`, records named
measurements into it, and writes the report at the end of the run.  Written
files hold a JSON list of run records so the repository's perf trajectory
accumulates over time: each ``write`` appends one record carrying the run's
environment scale, the measurements, and derived speedup ratios.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Maximum number of run records kept per bench file; older runs roll off so
#: the committed baselines stay reviewable.
MAX_RUNS_PER_FILE = 50


@dataclass
class BenchEntry:
    """One measurement inside a bench report.

    Attributes:
        name: Measurement name, e.g. ``"entropy_encode.vectorized"``.
        value: Measured value.
        unit: Unit of ``value`` (``"seconds"``, ``"items_per_second"``, ...).
        params: Free-form parameters describing the measured workload
            (sizes, batch counts, ...), kept JSON-serialisable.
    """

    name: str
    value: float
    unit: str = "seconds"
    params: Dict[str, object] = field(default_factory=dict)


class BenchReport:
    """Collects measurements of one benchmark run and writes them to JSON.

    Args:
        name: Report name; the default output file is ``BENCH_<name>.json``.
        context: Extra run-level context recorded alongside the entries
            (footage scale, git revision, ...).
    """

    def __init__(self, name: str,
                 context: Optional[Dict[str, object]] = None) -> None:
        if not name:
            raise ValueError("bench report name must be non-empty")
        self.name = name
        self.context: Dict[str, object] = dict(context or {})
        self.entries: List[BenchEntry] = []

    def record(self, name: str, value: float, unit: str = "seconds",
               **params: object) -> BenchEntry:
        """Add one measurement and return it."""
        entry = BenchEntry(name=name, value=float(value), unit=unit,
                           params=dict(params))
        self.entries.append(entry)
        return entry

    def record_speedup(self, name: str, baseline_seconds: float,
                       optimised_seconds: float, **params: object) -> BenchEntry:
        """Record a before/after pair plus the derived speedup ratio."""
        self.record(f"{name}.baseline", baseline_seconds, "seconds", **params)
        self.record(f"{name}.optimised", optimised_seconds, "seconds", **params)
        ratio = (baseline_seconds / optimised_seconds
                 if optimised_seconds > 0 else float("inf"))
        return self.record(f"{name}.speedup", ratio, "ratio", **params)

    def value_of(self, name: str) -> float:
        """Value of the most recently recorded entry called ``name``."""
        for entry in reversed(self.entries):
            if entry.name == name:
                return entry.value
        raise KeyError(f"no bench entry named {name!r}")

    def as_run_record(self) -> Dict[str, object]:
        """This run as one JSON-serialisable record."""
        return {
            "report": self.name,
            "python": platform.python_version(),
            "context": self.context,
            "entries": [asdict(entry) for entry in self.entries],
        }

    def default_path(self, directory: str = ".") -> str:
        """The conventional output path ``<directory>/BENCH_<name>.json``."""
        return os.path.join(directory, f"BENCH_{self.name}.json")

    def write(self, path: Optional[str] = None,
              max_runs: int = MAX_RUNS_PER_FILE) -> str:
        """Append this run's record to ``path`` (created when missing).

        The file holds a JSON list of run records, newest last; corrupt or
        non-list contents are replaced rather than crashing the benchmark.

        Returns:
            The path written.
        """
        path = path or self.default_path()
        runs: List[Dict[str, object]] = []
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    existing = json.load(handle)
                if isinstance(existing, list):
                    runs = existing
            except (json.JSONDecodeError, OSError):
                runs = []
        runs.append(self.as_run_record())
        runs = runs[-max_runs:]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(runs, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def load_bench_runs(path: str) -> List[Dict[str, object]]:
    """Read a ``BENCH_*.json`` file back into its list of run records."""
    with open(path, "r", encoding="utf-8") as handle:
        runs = json.load(handle)
    if not isinstance(runs, list):
        raise ValueError(f"{path} does not contain a JSON list of bench runs")
    return runs
