"""Low-overhead wall-clock section timers and counters.

Design constraints:

* instrumenting a hot path must cost two ``perf_counter_ns`` calls and one
  dict update per section — no object churn, no logging;
* the instrumentation must be easy to ignore: everything funnels into a
  module-global :class:`PerfRecorder` that callers may simply never read,
  and :func:`section` is usable as a context manager around any block.

The recorder is intentionally *not* thread-safe: the simulators are
single-threaded and the benchmarks want the cheapest possible probe.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class SectionStats:
    """Accumulated timing of one named section.

    Attributes:
        calls: Number of times the section was entered.
        total_seconds: Total wall-clock time spent inside the section.
        min_seconds: Fastest single visit.
        max_seconds: Slowest single visit.
    """

    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one visit of ``seconds`` into the stats."""
        self.calls += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average time per visit."""
        return self.total_seconds / self.calls if self.calls else 0.0


class Stopwatch:
    """A restartable wall-clock stopwatch.

    >>> watch = Stopwatch().start()
    >>> elapsed = watch.stop()      # seconds since start()
    >>> with Stopwatch() as watch:  # or as a context manager
    ...     pass
    >>> watch.elapsed_seconds >= 0.0
    True
    """

    __slots__ = ("_start_ns", "elapsed_seconds")

    def __init__(self) -> None:
        self._start_ns: Optional[int] = None
        self.elapsed_seconds = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch."""
        self._start_ns = time.perf_counter_ns()
        return self

    def stop(self) -> float:
        """Stop and return the elapsed seconds since the last ``start``."""
        if self._start_ns is None:
            raise RuntimeError("stopwatch was never started")
        self.elapsed_seconds = (time.perf_counter_ns() - self._start_ns) / 1e9
        self._start_ns = None
        return self.elapsed_seconds

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start_ns is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount``."""
        self.value += amount


@dataclass
class PerfRecorder:
    """Collects section timings and counters for one run.

    Attributes:
        sections: ``name -> SectionStats``.
        counters: ``name -> Counter``.
    """

    sections: Dict[str, SectionStats] = field(default_factory=dict)
    counters: Dict[str, Counter] = field(default_factory=dict)

    def add_section_time(self, name: str, seconds: float) -> None:
        """Fold ``seconds`` into the section called ``name``."""
        stats = self.sections.get(name)
        if stats is None:
            stats = self.sections[name] = SectionStats()
        stats.add(seconds)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increase counter ``name`` by ``amount``."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.add(amount)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add_section_time(name, (time.perf_counter_ns() - start) / 1e9)

    def reset(self) -> None:
        """Forget every section and counter."""
        self.sections.clear()
        self.counters.clear()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Flat numeric view of every section (for reports and tests)."""
        return {
            name: {
                "calls": float(stats.calls),
                "total_seconds": stats.total_seconds,
                "mean_seconds": stats.mean_seconds,
                "min_seconds": stats.min_seconds if stats.calls else 0.0,
                "max_seconds": stats.max_seconds,
            }
            for name, stats in self.sections.items()
        }


#: Module-global recorder the engines and harnesses report into by default.
_GLOBAL_RECORDER = PerfRecorder()


def get_recorder() -> PerfRecorder:
    """The module-global :class:`PerfRecorder`."""
    return _GLOBAL_RECORDER


def section(name: str):
    """Context manager timing a block under ``name`` on the global recorder."""
    return _GLOBAL_RECORDER.section(name)


def record_value(name: str, amount: float = 1.0) -> None:
    """Increase counter ``name`` on the global recorder."""
    _GLOBAL_RECORDER.count(name, amount)
