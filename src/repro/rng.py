"""Deterministic random-number utilities.

The reproduction relies on procedurally generated surveillance scenes and a
simulated cluster.  Every stochastic component draws from a
:class:`numpy.random.Generator` obtained through :func:`make_rng` so that a
single integer seed reproduces an entire experiment bit-for-bit.

The helpers here implement a tiny *seed-derivation* scheme: a root seed plus a
sequence of string labels (e.g. ``("jackson_square", "events")``) maps to a
unique child seed.  This keeps independent components decorrelated while
remaining reproducible and order-independent.

Seeding contract
----------------

Every stochastic component of the library MUST obey these rules, which
together guarantee that a single root seed reproduces an entire experiment —
including the discrete-event fleet simulator — bit for bit:

1. **All randomness flows through** :func:`make_rng`.  Components never call
   ``numpy.random.default_rng`` (or the global ``numpy.random`` state)
   directly, and never consult wall-clock time, object ids or iteration
   order of unordered containers.
2. **Child seeds are derived, not shared.**  A component that needs its own
   stream derives it as ``make_rng(root, "component", "purpose")`` (e.g. the
   fleet simulator's arrival jitter uses ``("fleet", "arrivals")``).
   Distinct label tuples give decorrelated streams, so adding a consumer
   never perturbs existing ones.
3. **Draw order is fixed.**  Within one component, draws happen in a
   deterministic order (e.g. one vectorised ``uniform`` of length N rather
   than N data-dependent scalar draws), so equal seeds imply equal values.
4. **The event scheduler adds no randomness.**  Simultaneous events fire in
   submission order (:class:`repro.dataflow.scheduler.EventScheduler` breaks
   time ties with a monotone sequence number); therefore two fleet runs with
   the same jobs, configuration and root seed produce identical metrics,
   which the determinism regression test pins.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

#: Default root seed used across the library when the caller does not care.
DEFAULT_SEED = 20200601  # arXiv submission date of the SiEVE paper.

SeedLike = Union[int, np.random.Generator, None]


def derive_seed(root: int, *labels: str) -> int:
    """Derive a child seed from ``root`` and a sequence of string labels.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash``), and distinct label tuples yield
    decorrelated seeds.

    Args:
        root: Root integer seed.
        *labels: Arbitrary string labels identifying the consumer.

    Returns:
        A non-negative integer seed strictly below ``2**63``.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x00")
        hasher.update(str(label).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def make_rng(seed: SeedLike = None, *labels: str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from a flexible seed spec.

    Args:
        seed: ``None`` (use :data:`DEFAULT_SEED`), an integer root seed, or an
            existing generator (returned unchanged when no labels are given,
            otherwise used to draw a child seed).
        *labels: Optional labels used to derive a child seed via
            :func:`derive_seed`.

    Returns:
        A NumPy random generator.
    """
    if isinstance(seed, np.random.Generator):
        if not labels:
            return seed
        child_root = int(seed.integers(0, 2**62))
        return np.random.default_rng(derive_seed(child_root, *labels))
    root = DEFAULT_SEED if seed is None else int(seed)
    if labels:
        return np.random.default_rng(derive_seed(root, *labels))
    return np.random.default_rng(root)


def spawn_seeds(root: int, labels: Iterable[str]) -> dict:
    """Derive one child seed per label.

    Args:
        root: Root integer seed.
        labels: Iterable of string labels.

    Returns:
        Mapping from label to derived child seed.
    """
    return {label: derive_seed(root, label) for label in labels}
