"""Real-time streaming service layer over the discrete-event engine.

The batch simulators (:mod:`repro.cluster`, :mod:`repro.parallel`) drain a
pre-planned workload as fast as Python allows.  This package runs the same
engine as a *service*: a clock driver paces events against wall time, an
ingest front end admits per-camera stream sessions with backpressure, a
status endpoint serves live health snapshots, and the finished streams
reconcile — bit-for-bit — against a virtual-clock run of the same workload
through the existing :meth:`FleetReport.parity_mismatches` contract.

See ``examples/streaming_service.py`` for the end-to-end demonstration.
"""

from .clock import ClockDriver, RealTimeClock, VirtualClock
from .feeder import ChunkFeeder
from .ingest import StreamIngest
from .scenario_feed import (ClipAnalysis, analyse_scenario, chunk_analysis,
                            scenario_chunks)
from .service import StreamingService
from .session import (FrameChunk, SessionState, StreamSession, TenantPolicy,
                      chunk_camera_job)
from .status import (HealthSample, ServiceStatus, SessionSnapshot,
                     StationSnapshot, snapshot_session, snapshot_station)

__all__ = [
    "ClockDriver", "RealTimeClock", "VirtualClock",
    "ChunkFeeder",
    "StreamIngest",
    "StreamingService",
    "ClipAnalysis", "analyse_scenario", "chunk_analysis", "scenario_chunks",
    "FrameChunk", "SessionState", "StreamSession", "TenantPolicy",
    "chunk_camera_job",
    "HealthSample", "ServiceStatus", "SessionSnapshot", "StationSnapshot",
    "snapshot_session", "snapshot_station",
]
