"""Clock drivers: one event engine, two notions of time.

The discrete-event core (:class:`repro.dataflow.scheduler.EventScheduler`)
is a *virtual* clock: ``run()`` fires events as fast as Python can, so one
simulated hour costs milliseconds.  A long-running service needs the same
event loop paced against *wall* time instead.  A :class:`ClockDriver` owns
exactly one decision — *when* to call :meth:`EventScheduler.step` — and
nothing else:

* :class:`VirtualClock` delegates straight to ``scheduler.run()`` — today's
  drain-the-heap behaviour, bit for bit.
* :class:`RealTimeClock` sleeps before each event until the event's virtual
  instant maps to the current wall clock under a configurable ``speedup``
  factor (``speedup=1`` is true real time; ``speedup=3600`` compresses an
  hour into a second).

Because a driver never changes what events do, their virtual times, or the
order they fire in (ties still break by submission sequence), a workload
produces an *identical* simulation under any driver — which is the parity
contract ``tests/service/test_parity_and_soak.py`` pins and
``examples/streaming_service.py`` asserts end to end.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..dataflow.scheduler import EventScheduler
from ..errors import ServiceError


class ClockDriver:
    """Strategy deciding when an :class:`EventScheduler` fires its events."""

    #: Human-readable driver name (surfaced in :class:`ServiceStatus`).
    name = "abstract"

    def run(self, scheduler: EventScheduler,
            until: Optional[float] = None) -> int:
        """Drive ``scheduler`` until its heap drains (or ``until`` passes).

        Must preserve :meth:`EventScheduler.run` horizon semantics: an event
        exactly at ``until`` fires, strictly later events stay queued, and
        the clock advances to ``until``.

        Returns:
            The number of events fired by this call.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for logs and status snapshots."""
        return self.name


class VirtualClock(ClockDriver):
    """Fire events as fast as possible (the batch/simulation mode).

    ``run`` is a straight delegation to :meth:`EventScheduler.run`, so a
    virtual-clock service is bit-identical to the pre-service simulators.
    """

    name = "virtual"

    def run(self, scheduler: EventScheduler,
            until: Optional[float] = None) -> int:
        return scheduler.run(until=until)


class RealTimeClock(ClockDriver):
    """Pace :meth:`EventScheduler.step` against the wall clock.

    One virtual second occupies ``1 / speedup`` wall seconds.  The driver
    anchors (virtual time, wall time) on its first ``run`` call; before
    firing an event at virtual time ``t`` it sleeps until the wall clock
    reaches ``anchor_wall + (t - anchor_virtual) / speedup``.  Events whose
    wall deadline has already passed fire immediately and the shortfall is
    recorded in :attr:`max_lag_seconds` — the service health snapshot's
    measure of how far the loop is falling behind real time.

    Args:
        speedup: Virtual-to-wall time ratio (must be positive).
        wall: Monotonic wall-clock source (injectable for deterministic
            tests; defaults to :func:`time.monotonic`).
        sleep: Sleep function (injectable for tests; :func:`time.sleep`).
    """

    name = "real-time"

    def __init__(self, speedup: float = 1.0, *,
                 wall: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if speedup <= 0:
            raise ServiceError(f"speedup must be positive, got {speedup}")
        self.speedup = float(speedup)
        self._wall = wall
        self._sleep = sleep
        self._wall_anchor: Optional[float] = None
        self._virtual_anchor = 0.0
        #: Total wall seconds spent sleeping between events.
        self.total_sleep_seconds = 0.0
        #: Worst observed wall-clock lateness of any event (0 = on schedule).
        self.max_lag_seconds = 0.0
        #: Events fired through this driver across all ``run`` calls.
        self.events_fired = 0

    def describe(self) -> str:
        return f"{self.name} (speedup={self.speedup:g}x)"

    def reset(self) -> None:
        """Drop the wall/virtual anchor so the next ``run`` re-anchors."""
        self._wall_anchor = None

    def _pace(self, virtual_time: float) -> None:
        """Sleep until ``virtual_time``'s wall deadline (record any lag)."""
        assert self._wall_anchor is not None
        target = (self._wall_anchor
                  + (virtual_time - self._virtual_anchor) / self.speedup)
        delay = target - self._wall()
        if delay > 0:
            self._sleep(delay)
            self.total_sleep_seconds += delay
        elif -delay > self.max_lag_seconds:
            self.max_lag_seconds = -delay

    def run(self, scheduler: EventScheduler,
            until: Optional[float] = None) -> int:
        if self._wall_anchor is None:
            self._wall_anchor = self._wall()
            self._virtual_anchor = scheduler.now
        fired = 0
        while True:
            next_time = scheduler.next_event_time
            if next_time is None or (until is not None and next_time > until):
                break
            self._pace(next_time)
            scheduler.step()
            fired += 1
        if until is not None and until > scheduler.now:
            # Idle tail of a bounded run: wait out the remaining horizon in
            # wall time, then advance the virtual clock to it (exactly what
            # `EventScheduler.run(until=...)` does instantaneously).
            self._pace(until)
            scheduler.advance_to(until)
        self.events_fired += fired
        return fired
