"""Deterministic chunk feeders: simulated live cameras.

A :class:`ChunkFeeder` plays a pre-planned list of
:class:`~repro.service.session.FrameChunk` into an open session at a fixed
virtual period, the way a camera delivers one group of pictures per
interval.  Pushes that hit backpressure are retried under a
:class:`~repro.faults.retry.RetryPolicy` — bounded attempts, optional
exponential backoff — instead of being dropped *or* retried forever: a
feeder that exhausts its budget gives up and closes the session with
reason ``"backpressure"`` rather than livelocking the event loop against
a wedge that will never clear.  The session is closed normally when the
plan is exhausted.

Everything the feeder does is a control event on the service's scheduler
(:meth:`StreamingService.at` / :meth:`~StreamingService.after`), so a fed
workload is bit-identical under the virtual and real-time clock drivers —
the property the parity tests and ``examples/streaming_service.py`` pin.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..errors import BackpressureError, ServiceError
from ..faults.retry import RetryPolicy
from .session import FrameChunk


class ChunkFeeder:
    """Push a chunk plan into one session at a fixed virtual period.

    Args:
        service: The owning :class:`~repro.service.service.StreamingService`.
        session_id: Target session (must be open when pushes fire).
        chunks: The chunk plan, pushed in order.
        period_seconds: Virtual seconds between consecutive pushes.
        retry_seconds: Back-off before retrying a push that hit
            backpressure (default: a quarter period).  Ignored when
            ``retry_policy`` is given.
        close_when_done: Close the session after the last chunk is pushed.
        retry_policy: Full backoff/budget control.  The default is
            ``RetryPolicy.constant(retry_seconds, max_attempts=64)`` —
            the historical fixed-period cadence, now with a finite
            budget so a permanently wedged session cannot spin the
            feeder forever.

    Attributes:
        retries: Pushes that hit backpressure and were rescheduled.
        gave_up: Whether the retry budget ran out on some chunk (the
            session was then closed with reason ``"backpressure"``).
        halted: Whether the session was closed out from under the feeder
            (stall watchdog, edge loss) and feeding stopped.
        attempt_histogram: ``{consecutive failures: chunks}`` observed
            before a chunk finally got through (or the feeder gave up).
    """

    def __init__(self, service, session_id: str,
                 chunks: Sequence[FrameChunk], period_seconds: float,
                 retry_seconds: Optional[float] = None,
                 close_when_done: bool = True,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if period_seconds <= 0:
            raise ServiceError(
                f"period_seconds must be positive, got {period_seconds}")
        if retry_seconds is not None and retry_seconds <= 0:
            raise ServiceError(
                f"retry_seconds must be positive, got {retry_seconds}")
        self._service = service
        self.session_id = session_id
        self.chunks = list(chunks)
        self.period_seconds = float(period_seconds)
        self.retry_seconds = (float(retry_seconds) if retry_seconds is not None
                              else self.period_seconds / 4.0)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.constant(self.retry_seconds,
                                                       max_attempts=64))
        self.close_when_done = close_when_done
        #: Index of the next chunk to push.
        self.next_index = 0
        #: Pushes that hit backpressure and were rescheduled.
        self.retries = 0
        self.gave_up = False
        self.halted = False
        self.attempt_histogram: Dict[int, int] = {}
        #: Consecutive backpressure failures of the chunk at ``next_index``.
        self._attempts = 0
        self._started = False
        register = getattr(service, "_register_feeder", None)
        if register is not None:
            register(self)

    @property
    def done(self) -> bool:
        """Whether every chunk in the plan has been pushed."""
        return self.next_index >= len(self.chunks)

    def start(self, at: Optional[float] = None) -> "ChunkFeeder":
        """Schedule the first push (``at`` absolute time, default: now)."""
        if self._started:
            raise ServiceError(
                f"feeder for {self.session_id!r} already started")
        self._started = True
        if not self.chunks:
            self._maybe_close()
            return self
        if at is None:
            at = self._service.scheduler.now
        self._service.at(at, self._push)
        return self

    def _push(self) -> None:
        if self.done:  # pragma: no cover - defensive; _push stops at the end.
            return
        chunk = self.chunks[self.next_index]
        try:
            self._service.push_frames(self.session_id, chunk)
        except BackpressureError:
            # Push back: retry the same chunk later instead of dropping
            # it — until the policy's attempt budget runs out.
            self._attempts += 1
            self.retries += 1
            if self.retry_policy.exhausted(self._attempts):
                self._give_up()
                return
            delay = self.retry_policy.delay_seconds(
                self._attempts, key=f"{self.session_id}:{self.next_index}")
            self._service.after(delay, self._push)
            return
        except ServiceError:
            # The session was closed out from under us (stall watchdog,
            # edge loss): stop feeding instead of erroring the event loop.
            self.halted = True
            self._observe_attempts()
            return
        self._observe_attempts()
        self.next_index += 1
        if self.done:
            self._maybe_close()
        else:
            self._service.after(self.period_seconds, self._push)

    def _observe_attempts(self) -> None:
        if self._attempts:
            self.attempt_histogram[self._attempts] = (
                self.attempt_histogram.get(self._attempts, 0) + 1)
            self._attempts = 0

    def _give_up(self) -> None:
        """The backpressure never cleared: close with a reason, stop."""
        self.gave_up = True
        self.attempt_histogram[self._attempts] = (
            self.attempt_histogram.get(self._attempts, 0) + 1)
        self._attempts = 0
        self._service.close_session(self.session_id, reason="backpressure")

    def _maybe_close(self) -> None:
        if self.close_when_done:
            self._service.close_session(self.session_id)
