"""Stream ingest: admission control and backpressure for live sessions.

:class:`StreamIngest` is the service's front door.  It decides which
camera streams get in (:meth:`open_session`), polices how fast each one
may push (:meth:`push_frames`), and tracks the session lifecycle through
draining and close.  It deliberately knows nothing about stations, links
or clocks — the owning :class:`~repro.service.service.StreamingService`
injects three callables (attach a session's uplink, submit a chunk, read a
WAN queue depth), so admission logic stays unit-testable with stubs.

Admission is refused (:class:`~repro.errors.AdmissionError`) when the
service-wide session cap is hit, the tenant is unknown, the tenant's own
quota is exhausted, or the target edge's WAN uplink queue is already past
the configured bound.  Accepted sessions are placed round-robin across
edge servers unless the caller pins one.

Backpressure is per-session and live-tunable: a push that would exceed the
session's ``max_pending_chunks`` in-flight bound, or that arrives while
the edge's WAN queue is past the service bound, raises
:class:`~repro.errors.BackpressureError` — the caller (e.g.
:class:`~repro.service.feeder.ChunkFeeder`) is expected to retry later
rather than have the service queue unboundedly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..codec.gop import EncoderParameters
from ..errors import AdmissionError, BackpressureError, ServiceError
from .session import FrameChunk, SessionState, StreamSession, TenantPolicy


class StreamIngest:
    """Admission control and per-session backpressure.

    Args:
        scheduler: The service's event scheduler (read for timestamps only).
        num_edge_servers: Edge servers available for placement.
        attach_session: Callback invoked with a newly admitted
            :class:`StreamSession` so the service can build its uplink.
        submit_chunk: Callback ``(session, chunk) -> None`` that injects an
            accepted chunk into the service pipeline.
        wan_queue_depth: Callback ``(edge_index) -> int`` reporting the
            edge's WAN uplink queue depth (drives admission/backpressure).
        max_sessions: Service-wide concurrent session cap.
        max_wan_queue_depth: When set, refuse admission to an edge whose
            WAN queue is at or past this depth, and push back frame pushes
            while it stays there.  ``None`` disables the WAN bound.
        tenants: Initial tenant policies.  A ``"default"`` tenant is
            registered automatically if absent.
        degraded_tenant: When set, admissions refused for *sheddable*
            reasons (the requested tenant's quota is exhausted) are
            retried under this tenant's policy instead of failing hard —
            graceful degradation under sustained overload.
        push_gate: Optional callback ``(edge_index) -> Optional[str]``
            consulted last on every push; a non-``None`` refusal reason
            (offline edge, open circuit breaker) bounces the push as
            :class:`BackpressureError` so feeders retry with backoff.
        edge_available: Optional callback ``(edge_index) -> bool``;
            round-robin placement skips unavailable edges and pinned
            placement onto one is refused.
    """

    def __init__(self, scheduler, num_edge_servers: int,
                 attach_session: Callable[[StreamSession], None],
                 submit_chunk: Callable[[StreamSession, FrameChunk], None],
                 wan_queue_depth: Callable[[int], int],
                 max_sessions: int = 64,
                 max_wan_queue_depth: Optional[int] = None,
                 tenants: Sequence[TenantPolicy] = (),
                 degraded_tenant: Optional[TenantPolicy] = None,
                 push_gate: Optional[Callable[[int], Optional[str]]] = None,
                 edge_available: Optional[Callable[[int], bool]] = None
                 ) -> None:
        if num_edge_servers < 1:
            raise ServiceError("num_edge_servers must be >= 1")
        if max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        if max_wan_queue_depth is not None and max_wan_queue_depth < 1:
            raise ServiceError("max_wan_queue_depth must be >= 1 or None")
        self._scheduler = scheduler
        self.num_edge_servers = int(num_edge_servers)
        self._attach_session = attach_session
        self._submit_chunk = submit_chunk
        self._wan_queue_depth = wan_queue_depth
        self.max_sessions = int(max_sessions)
        self.max_wan_queue_depth = max_wan_queue_depth
        self.tenants: Dict[str, TenantPolicy] = {}
        for policy in tenants:
            self.tenants[policy.name] = policy
        if "default" not in self.tenants:
            self.tenants["default"] = TenantPolicy(name="default")
        self.degraded_tenant = degraded_tenant
        if degraded_tenant is not None:
            self.tenants.setdefault(degraded_tenant.name, degraded_tenant)
        self._push_gate = push_gate
        self._edge_available = edge_available
        #: All sessions ever admitted, in admission order, by session id.
        self.sessions: Dict[str, StreamSession] = {}
        self._placement_counter = 0
        #: Pushes refused with BackpressureError (monotonic counter).
        self.pushes_rejected = 0
        #: Sessions refused with AdmissionError (monotonic counter).
        self.sessions_rejected = 0
        #: Admissions shed to the degraded tenant tier (monotonic counter).
        self.sessions_degraded = 0
        #: Close-reason histogram ("client", "completed", "stalled", ...).
        self.close_reasons: Dict[str, int] = {}
        #: Optional observer fired when an admission is shed to the
        #: degraded tier (the fault driver records it in the trace).
        self.on_session_degraded: Optional[
            Callable[[StreamSession], None]] = None
        #: Optional observer fired after every *accepted* push whose chunk
        #: carries a scene payload (the adaptive controller's feed).  Runs
        #: after the chunk is submitted, so a triggered retune only
        #: affects later chunks.
        self.on_chunk_scene: Optional[
            Callable[[StreamSession, FrameChunk], None]] = None

    # ------------------------------------------------------------------ #
    # Tenants
    # ------------------------------------------------------------------ #
    def register_tenant(self, policy: TenantPolicy) -> None:
        """Add or replace a tenant policy.

        Replacing a policy is graceful: existing sessions keep their
        current placement, uplinks and backpressure bounds; only future
        admissions and pushes see the new quota.
        """
        self.tenants[policy.name] = policy

    def active_sessions_of(self, tenant: str) -> int:
        """Sessions of ``tenant`` currently open or draining."""
        return sum(1 for session in self.sessions.values()
                   if session.tenant == tenant
                   and session.state is not SessionState.CLOSED)

    @property
    def active_sessions(self) -> int:
        """Sessions currently open or draining, across all tenants."""
        return sum(1 for session in self.sessions.values()
                   if session.state is not SessionState.CLOSED)

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def open_session(self, camera: str, tenant: str = "default",
                     edge_index: Optional[int] = None) -> StreamSession:
        """Admit a camera stream, or raise :class:`AdmissionError`.

        With a ``degraded_tenant`` configured, a *sheddable* refusal
        (tenant quota exhausted) retries the admission under the degraded
        tier's policy before giving up — the session is admitted with the
        degraded tenant's (tighter) backpressure bounds instead of being
        bounced.
        """
        try:
            return self._admit(camera, tenant, edge_index)
        except AdmissionError as error:
            degraded = self.degraded_tenant
            if (degraded is not None and error.sheddable
                    and tenant != degraded.name):
                try:
                    session = self._admit(camera, degraded.name, edge_index)
                except AdmissionError:
                    self.sessions_rejected += 1
                    raise error from None
                self.sessions_degraded += 1
                if self.on_session_degraded is not None:
                    self.on_session_degraded(session)
                return session
            self.sessions_rejected += 1
            raise

    def _admit(self, camera: str, tenant: str,
               edge_index: Optional[int]) -> StreamSession:
        """One admission attempt under one tenant policy."""
        if camera in self.sessions and (
                self.sessions[camera].state is not SessionState.CLOSED):
            raise AdmissionError(
                f"camera {camera!r} already has an active session")
        if self.active_sessions >= self.max_sessions:
            raise AdmissionError(
                f"service is full ({self.max_sessions} sessions)")
        policy = self.tenants.get(tenant)
        if policy is None:
            raise AdmissionError(f"unknown tenant {tenant!r}")
        if self.active_sessions_of(tenant) >= policy.max_sessions:
            # Sheddable: this is the capacity-overload case a degraded
            # tier exists to absorb.
            raise AdmissionError(
                f"tenant {tenant!r} is at its session quota "
                f"({policy.max_sessions})", sheddable=True)
        if edge_index is None:
            # Round-robin over the healthy edges: each candidate consumes
            # one counter tick, so with every edge healthy (the fault-free
            # default) this is exactly the seed's single increment.
            for _ in range(self.num_edge_servers):
                candidate = self._placement_counter % self.num_edge_servers
                self._placement_counter += 1
                if (self._edge_available is None
                        or self._edge_available(candidate)):
                    edge_index = candidate
                    break
            else:
                raise AdmissionError("no healthy edge server available")
        elif not 0 <= edge_index < self.num_edge_servers:
            raise AdmissionError(
                f"edge_index {edge_index} out of range "
                f"[0, {self.num_edge_servers})")
        elif (self._edge_available is not None
                and not self._edge_available(edge_index)):
            raise AdmissionError(f"edge {edge_index} is offline")
        if (self.max_wan_queue_depth is not None
                and self._wan_queue_depth(edge_index)
                >= self.max_wan_queue_depth):
            raise AdmissionError(
                f"edge {edge_index} uplink is saturated "
                f"(queue >= {self.max_wan_queue_depth})")
        session = StreamSession(
            session_id=camera, camera=camera, tenant=tenant,
            edge_index=edge_index, opened_at=self._scheduler.now,
            max_pending_chunks=policy.max_pending_chunks)
        self.sessions[camera] = session
        self._attach_session(session)
        return session

    def push_frames(self, session_id: str, chunk: FrameChunk) -> None:
        """Accept a frame chunk into the pipeline, or push back.

        Raises:
            ServiceError: The session does not exist or is not open.
            BackpressureError: The session's in-flight bound or the edge's
                WAN queue bound is exceeded; retry later.
        """
        session = self._session(session_id)
        if not session.is_open:
            raise ServiceError(
                f"session {session_id!r} is {session.state.value}, "
                "not open for pushes")
        if session.in_flight >= session.max_pending_chunks:
            self.pushes_rejected += 1
            raise BackpressureError(
                f"session {session_id!r} has {session.in_flight} chunks "
                f"in flight (bound {session.max_pending_chunks})")
        if (self.max_wan_queue_depth is not None
                and self._wan_queue_depth(session.edge_index)
                >= self.max_wan_queue_depth):
            self.pushes_rejected += 1
            raise BackpressureError(
                f"edge {session.edge_index} uplink is saturated "
                f"(queue >= {self.max_wan_queue_depth})")
        if self._push_gate is not None:
            # Checked last so a granted half-open breaker probe is always
            # followed by an actual submission.
            refusal = self._push_gate(session.edge_index)
            if refusal is not None:
                self.pushes_rejected += 1
                raise BackpressureError(refusal)
        now = self._scheduler.now
        session.last_push = now
        if session.chunks_pushed == 0:
            session.first_arrival = now
        session.chunks_pushed += 1
        session.frames_pushed += chunk.num_frames
        session.frames_for_inference += chunk.frames_for_inference
        session.edge_seconds_pushed += chunk.edge_seconds
        session.cloud_seconds_pushed += chunk.cloud_seconds
        session.camera_edge_bytes_pushed += chunk.camera_edge_bytes
        session.edge_cloud_bytes_pushed += chunk.edge_cloud_bytes
        self._submit_chunk(session, chunk)
        if self.on_chunk_scene is not None and chunk.scene is not None:
            self.on_chunk_scene(session, chunk)

    def close_session(self, session_id: str,
                      reason: str = "client") -> StreamSession:
        """Stop accepting pushes; the session drains its in-flight chunks.

        ``reason`` records *why* the session closed ("client" for an
        ordinary close; the fault plane uses "stalled", "backpressure",
        "edge-lost", ...).  Only the first close sets the reason; the
        histogram is served in ``ServiceStatus.close_reasons``.
        """
        session = self._session(session_id)
        if session.state is SessionState.CLOSED:
            return session
        if session.state is SessionState.OPEN:
            session.state = SessionState.DRAINING
            if not session.close_reason:
                session.close_reason = str(reason)
            self.close_reasons[session.close_reason] = (
                self.close_reasons.get(session.close_reason, 0) + 1)
        self._maybe_finalise(session)
        return session

    def retune_session(self, session_id: str, *,
                       max_pending_chunks: Optional[int] = None,
                       parameters: Optional[EncoderParameters] = None
                       ) -> StreamSession:
        """Adjust a live session without dropping it.

        Either (or both) of the session's backpressure bound and its
        deployed encoder parameters can be retuned; a parameter retune
        bumps ``session.parameter_version``.  The adaptive controller
        applies confirmed drift winners through exactly this path.
        """
        if max_pending_chunks is None and parameters is None:
            raise ServiceError(
                "retune_session needs max_pending_chunks and/or parameters")
        if max_pending_chunks is not None and max_pending_chunks < 1:
            raise ServiceError("max_pending_chunks must be >= 1")
        session = self._session(session_id)
        if session.state is SessionState.CLOSED:
            raise ServiceError(f"session {session_id!r} is closed")
        if max_pending_chunks is not None:
            session.max_pending_chunks = int(max_pending_chunks)
        if parameters is not None:
            session.parameters = parameters
            session.parameter_version += 1
        return session

    def on_chunk_complete(self, session: StreamSession,
                          latency_seconds: float) -> None:
        """Record a finished chunk (called by the service pipeline)."""
        session.chunks_completed += 1
        session.last_completion = self._scheduler.now
        session.chunk_latencies.append(latency_seconds)
        self._maybe_finalise(session)

    def on_chunk_failed(self, session: StreamSession) -> None:
        """Record a chunk lost for good (fault plane, failover impossible).

        The chunk leaves the in-flight accounting so a draining session
        can still finalise instead of waiting forever for a completion
        that will never come.
        """
        session.chunks_failed += 1
        self._maybe_finalise(session)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _session(self, session_id: str) -> StreamSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return session

    def _maybe_finalise(self, session: StreamSession) -> None:
        if session.state is SessionState.DRAINING and session.in_flight == 0:
            session.state = SessionState.CLOSED
            session.closed_at = self._scheduler.now
