"""Turn any scenario — or composition spec — into a streamable chunk feed.

``examples/drift_soak.py`` used to hard-code its render → analyse → chunk
pipeline against the ``drifting`` scenario.  This module is the library
form: give it any name :func:`~repro.video.scenarios.make_scenario`
accepts (including DSL specs such as ``"highway+rain+night_cycle"``) and
it renders the clip once, runs the scene-cut analysis pass, and slices
the result into scene-carrying :class:`FrameChunk` objects ready for
:meth:`StreamingService.push_frames` or a
:class:`~repro.service.feeder.ChunkFeeder`.

Everything downstream of the profile is deterministic, so two calls with
the same arguments produce byte-identical chunk sequences — the property
the soak examples' CI jobs diff on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..adapt import chunk_scene
from ..codec.scenecut import FrameActivity, SceneCutAnalyzer
from ..video.scenarios import make_scenario
from ..video.synthetic import SyntheticScene
from .session import FrameChunk

#: Seconds of footage per chunk; pushes paced at this period keep
#: decision times aligned with footage time.
DEFAULT_CHUNK_SECONDS = 2.0

#: Synthetic per-chunk pipeline costs — tiny, so every chunk drains well
#: before the next push and soaks never trip backpressure.
DEFAULT_EDGE_SECONDS = 0.05
DEFAULT_CLOUD_SECONDS = 0.02
DEFAULT_LAN_BYTES_PER_FRAME = 1200
DEFAULT_WAN_BYTES_PER_FRAME = 150


@dataclass(frozen=True)
class ClipAnalysis:
    """One rendered clip after the analysis pass.

    Attributes:
        activities: Per-frame scene-cut activities, in frame order.
        frame_labels: Per-frame ground-truth label sets.
        lumas: Per-frame mean luma (the drift detectors' brightness feed).
        fps: Frame rate of the rendered profile.
    """

    activities: Tuple[FrameActivity, ...]
    frame_labels: Tuple[frozenset, ...]
    lumas: Tuple[float, ...]
    fps: float


def analyse_scenario(name: str, duration_seconds: float,
                     render_scale: float, seed: Optional[int] = None,
                     precision: str = "exact") -> ClipAnalysis:
    """Render a scenario clip and run the analysis pass once.

    Args:
        name: Scenario name or composition spec
            (``"night+snow+dropout"``) — anything
            :func:`~repro.video.scenarios.make_scenario` accepts.
        duration_seconds: Clip length to render.
        render_scale: Resolution scale factor.
        seed: Optional schedule-seed override, forwarded to the scenario
            constructor.
        precision: Scene-cut analyzer precision (``"exact"`` or
            ``"fast"``).
    """
    profile = make_scenario(name, duration_seconds=duration_seconds,
                            render_scale=render_scale, seed=seed)
    scene = SyntheticScene(profile)
    labels = scene.script.frame_labels()
    analyzer = SceneCutAnalyzer(precision=precision)
    activities: List[FrameActivity] = []
    lumas: List[float] = []
    for index in range(profile.num_frames):
        frame = scene.frame_array(index)
        activities.append(analyzer.analyze_next(frame))
        lumas.append(float(np.asarray(frame, dtype=np.float64).mean()))
    return ClipAnalysis(activities=tuple(activities),
                        frame_labels=tuple(frozenset(f) for f in labels),
                        lumas=tuple(lumas), fps=profile.fps)


def chunk_analysis(analysis: ClipAnalysis,
                   chunk_seconds: float = DEFAULT_CHUNK_SECONDS,
                   edge_seconds: float = DEFAULT_EDGE_SECONDS,
                   cloud_seconds: float = DEFAULT_CLOUD_SECONDS,
                   lan_bytes_per_frame: int = DEFAULT_LAN_BYTES_PER_FRAME,
                   wan_bytes_per_frame: int = DEFAULT_WAN_BYTES_PER_FRAME,
                   ) -> List[FrameChunk]:
    """Slice an analysed clip into scene-carrying stream chunks.

    Trailing frames that do not fill a whole chunk are dropped, matching
    the paced feeders' expectation of uniform chunk durations.
    """
    per_chunk = int(round(chunk_seconds * analysis.fps))
    num_chunks = len(analysis.activities) // per_chunk
    chunks = []
    for index in range(num_chunks):
        lo, hi = index * per_chunk, (index + 1) * per_chunk
        scene = chunk_scene(
            analysis.activities[lo:hi], analysis.frame_labels[lo:hi],
            mean_brightness=float(np.mean(analysis.lumas[lo:hi])))
        chunks.append(FrameChunk(
            num_frames=per_chunk,
            frames_for_inference=max(per_chunk // 20, 1),
            edge_seconds=edge_seconds,
            cloud_seconds=cloud_seconds,
            camera_edge_bytes=lan_bytes_per_frame * per_chunk,
            edge_cloud_bytes=wan_bytes_per_frame * per_chunk,
            scene=scene))
    return chunks


def scenario_chunks(name: str, duration_seconds: float, render_scale: float,
                    seed: Optional[int] = None,
                    chunk_seconds: float = DEFAULT_CHUNK_SECONDS,
                    ) -> List[FrameChunk]:
    """Render, analyse and chunk a scenario in one call."""
    analysis = analyse_scenario(name, duration_seconds, render_scale,
                                seed=seed)
    return chunk_analysis(analysis, chunk_seconds=chunk_seconds)
