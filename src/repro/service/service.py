"""The long-running streaming service over the discrete-event engine.

:class:`StreamingService` assembles the pieces into the deployment shape
of the batch :class:`~repro.cluster.fleet.FleetOrchestrator` — per-edge
compute stations and WAN uplinks funnelling into one cloud tier — but
driven live:

* cameras connect through :class:`~repro.service.ingest.StreamIngest`
  sessions and push :class:`~repro.service.session.FrameChunk` work
  incrementally instead of arriving as one pre-planned batch;
* a :class:`~repro.service.clock.ClockDriver` decides how the event loop
  advances — :class:`VirtualClock` drains as fast as possible (bit-identical
  to the batch simulators), :class:`RealTimeClock` paces against the wall;
* :meth:`status` serves live health snapshots whose utilisations are exact
  (and bounded by 1.0) even mid-service, via the pro-rated busy accounting
  on :class:`~repro.dataflow.scheduler.ServiceStation`;
* :meth:`fleet_report` folds the finished streams into an ordinary
  :class:`~repro.cluster.fleet.FleetReport`, so the existing
  ``parity_mismatches`` contract can compare a real-time run against a
  virtual-clock run of the same workload.

Determinism and parity: everything that can change simulation state —
frame pushes, session opens/closes, tenant registration, retuning — either
happens between ``run`` calls or is scheduled as a control event via
:meth:`at` / :meth:`after`.  Control events live on the same heap as
service completions with the same tie-breaking, so the event sequence (and
therefore every report field) is identical under any clock driver.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.fleet import (CameraJob, FleetReport, JobOutcome,
                             PlacementPolicy, latency_percentiles_of,
                             tier_report)
from ..config import SystemConfig
from ..dataflow.scheduler import EventScheduler, ServiceStation
from ..errors import ServiceError
from ..net.contention import ContendedLink
from ..net.link import NetworkLink
from ..perf import Stopwatch, section
from .clock import ClockDriver, RealTimeClock, VirtualClock
from .ingest import StreamIngest
from .session import FrameChunk, SessionState, StreamSession, TenantPolicy
from .status import (ServiceStatus, SessionSnapshot, StationSnapshot,
                     snapshot_session, snapshot_station)


class StreamingService:
    """A live multi-tenant camera-analytics service on one virtual clock.

    Args:
        config: Service-wide bandwidths/latencies (defaults to the paper's).
        num_edge_servers: Edge servers (each with compute + WAN uplink).
        edge_workers: Parallel compute slots per edge server.
        cloud_workers: Cloud tier slots (default: ``num_edge_servers``).
        clock: Clock driver (default: :class:`VirtualClock`).
        max_sessions: Service-wide concurrent session cap.
        max_wan_queue_depth: WAN-queue admission/backpressure bound
            (``None`` disables it).
        tenants: Initial tenant policies (a ``"default"`` tenant is always
            available).
    """

    def __init__(self, config: Optional[SystemConfig] = None,
                 num_edge_servers: int = 1, edge_workers: int = 1,
                 cloud_workers: Optional[int] = None,
                 clock: Optional[ClockDriver] = None,
                 max_sessions: int = 64,
                 max_wan_queue_depth: Optional[int] = None,
                 tenants: Sequence[TenantPolicy] = ()) -> None:
        if num_edge_servers < 1:
            raise ServiceError("num_edge_servers must be >= 1")
        if edge_workers < 1:
            raise ServiceError("edge_workers must be >= 1")
        self.config = config or SystemConfig()
        self.num_edge_servers = int(num_edge_servers)
        self.edge_workers = int(edge_workers)
        self.cloud_workers = (int(cloud_workers) if cloud_workers is not None
                              else self.num_edge_servers)
        if self.cloud_workers < 1:
            raise ServiceError("cloud_workers must be >= 1")
        self.clock = clock if clock is not None else VirtualClock()
        self.scheduler = EventScheduler()
        self.edge_stations: List[ServiceStation] = []
        self.wan_links: List[ContendedLink] = []
        for index in range(self.num_edge_servers):
            self.edge_stations.append(ServiceStation(
                self.scheduler, f"edge:{index}", capacity=self.edge_workers))
            self.wan_links.append(ContendedLink(self.scheduler, NetworkLink(
                name=f"edge-cloud:{index}",
                bandwidth_mbps=self.config.edge_cloud_bandwidth_mbps,
                latency_ms=self.config.edge_cloud_latency_ms)))
        self.cloud_station = ServiceStation(self.scheduler, "cloud",
                                            capacity=self.cloud_workers)
        #: One camera uplink per session, keyed by session id (built lazily
        #: on admission so per-tenant LAN sizing applies).
        self.lan_links: Dict[str, ContendedLink] = {}
        self.ingest = StreamIngest(
            self.scheduler, self.num_edge_servers,
            attach_session=self._attach_session,
            submit_chunk=self._submit_chunk,
            wan_queue_depth=lambda index: self.wan_links[index].queue_depth,
            max_sessions=max_sessions,
            max_wan_queue_depth=max_wan_queue_depth,
            tenants=tenants)
        #: Wall-clock seconds spent inside ``run`` so far.
        self.wall_run_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Session API (delegated to the ingest front end)
    # ------------------------------------------------------------------ #
    def open_session(self, camera: str, tenant: str = "default",
                     edge_index: Optional[int] = None) -> StreamSession:
        """Admit a camera stream (see :meth:`StreamIngest.open_session`)."""
        return self.ingest.open_session(camera, tenant=tenant,
                                        edge_index=edge_index)

    def push_frames(self, session_id: str, chunk: FrameChunk) -> None:
        """Push a frame chunk (see :meth:`StreamIngest.push_frames`)."""
        self.ingest.push_frames(session_id, chunk)

    def close_session(self, session_id: str) -> StreamSession:
        """Begin draining a session (see :meth:`StreamIngest.close_session`)."""
        return self.ingest.close_session(session_id)

    def retune_session(self, session_id: str, *,
                       max_pending_chunks: int) -> StreamSession:
        """Adjust a live session's backpressure bound without dropping it."""
        return self.ingest.retune_session(
            session_id, max_pending_chunks=max_pending_chunks)

    def register_tenant(self, policy: TenantPolicy) -> None:
        """Add or replace a tenant policy; existing sessions are untouched."""
        self.ingest.register_tenant(policy)

    # ------------------------------------------------------------------ #
    # Control events and the event loop
    # ------------------------------------------------------------------ #
    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a control action at absolute virtual ``time``.

        Feeders and reconfiguration scripts must use this (or
        :meth:`after`) so their effects are ordered on the event heap —
        that ordering is what makes a run reproducible under any clock.
        """
        self.scheduler.schedule_at(time, action)

    def after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule a control action ``delay`` virtual seconds from now."""
        self.scheduler.schedule(delay, action)

    def run(self, until: Optional[float] = None) -> int:
        """Advance the service under its clock driver.

        Returns the number of events fired.  With ``until`` the clock stops
        at that virtual horizon (inclusive); without it the heap drains.
        """
        watch = Stopwatch().start()
        try:
            return self.clock.run(self.scheduler, until=until)
        finally:
            self.wall_run_seconds += watch.stop()

    def run_for(self, seconds: float) -> int:
        """Advance the service ``seconds`` of virtual time from now."""
        if seconds < 0:
            raise ServiceError(f"seconds must be >= 0, got {seconds}")
        return self.run(until=self.scheduler.now + seconds)

    def drain(self) -> int:
        """Run until no events remain (all pushed work completes)."""
        return self.run(until=None)

    # ------------------------------------------------------------------ #
    # Health / metrics
    # ------------------------------------------------------------------ #
    def status(self) -> ServiceStatus:
        """Snapshot the service's live health and metrics."""
        with section("service.status"):
            horizon = self.scheduler.now
            stations: List[StationSnapshot] = []
            for index, station in enumerate(self.edge_stations):
                stations.append(snapshot_station(station.name, station,
                                                 horizon))
                stations.append(snapshot_station(
                    f"wan:{index}", self.wan_links[index], horizon))
            stations.append(snapshot_station("cloud", self.cloud_station,
                                             horizon))
            sessions: List[SessionSnapshot] = []
            for session in self.ingest.sessions.values():
                lan = self.lan_links.get(session.session_id)
                sessions.append(snapshot_session(
                    session, lan.queue_depth if lan is not None else 0))
            if isinstance(self.clock, RealTimeClock):
                speedup = self.clock.speedup
                max_lag = self.clock.max_lag_seconds
            else:
                speedup = float("inf")
                max_lag = 0.0
            return ServiceStatus(
                virtual_now=horizon,
                wall_run_seconds=self.wall_run_seconds,
                clock=self.clock.describe(),
                speedup=speedup,
                clock_max_lag_seconds=max_lag,
                events_processed=self.scheduler.events_processed,
                pending_events=self.scheduler.pending_events,
                active_sessions=self.ingest.active_sessions,
                total_sessions=len(self.ingest.sessions),
                sessions_rejected=self.ingest.sessions_rejected,
                pushes_rejected=self.ingest.pushes_rejected,
                tenants={name: self.ingest.active_sessions_of(name)
                         for name in self.ingest.tenants},
                stations=tuple(stations),
                sessions=tuple(sessions),
            )

    def fleet_report(self) -> FleetReport:
        """Fold the service's streams into a batch-comparable report.

        Each session becomes one synthetic :class:`CameraJob` from its push
        accumulators; outcomes span first push to last completion.  The
        report satisfies the same :meth:`FleetReport.parity_mismatches`
        contract as the batch orchestrator's, which is how the example and
        the tests assert virtual-vs-real-time parity.
        """
        outcomes: List[JobOutcome] = []
        assignments: Dict[str, int] = {}
        latencies: List[float] = []
        for session in self.ingest.sessions.values():
            job = CameraJob(
                camera=session.camera,
                video=f"stream:{session.camera}",
                num_frames=session.frames_pushed,
                frames_for_inference=session.frames_for_inference,
                edge_seconds=session.edge_seconds_pushed,
                cloud_seconds=session.cloud_seconds_pushed,
                camera_edge_bytes=session.camera_edge_bytes_pushed,
                edge_cloud_bytes=session.edge_cloud_bytes_pushed,
            )
            start = (session.first_arrival
                     if session.chunks_pushed > 0 else session.opened_at)
            end = (session.last_completion
                   if session.chunks_completed == session.chunks_pushed
                   and session.chunks_pushed > 0 else float("nan"))
            outcome = JobOutcome(job=job, edge_index=session.edge_index,
                                 start_seconds=start, end_seconds=end)
            outcomes.append(outcome)
            assignments[session.camera] = session.edge_index
            if end == end:  # not nan: the stream fully completed
                latencies.append(outcome.latency_seconds)
        makespan = max((outcome.end_seconds for outcome in outcomes
                        if outcome.end_seconds == outcome.end_seconds),
                       default=0.0)
        edge_tiers = [tier_report(station.stats, station.capacity, makespan)
                      for station in self.edge_stations]
        wan_tiers = [tier_report(link.stats, 1, makespan)
                     for link in self.wan_links]
        cloud_tier = tier_report(self.cloud_station.stats,
                                 self.cloud_station.capacity, makespan)
        jobs = [outcome.job for outcome in outcomes]
        return FleetReport(
            policy=PlacementPolicy.ROUND_ROBIN,
            num_edge_servers=self.num_edge_servers,
            num_cameras=len(jobs),
            makespan_seconds=makespan,
            total_frames=sum(job.num_frames for job in jobs),
            frames_for_inference=sum(job.frames_for_inference
                                     for job in jobs),
            camera_edge_bytes=sum(link.link.total_bytes
                                  for link in self.lan_links.values()),
            edge_cloud_bytes=sum(link.link.total_bytes
                                 for link in self.wan_links),
            edge_busy_seconds=sum(tier.busy_seconds for tier in edge_tiers),
            cloud_busy_seconds=cloud_tier.busy_seconds,
            wan_transfer_seconds=sum(link.link.total_seconds
                                     for link in self.wan_links),
            edge_tiers=edge_tiers,
            wan_tiers=wan_tiers,
            cloud_tier=cloud_tier,
            latency_percentiles=latency_percentiles_of(sorted(latencies)),
            assignments=assignments,
            outcomes=outcomes,
            sim_wall_seconds=self.wall_run_seconds,
            events_processed=self.scheduler.events_processed,
        )

    # ------------------------------------------------------------------ #
    # Pipeline internals
    # ------------------------------------------------------------------ #
    def _attach_session(self, session: StreamSession) -> None:
        """Build the session's camera uplink (tenant config wins)."""
        policy = self.ingest.tenants.get(session.tenant)
        config = (policy.config if policy is not None
                  and policy.config is not None else self.config)
        self.lan_links[session.session_id] = ContendedLink(
            self.scheduler, NetworkLink(
                name=f"camera:{session.camera}",
                bandwidth_mbps=config.camera_edge_bandwidth_mbps,
                latency_ms=config.camera_edge_latency_ms))

    def _submit_chunk(self, session: StreamSession, chunk: FrameChunk) -> None:
        """Chain one chunk through LAN -> edge -> WAN -> cloud."""
        scheduler = self.scheduler
        lan = self.lan_links[session.session_id]
        edge = self.edge_stations[session.edge_index]
        wan = self.wan_links[session.edge_index]
        cloud = self.cloud_station
        arrival = scheduler.now

        def _finish(_: object) -> None:
            self.ingest.on_chunk_complete(session, scheduler.now - arrival)

        def _enter_cloud(_: object) -> None:
            cloud.submit(chunk.cloud_seconds, on_complete=_finish)

        def _enter_wan(_: object) -> None:
            wan.submit(chunk.edge_cloud_bytes,
                       description=f"stream:{session.camera}",
                       on_complete=_enter_cloud)

        def _enter_edge(_: object) -> None:
            edge.submit(chunk.edge_seconds, on_complete=_enter_wan)

        lan.submit(chunk.camera_edge_bytes,
                   description=f"ingest:{session.camera}",
                   on_complete=_enter_edge)


# Re-exported for convenience so callers can build sessions without touching
# the submodules (`from repro.service.service import ...` mirrors cluster).
__all__ = [
    "StreamingService", "SessionState", "TenantPolicy", "FrameChunk",
]
