"""The long-running streaming service over the discrete-event engine.

:class:`StreamingService` assembles the pieces into the deployment shape
of the batch :class:`~repro.cluster.fleet.FleetOrchestrator` — per-edge
compute stations and WAN uplinks funnelling into one cloud tier — but
driven live:

* cameras connect through :class:`~repro.service.ingest.StreamIngest`
  sessions and push :class:`~repro.service.session.FrameChunk` work
  incrementally instead of arriving as one pre-planned batch;
* a :class:`~repro.service.clock.ClockDriver` decides how the event loop
  advances — :class:`VirtualClock` drains as fast as possible (bit-identical
  to the batch simulators), :class:`RealTimeClock` paces against the wall;
* :meth:`status` serves live health snapshots whose utilisations are exact
  (and bounded by 1.0) even mid-service, via the pro-rated busy accounting
  on :class:`~repro.dataflow.scheduler.ServiceStation`;
* :meth:`fleet_report` folds the finished streams into an ordinary
  :class:`~repro.cluster.fleet.FleetReport`, so the existing
  ``parity_mismatches`` contract can compare a real-time run against a
  virtual-clock run of the same workload.

Determinism and parity: everything that can change simulation state —
frame pushes, session opens/closes, tenant registration, retuning — either
happens between ``run`` calls or is scheduled as a control event via
:meth:`at` / :meth:`after`.  Control events live on the same heap as
service completions with the same tie-breaking, so the event sequence (and
therefore every report field) is identical under any clock driver.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..adapt.controller import AdaptiveConfig, AdaptiveTuningController
from ..cluster.fleet import (CameraJob, FleetReport, JobOutcome,
                             PlacementPolicy, latency_percentiles_of,
                             tier_report)
from ..codec.gop import EncoderParameters
from ..config import SystemConfig
from ..dataflow.scheduler import EventScheduler, ServiceStation
from ..errors import ServiceError
from ..faults.injector import ResilienceConfig, ServiceFaultDriver
from ..faults.plan import FaultPlan
from ..faults.stats import FaultStats
from ..net.contention import ContendedLink
from ..net.link import NetworkLink
from ..perf import Stopwatch, section
from .clock import ClockDriver, RealTimeClock, VirtualClock
from .ingest import StreamIngest
from .session import FrameChunk, SessionState, StreamSession, TenantPolicy
from .status import (HealthSample, ServiceStatus, SessionSnapshot,
                     StationSnapshot, snapshot_session, snapshot_station)


class _ChunkRun:
    """Mutable pipeline state of one in-flight chunk.

    Carried as the station/link payload through every stage, so a stage
    failed out by the fault plane can be resubmitted — and, because each
    stage entry re-reads ``session.edge_index``, a resubmission after a
    session failover automatically lands on the session's new edge.
    """

    __slots__ = ("session", "chunk", "arrival", "stage")

    def __init__(self, session: StreamSession, chunk: FrameChunk,
                 arrival: float) -> None:
        self.session = session
        self.chunk = chunk
        self.arrival = arrival
        self.stage = "lan"


class StreamingService:
    """A live multi-tenant camera-analytics service on one virtual clock.

    Args:
        config: Service-wide bandwidths/latencies (defaults to the paper's).
        num_edge_servers: Edge servers (each with compute + WAN uplink).
        edge_workers: Parallel compute slots per edge server.
        cloud_workers: Cloud tier slots (default: ``num_edge_servers``).
        clock: Clock driver (default: :class:`VirtualClock`).
        max_sessions: Service-wide concurrent session cap.
        max_wan_queue_depth: WAN-queue admission/backpressure bound
            (``None`` disables it).
        tenants: Initial tenant policies (a ``"default"`` tenant is always
            available).
        faults: Optional :class:`~repro.faults.FaultPlan` to inject.  With
            neither ``faults`` nor ``resilience`` set, no fault driver is
            installed and the pipeline is bit-identical to the seed.
        resilience: Self-healing knobs (:class:`ResilienceConfig`:
            breaker thresholds, stall watchdog).  Setting it installs the
            fault driver even without a plan.
        degraded_tenant: Overloaded admissions are shed to this tenant
            tier instead of raising ``AdmissionError`` (see
            :meth:`StreamIngest.open_session`).
        adaptive: Optional :class:`~repro.adapt.AdaptiveConfig`.  Setting
            it installs the online :class:`AdaptiveTuningController` —
            accepted pushes carrying a scene payload feed per-session
            drift detectors, and confirmed drifts re-tune the session's
            encoder parameters through :meth:`retune_session`.  Without
            it (the default) no controller exists and the serving path
            is bit-identical to the seed.
        health_history_limit: Ring size of the status health history
            (samples are only captured when counters are non-empty, so
            clean runs keep the ring empty).
    """

    def __init__(self, config: Optional[SystemConfig] = None,
                 num_edge_servers: int = 1, edge_workers: int = 1,
                 cloud_workers: Optional[int] = None,
                 clock: Optional[ClockDriver] = None,
                 max_sessions: int = 64,
                 max_wan_queue_depth: Optional[int] = None,
                 tenants: Sequence[TenantPolicy] = (),
                 faults: Optional[FaultPlan] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 degraded_tenant: Optional[TenantPolicy] = None,
                 adaptive: Optional[AdaptiveConfig] = None,
                 health_history_limit: int = 64) -> None:
        if num_edge_servers < 1:
            raise ServiceError("num_edge_servers must be >= 1")
        if edge_workers < 1:
            raise ServiceError("edge_workers must be >= 1")
        self.config = config or SystemConfig()
        self.num_edge_servers = int(num_edge_servers)
        self.edge_workers = int(edge_workers)
        self.cloud_workers = (int(cloud_workers) if cloud_workers is not None
                              else self.num_edge_servers)
        if self.cloud_workers < 1:
            raise ServiceError("cloud_workers must be >= 1")
        self.clock = clock if clock is not None else VirtualClock()
        self.scheduler = EventScheduler()
        self.edge_stations: List[ServiceStation] = []
        self.wan_links: List[ContendedLink] = []
        for index in range(self.num_edge_servers):
            self.edge_stations.append(ServiceStation(
                self.scheduler, f"edge:{index}", capacity=self.edge_workers))
            self.wan_links.append(ContendedLink(self.scheduler, NetworkLink(
                name=f"edge-cloud:{index}",
                bandwidth_mbps=self.config.edge_cloud_bandwidth_mbps,
                latency_ms=self.config.edge_cloud_latency_ms)))
        self.cloud_station = ServiceStation(self.scheduler, "cloud",
                                            capacity=self.cloud_workers)
        #: One camera uplink per session, keyed by session id (built lazily
        #: on admission so per-tenant LAN sizing applies).
        self.lan_links: Dict[str, ContendedLink] = {}
        self.ingest = StreamIngest(
            self.scheduler, self.num_edge_servers,
            attach_session=self._attach_session,
            submit_chunk=self._submit_chunk,
            wan_queue_depth=lambda index: self.wan_links[index].queue_depth,
            max_sessions=max_sessions,
            max_wan_queue_depth=max_wan_queue_depth,
            tenants=tenants,
            degraded_tenant=degraded_tenant,
            push_gate=self._push_refusal,
            edge_available=self._edge_available)
        #: Wall-clock seconds spent inside ``run`` so far.
        self.wall_run_seconds = 0.0
        #: Feeders that registered themselves (for retry accounting).
        self.feeders: List[object] = []
        self._fault_driver: Optional[ServiceFaultDriver] = None
        if faults is not None or resilience is not None:
            self._fault_driver = ServiceFaultDriver(
                self, faults if faults is not None else FaultPlan(),
                resilience if resilience is not None else ResilienceConfig())
            self.ingest.on_session_degraded = (
                self._fault_driver.on_session_degraded)
        self.adaptive: Optional[AdaptiveTuningController] = None
        if adaptive is not None:
            self.adaptive = AdaptiveTuningController(self, adaptive)
            self.ingest.on_chunk_scene = self.adaptive.observe_push
        if health_history_limit < 1:
            raise ServiceError("health_history_limit must be >= 1")
        self._health_history: Deque[HealthSample] = deque(
            maxlen=int(health_history_limit))

    # ------------------------------------------------------------------ #
    # Session API (delegated to the ingest front end)
    # ------------------------------------------------------------------ #
    def open_session(self, camera: str, tenant: str = "default",
                     edge_index: Optional[int] = None) -> StreamSession:
        """Admit a camera stream (see :meth:`StreamIngest.open_session`)."""
        return self.ingest.open_session(camera, tenant=tenant,
                                        edge_index=edge_index)

    def push_frames(self, session_id: str, chunk: FrameChunk) -> None:
        """Push a frame chunk (see :meth:`StreamIngest.push_frames`)."""
        self.ingest.push_frames(session_id, chunk)

    def close_session(self, session_id: str,
                      reason: str = "client") -> StreamSession:
        """Begin draining a session (see :meth:`StreamIngest.close_session`)."""
        return self.ingest.close_session(session_id, reason=reason)

    def retune_session(self, session_id: str, *,
                       max_pending_chunks: Optional[int] = None,
                       parameters: Optional[EncoderParameters] = None
                       ) -> StreamSession:
        """Retune a live session's backpressure bound and/or encoder
        parameters without dropping it (see
        :meth:`StreamIngest.retune_session`)."""
        return self.ingest.retune_session(
            session_id, max_pending_chunks=max_pending_chunks,
            parameters=parameters)

    def register_tenant(self, policy: TenantPolicy) -> None:
        """Add or replace a tenant policy; existing sessions are untouched."""
        self.ingest.register_tenant(policy)

    # ------------------------------------------------------------------ #
    # Control events and the event loop
    # ------------------------------------------------------------------ #
    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a control action at absolute virtual ``time``.

        Feeders and reconfiguration scripts must use this (or
        :meth:`after`) so their effects are ordered on the event heap —
        that ordering is what makes a run reproducible under any clock.
        """
        self.scheduler.schedule_at(time, action)

    def after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule a control action ``delay`` virtual seconds from now."""
        self.scheduler.schedule(delay, action)

    def run(self, until: Optional[float] = None) -> int:
        """Advance the service under its clock driver.

        Returns the number of events fired.  With ``until`` the clock stops
        at that virtual horizon (inclusive); without it the heap drains.
        """
        watch = Stopwatch().start()
        try:
            return self.clock.run(self.scheduler, until=until)
        finally:
            self.wall_run_seconds += watch.stop()

    def run_for(self, seconds: float) -> int:
        """Advance the service ``seconds`` of virtual time from now."""
        if seconds < 0:
            raise ServiceError(f"seconds must be >= 0, got {seconds}")
        return self.run(until=self.scheduler.now + seconds)

    def drain(self) -> int:
        """Run until no events remain (all pushed work completes)."""
        return self.run(until=None)

    # ------------------------------------------------------------------ #
    # Health / metrics
    # ------------------------------------------------------------------ #
    def status(self) -> ServiceStatus:
        """Snapshot the service's live health and metrics."""
        with section("service.status"):
            horizon = self.scheduler.now
            stations: List[StationSnapshot] = []
            for index, station in enumerate(self.edge_stations):
                stations.append(snapshot_station(station.name, station,
                                                 horizon))
                stations.append(snapshot_station(
                    f"wan:{index}", self.wan_links[index], horizon))
            stations.append(snapshot_station("cloud", self.cloud_station,
                                             horizon))
            sessions: List[SessionSnapshot] = []
            for session in self.ingest.sessions.values():
                lan = self.lan_links.get(session.session_id)
                sessions.append(snapshot_session(
                    session, lan.queue_depth if lan is not None else 0))
            if isinstance(self.clock, RealTimeClock):
                speedup = self.clock.speedup
                max_lag = self.clock.max_lag_seconds
            else:
                speedup = float("inf")
                max_lag = 0.0
            return ServiceStatus(
                virtual_now=horizon,
                wall_run_seconds=self.wall_run_seconds,
                clock=self.clock.describe(),
                speedup=speedup,
                clock_max_lag_seconds=max_lag,
                events_processed=self.scheduler.events_processed,
                pending_events=self.scheduler.pending_events,
                active_sessions=self.ingest.active_sessions,
                total_sessions=len(self.ingest.sessions),
                sessions_rejected=self.ingest.sessions_rejected,
                pushes_rejected=self.ingest.pushes_rejected,
                tenants={name: self.ingest.active_sessions_of(name)
                         for name in self.ingest.tenants},
                stations=tuple(stations),
                sessions=tuple(sessions),
                sessions_degraded=self.ingest.sessions_degraded,
                close_reasons=dict(self.ingest.close_reasons),
                breaker_states=(
                    {index: breaker.state.value for index, breaker
                     in self._fault_driver.breakers.items()}
                    if self._fault_driver is not None else {}),
                fault_counters=(fault_counters := (
                    stats.as_dict()
                    if (stats := self.fault_stats()) is not None else {})),
                retune_counters=(retune_counters := (
                    self.adaptive.counters()
                    if self.adaptive is not None else {})),
                retune_history=tuple(
                    self.adaptive.history_lines()
                    if self.adaptive is not None else ()),
                health_history=self._sample_health(
                    horizon, {**fault_counters, **retune_counters}),
            )

    def _sample_health(self, virtual_now: float,
                       counters: Dict[str, int]) -> tuple:
        """Fold one status capture into the bounded health-history ring.

        Only non-empty counter sets produce samples, so a clean run's
        snapshots carry an empty history — exactly the seed's shape.
        """
        if counters:
            self._health_history.append(HealthSample(
                virtual_now=virtual_now, counters=dict(counters)))
        return tuple(self._health_history)

    def fleet_report(self) -> FleetReport:
        """Fold the service's streams into a batch-comparable report.

        Each session becomes one synthetic :class:`CameraJob` from its push
        accumulators; outcomes span first push to last completion.  The
        report satisfies the same :meth:`FleetReport.parity_mismatches`
        contract as the batch orchestrator's, which is how the example and
        the tests assert virtual-vs-real-time parity.
        """
        outcomes: List[JobOutcome] = []
        assignments: Dict[str, int] = {}
        latencies: List[float] = []
        for session in self.ingest.sessions.values():
            job = CameraJob(
                camera=session.camera,
                video=f"stream:{session.camera}",
                num_frames=session.frames_pushed,
                frames_for_inference=session.frames_for_inference,
                edge_seconds=session.edge_seconds_pushed,
                cloud_seconds=session.cloud_seconds_pushed,
                camera_edge_bytes=session.camera_edge_bytes_pushed,
                edge_cloud_bytes=session.edge_cloud_bytes_pushed,
            )
            start = (session.first_arrival
                     if session.chunks_pushed > 0 else session.opened_at)
            end = (session.last_completion
                   if session.chunks_completed == session.chunks_pushed
                   and session.chunks_pushed > 0 else float("nan"))
            outcome = JobOutcome(job=job, edge_index=session.edge_index,
                                 start_seconds=start, end_seconds=end)
            outcomes.append(outcome)
            assignments[session.camera] = session.edge_index
            if end == end:  # not nan: the stream fully completed
                latencies.append(outcome.latency_seconds)
        makespan = max((outcome.end_seconds for outcome in outcomes
                        if outcome.end_seconds == outcome.end_seconds),
                       default=0.0)
        edge_tiers = [tier_report(station.stats, station.capacity, makespan)
                      for station in self.edge_stations]
        wan_tiers = [tier_report(link.stats, 1, makespan)
                     for link in self.wan_links]
        cloud_tier = tier_report(self.cloud_station.stats,
                                 self.cloud_station.capacity, makespan)
        jobs = [outcome.job for outcome in outcomes]
        return FleetReport(
            policy=PlacementPolicy.ROUND_ROBIN,
            num_edge_servers=self.num_edge_servers,
            num_cameras=len(jobs),
            makespan_seconds=makespan,
            total_frames=sum(job.num_frames for job in jobs),
            frames_for_inference=sum(job.frames_for_inference
                                     for job in jobs),
            camera_edge_bytes=sum(link.link.total_bytes
                                  for link in self.lan_links.values()),
            edge_cloud_bytes=sum(link.link.total_bytes
                                 for link in self.wan_links),
            edge_busy_seconds=sum(tier.busy_seconds for tier in edge_tiers),
            cloud_busy_seconds=cloud_tier.busy_seconds,
            wan_transfer_seconds=sum(link.link.total_seconds
                                     for link in self.wan_links),
            edge_tiers=edge_tiers,
            wan_tiers=wan_tiers,
            cloud_tier=cloud_tier,
            latency_percentiles=latency_percentiles_of(sorted(latencies)),
            assignments=assignments,
            outcomes=outcomes,
            sim_wall_seconds=self.wall_run_seconds,
            events_processed=self.scheduler.events_processed,
            faults=self.fault_stats(),
        )

    # ------------------------------------------------------------------ #
    # Pipeline internals
    # ------------------------------------------------------------------ #
    def _attach_session(self, session: StreamSession) -> None:
        """Build the session's camera uplink (tenant config wins)."""
        policy = self.ingest.tenants.get(session.tenant)
        config = (policy.config if policy is not None
                  and policy.config is not None else self.config)
        self.lan_links[session.session_id] = ContendedLink(
            self.scheduler, NetworkLink(
                name=f"camera:{session.camera}",
                bandwidth_mbps=config.camera_edge_bandwidth_mbps,
                latency_ms=config.camera_edge_latency_ms))

    def _submit_chunk(self, session: StreamSession, chunk: FrameChunk) -> None:
        """Chain one chunk through LAN -> edge -> WAN -> cloud.

        Each stage entry re-reads ``session.edge_index`` and passes the
        :class:`_ChunkRun` as the payload with an ``on_fail`` hook, so a
        stage failed out by an injected edge crash can be resubmitted on
        the session's (possibly failed-over) edge.  Fault-free this makes
        exactly the same submissions in the same order as the seed.
        """
        self._enter_lan(_ChunkRun(session, chunk, self.scheduler.now))

    def _enter_lan(self, run: _ChunkRun) -> None:
        run.stage = "lan"
        self.lan_links[run.session.session_id].submit(
            run.chunk.camera_edge_bytes,
            description=f"ingest:{run.session.camera}",
            on_complete=self._enter_edge, payload=run,
            on_fail=self._stage_failed)

    def _enter_edge(self, run: _ChunkRun) -> None:
        run.stage = "edge"
        self.edge_stations[run.session.edge_index].submit(
            run.chunk.edge_seconds,
            on_complete=self._enter_wan, payload=run,
            on_fail=self._stage_failed)

    def _enter_wan(self, run: _ChunkRun) -> None:
        run.stage = "wan"
        self.wan_links[run.session.edge_index].submit(
            run.chunk.edge_cloud_bytes,
            description=f"stream:{run.session.camera}",
            on_complete=self._enter_cloud, payload=run,
            on_fail=self._stage_failed)

    def _enter_cloud(self, run: _ChunkRun) -> None:
        run.stage = "cloud"
        self.cloud_station.submit(run.chunk.cloud_seconds,
                                  on_complete=self._finish_chunk, payload=run)

    def _resubmit_stage(self, run: _ChunkRun) -> None:
        """Re-enter the stage a failed chunk was in (fault driver only)."""
        {"lan": self._enter_lan, "edge": self._enter_edge,
         "wan": self._enter_wan, "cloud": self._enter_cloud}[run.stage](run)

    def _finish_chunk(self, run: _ChunkRun) -> None:
        self.ingest.on_chunk_complete(run.session,
                                      self.scheduler.now - run.arrival)
        if self._fault_driver is not None:
            self._fault_driver.on_chunk_complete(run)

    def _stage_failed(self, run: _ChunkRun, reason: str) -> None:
        # on_fail hooks only exist on jobs the driver can fail, and
        # fail_all is only called by the driver — so it is always present.
        self._fault_driver.on_chunk_failed(run, reason)

    # ------------------------------------------------------------------ #
    # Fault plumbing (all no-ops / constants without a fault driver)
    # ------------------------------------------------------------------ #
    def _push_refusal(self, edge_index: int) -> Optional[str]:
        """Why a push to ``edge_index`` must bounce (``None`` = admitted)."""
        if self._fault_driver is None:
            return None
        return self._fault_driver.push_refusal(edge_index)

    def _edge_available(self, edge_index: int) -> bool:
        """Whether ``edge_index`` is accepting placements."""
        return (self._fault_driver is None
                or self._fault_driver.edge_online[edge_index])

    def _register_feeder(self, feeder: object) -> None:
        """Track a feeder so reports can fold in its retry accounting."""
        self.feeders.append(feeder)

    def fault_stats(self) -> Optional[FaultStats]:
        """Fault/recovery counters, or ``None`` when nothing happened.

        Combines the fault driver's counters (crashes, failovers,
        breakers) with feeder retry accounting and degraded admissions.
        Returns ``None`` on a clean run so fault-free reports stay
        bit-identical to the seed.
        """
        driver = self._fault_driver
        stats = driver.stats if driver is not None else FaultStats()
        stats.sessions_degraded = self.ingest.sessions_degraded
        stats.feeder_retries = sum(
            getattr(feeder, "retries", 0) for feeder in self.feeders)
        stats.feeder_give_ups = sum(
            1 for feeder in self.feeders if getattr(feeder, "gave_up", False))
        stats.retry_histogram = {}
        for feeder in self.feeders:
            for attempts, count in getattr(feeder, "attempt_histogram",
                                           {}).items():
                stats.observe_attempts(attempts, count)
        return stats if stats.has_activity() else None

    @property
    def recovery_trace(self):
        """The fault driver's :class:`RecoveryTrace` (``None`` without one)."""
        return (self._fault_driver.trace
                if self._fault_driver is not None else None)


# Re-exported for convenience so callers can build sessions without touching
# the submodules (`from repro.service.service import ...` mirrors cluster).
__all__ = [
    "StreamingService", "SessionState", "TenantPolicy", "FrameChunk",
]
